//! Disabled-by-default semantics (own process: nothing here ever calls
//! `set_enabled(true)`).

use nanomap_observe as observe;
use nanomap_observe::span;

#[test]
fn everything_is_a_noop_while_disabled() {
    assert!(!observe::enabled());
    {
        let _s = span!("ghost", attr = 1u32);
    }
    observe::counter("ghost.count").add(99);
    observe::gauge("ghost.gauge").set(1.5);
    observe::histogram("ghost.hist").record(7);

    let snap = observe::snapshot();
    assert!(snap.spans.is_empty(), "no spans recorded while disabled");
    assert_eq!(snap.counter("ghost.count"), 0);
    assert_eq!(snap.gauges.get("ghost.gauge").copied().unwrap_or(0.0), 0.0);
    assert_eq!(snap.histograms["ghost.hist"].count, 0);

    // The JSON sink still emits a valid (empty) document.
    let json = snap.to_json().to_compact_string();
    observe::json::parse(&json).expect("valid JSON");
}
