//! Span nesting, timing monotonicity and sink output (own process, so
//! enabling the global collector cannot disturb other test binaries).

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use nanomap_observe as observe;
use nanomap_observe::span;

/// The collector is process-global, so tests that reset + snapshot it
/// must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    observe::set_enabled(true);
    observe::reset();
    guard
}

#[test]
fn nesting_and_timing_monotonicity() {
    let _guard = setup();
    {
        let _outer = span!("outer", circuit = "ex1");
        std::thread::sleep(Duration::from_millis(2));
        {
            let _inner = span!("inner", stage = 1u32);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _inner = span!("inner", stage = 2u32);
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let snap = observe::snapshot();
    let outer = snap.spans_named("outer");
    let inners = snap.spans_named("inner");
    assert_eq!(outer.len(), 1);
    assert_eq!(inners.len(), 2);

    // Parent/depth bookkeeping.
    assert_eq!(outer[0].parent, None);
    assert_eq!(outer[0].depth, 0);
    for inner in &inners {
        assert_eq!(inner.parent, Some(outer[0].id));
        assert_eq!(inner.depth, 1);
    }

    // Timing monotonicity: children start at or after the parent, fit
    // inside it, and the parent covers their sum.
    let children_us: u64 = inners.iter().map(|s| s.duration_us).sum();
    assert!(
        outer[0].duration_us >= children_us,
        "parent covers children"
    );
    for inner in &inners {
        assert!(inner.start_us >= outer[0].start_us);
        assert!(inner.start_us + inner.duration_us <= outer[0].start_us + outer[0].duration_us + 1);
        assert!(inner.duration_us >= 1_000, "2 ms sleep measured >= 1 ms");
    }
    // The two inner spans do not overlap and close in order.
    assert!(inners[0].start_us + inners[0].duration_us <= inners[1].start_us + 1);
}

#[test]
fn sequential_spans_have_increasing_starts() {
    let _guard = setup();
    for _ in 0..3 {
        let _s = span!("step");
    }
    let snap = observe::snapshot();
    let steps = snap.spans_named("step");
    assert_eq!(steps.len(), 3);
    assert!(steps.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    // Ids are unique.
    let mut ids: Vec<u64> = steps.iter().map(|s| s.id).collect();
    ids.dedup();
    assert_eq!(ids.len(), 3);
}

#[test]
fn tree_and_json_sinks_agree() {
    let _guard = setup();
    {
        let _root = span!("flow", circuit = "t");
        let _child = span!("pack");
    }
    observe::counter("pack.lut_assigned").add(5);
    let snap = observe::snapshot();

    let tree = snap.render_tree();
    assert!(tree.contains("flow"), "{tree}");
    // Child indented under parent.
    assert!(
        tree.contains("\n  pack") || tree.contains("  pack "),
        "{tree}"
    );
    assert!(tree.contains("counter pack.lut_assigned = 5"), "{tree}");

    let json = snap.to_json().to_pretty_string();
    let parsed = observe::json::parse(&json).expect("valid JSON");
    let spans = parsed.get("spans").and_then(|s| s.as_array()).unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name")?.as_str())
        .collect();
    assert!(names.contains(&"flow") && names.contains(&"pack"));
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("pack.lut_assigned"))
            .and_then(observe::JsonValue::as_int),
        Some(5)
    );
}

#[test]
fn attrs_added_after_open_are_recorded() {
    let _guard = setup();
    {
        let mut s = span!("route");
        s.attr("overused", 3u32);
    }
    let snap = observe::snapshot();
    let route = snap.spans_named("route");
    assert_eq!(route[0].attrs.len(), 1);
    assert_eq!(route[0].attrs[0].0, "overused");
}
