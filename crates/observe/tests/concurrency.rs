//! Counter atomicity and span collection under threads (own process).

use nanomap_observe as observe;
use nanomap_observe::span;

#[test]
fn counters_are_atomic_under_threads() {
    observe::set_enabled(true);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let counter = observe::counter("test.concurrent");
                let histogram = observe::histogram("test.concurrent_hist");
                for i in 0..PER_THREAD {
                    counter.incr();
                    histogram.record(i % 1024);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let snap = observe::snapshot();
    assert_eq!(snap.counter("test.concurrent"), THREADS as u64 * PER_THREAD);
    let hist = &snap.histograms["test.concurrent_hist"];
    assert_eq!(hist.count, THREADS as u64 * PER_THREAD);
    assert_eq!(hist.max, 1023);
}

#[test]
fn span_stacks_are_per_thread() {
    observe::set_enabled(true);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let _outer = span!("thread_outer", thread = t as u32);
                let _inner = span!("thread_inner");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let snap = observe::snapshot();
    let outers = snap.spans_named("thread_outer");
    let inners = snap.spans_named("thread_inner");
    assert_eq!(outers.len(), 4);
    assert_eq!(inners.len(), 4);
    // Every inner's parent is an outer from the same thread, never a
    // sibling thread's span.
    let outer_ids: std::collections::HashSet<u64> = outers.iter().map(|s| s.id).collect();
    for inner in inners {
        let parent = inner.parent.expect("nested");
        assert!(outer_ids.contains(&parent));
        assert_eq!(inner.depth, 1);
    }
}
