//! Adversarial inputs for the hand-rolled JSON emitter/parser and the
//! histogram percentile readout — the places a serde-free substrate can
//! quietly rot.

use nanomap_observe::json::{parse, JsonValue};
use nanomap_observe::{histogram, set_enabled};

// ---------------------------------------------------------------------
// Emitter/parser round-trips.
// ---------------------------------------------------------------------

#[test]
fn escaped_strings_round_trip_through_both_modes() {
    let cases = [
        "quote \" backslash \\ slash / done",
        "\\\\\\\" nested escapes \\\"",
        "controls: \u{00}\u{01}\u{1f} end",
        "\u{08}\u{0C}\n\r\t",
        "json-in-json: {\"a\": [1, 2]}",
    ];
    for s in cases {
        let v = JsonValue::object().with("k", s);
        for text in [v.to_compact_string(), v.to_pretty_string()] {
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some(s));
        }
    }
}

#[test]
fn unicode_keys_and_values_round_trip() {
    let v = JsonValue::object()
        .with("métrique", "café ☕")
        .with("図表", "日本語のテキスト")
        .with("emoji \u{1F600}", "\u{1F680} rocket");
    let parsed = parse(&v.to_pretty_string()).expect("valid JSON");
    assert_eq!(parsed, v);
    assert_eq!(
        parsed.get("métrique").and_then(JsonValue::as_str),
        Some("café ☕")
    );
}

#[test]
fn unicode_escapes_parse() {
    let parsed = parse(r#""café ☕""#).expect("valid");
    assert_eq!(parsed.as_str(), Some("café ☕"));
    // Lone surrogates decode to the replacement character, not a panic.
    let lone = parse(r#""\ud800""#).expect("valid");
    assert_eq!(lone.as_str(), Some("\u{FFFD}"));
    assert!(parse(r#""\uZZZZ""#).is_err());
    assert!(parse(r#""\u00""#).is_err());
}

#[test]
fn deep_nesting_round_trips() {
    // 200 levels of arrays wrapping one object — deep enough to catch an
    // accidentally tight depth limit, comfortably under the deliberate
    // MAX_PARSE_DEPTH cap that guards against corrupt `[[[[…` inputs.
    let mut v = JsonValue::object().with("leaf", true);
    for _ in 0..200 {
        v = JsonValue::Array(vec![v]);
    }
    let text = v.to_compact_string();
    assert!(text.starts_with("[[[["));
    let parsed = parse(&text).expect("valid JSON");
    assert_eq!(parsed, v);
}

#[test]
fn extreme_numbers_round_trip() {
    let v = JsonValue::object()
        .with("max_i64", i64::MAX)
        .with("min_i64", i64::MIN)
        .with("neg", -123_456i64)
        .with("tiny", 5e-324f64)
        .with("huge", 1.7976931348623157e308f64)
        .with("frac", 0.1f64 + 0.2f64)
        .with("neg_frac", -123.456e-7f64);
    let parsed = parse(&v.to_compact_string()).expect("valid JSON");
    assert_eq!(
        parsed.get("max_i64").and_then(JsonValue::as_int),
        Some(i64::MAX)
    );
    assert_eq!(
        parsed.get("min_i64").and_then(JsonValue::as_int),
        Some(i64::MIN)
    );
    let float = |k: &str| match parsed.get(k) {
        Some(JsonValue::Float(f)) => *f,
        other => panic!("{k}: {other:?}"),
    };
    assert_eq!(float("tiny"), 5e-324);
    assert_eq!(float("huge"), 1.7976931348623157e308);
    assert_eq!(float("frac"), 0.1 + 0.2);
    assert_eq!(float("neg_frac"), -123.456e-7);
}

#[test]
fn nonfinite_floats_emit_null_and_parse_back() {
    let v = JsonValue::object()
        .with("nan", f64::NAN)
        .with("inf", f64::INFINITY)
        .with("ninf", f64::NEG_INFINITY);
    let text = v.to_compact_string();
    assert_eq!(text, r#"{"nan":null,"inf":null,"ninf":null}"#);
    let parsed = parse(&text).expect("valid JSON");
    assert_eq!(parsed.get("nan"), Some(&JsonValue::Null));
}

#[test]
fn duplicate_keys_parse_and_get_returns_first() {
    let parsed = parse(r#"{"k": 1, "k": 2, "other": 3}"#).expect("valid JSON");
    // The parser preserves both entries; lookup resolves to the first, and
    // re-serialization keeps the document intact.
    assert_eq!(parsed.get("k").and_then(JsonValue::as_int), Some(1));
    assert_eq!(parsed.to_compact_string(), r#"{"k":1,"k":2,"other":3}"#);
}

#[test]
fn malformed_documents_are_rejected_not_mangled() {
    for bad in [
        "",
        "{",
        "[1, 2",
        r#"{"k": }"#,
        r#"{"k": 1,}"#,
        "[1 2]",
        r#"{"k" 1}"#,
        "nul",
        "truefalse",
        "1 2",
        r#""unterminated"#,
        r#""bad escape \q""#,
        "{\"k\": 1} trailing",
    ] {
        assert!(parse(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn number_formats_accepted_and_rejected() {
    assert_eq!(parse("-0").unwrap().as_int(), Some(0));
    assert!(matches!(parse("1e3").unwrap(), JsonValue::Float(f) if f == 1000.0));
    assert!(matches!(parse("2.5E-1").unwrap(), JsonValue::Float(f) if f == 0.25));
    assert!(parse("1.2.3").is_err());
    assert!(parse("--1").is_err());
    assert!(parse("1e").is_err());
}

// ---------------------------------------------------------------------
// Histogram percentile edge cases.
// ---------------------------------------------------------------------

#[test]
fn empty_histogram_percentiles_are_zero() {
    // Unique metric names keep these tests independent without touching
    // the global registry (tests run in parallel).
    set_enabled(true);
    let h = histogram("adversarial.empty");
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    for p in [0.0, 50.0, 99.9, 100.0] {
        assert_eq!(snap.percentile(p), 0);
    }
}

#[test]
fn single_sample_dominates_every_percentile() {
    // Unique metric names keep these tests independent without touching
    // the global registry (tests run in parallel).
    set_enabled(true);
    let h = histogram("adversarial.single");
    h.record(37);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
        // The single sample is both the bucket content and the maximum, so
        // every percentile reads back exactly 37.
        assert_eq!(snap.percentile(p), 37, "p{p}");
    }
}

#[test]
fn all_equal_samples_yield_flat_percentiles() {
    // Unique metric names keep these tests independent without touching
    // the global registry (tests run in parallel).
    set_enabled(true);
    let h = histogram("adversarial.flat");
    for _ in 0..1000 {
        h.record(64);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 1000);
    let p50 = snap.percentile(50.0);
    let p999 = snap.percentile(99.9);
    assert_eq!(p50, p999, "flat distribution must have flat percentiles");
    assert_eq!(snap.percentile(100.0), 64);
    // Out-of-range p clamps instead of panicking.
    assert_eq!(snap.percentile(-5.0), snap.percentile(0.0));
    assert_eq!(snap.percentile(250.0), snap.percentile(100.0));
}
