//! Allocation and RSS telemetry.
//!
//! [`CountingAllocator`] wraps any [`GlobalAlloc`] (in practice
//! [`std::alloc::System`]) and counts allocations, deallocations, bytes,
//! and the live-byte high-water mark — attributed to the active flow
//! phase through a process-global atomic that the span layer maintains.
//! The allocator hot path is a handful of relaxed atomic ops when
//! tracking is on and a single relaxed load when it is off; it never
//! touches thread-locals or locks (a global allocator that re-enters
//! itself through a `thread_local` initializer deadlocks or recurses).
//!
//! RSS comes from `/proc/self/status` (`VmRSS`, reported in kB) on
//! Linux; other platforms get a portable `None` fallback so every
//! consumer stays optional-aware.
//!
//! Nothing in this module panics and nothing allocates on the counting
//! path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::json::JsonValue;

/// Flow phases that allocation is attributed to. Index 0 is the
/// catch-all for allocations outside any known phase span.
pub const PHASE_NAMES: [&str; 9] = [
    "other",
    "folding-select",
    "fds",
    "pack",
    "place",
    "route",
    "bitmap",
    "verify",
    "explain",
];

const NUM_PHASES: usize = PHASE_NAMES.len();

/// Master switch: when off, the allocator forwards with one relaxed
/// load of overhead and reports stay `None`.
static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

/// Index into [`PHASE_NAMES`] of the phase currently executing. Written
/// by the span layer, read by the allocator. A plain global (not a
/// thread-local) on purpose: the flow runs its phases on one thread, and
/// the allocator must not touch TLS.
static CURRENT_PHASE: AtomicUsize = AtomicUsize::new(0);

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static RSS_PEAK_KB: AtomicU64 = AtomicU64::new(0);

static PHASE_ALLOC_BYTES: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];
static PHASE_ALLOC_COUNT: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];

/// Enables or disables allocation tracking. Enabling resets nothing —
/// call [`reset_memory`] first for a clean window.
pub fn set_memory_tracking(on: bool) {
    MEM_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation tracking is currently on.
pub fn memory_tracking() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (for multi-run drivers, mirroring
/// [`crate::reset`]).
pub fn reset_memory() {
    ALLOC_COUNT.store(0, Ordering::Relaxed);
    DEALLOC_COUNT.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    DEALLOC_BYTES.store(0, Ordering::Relaxed);
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_LIVE_BYTES.store(0, Ordering::Relaxed);
    RSS_PEAK_KB.store(0, Ordering::Relaxed);
    CURRENT_PHASE.store(0, Ordering::Relaxed);
    for counter in &PHASE_ALLOC_BYTES {
        counter.store(0, Ordering::Relaxed);
    }
    for counter in &PHASE_ALLOC_COUNT {
        counter.store(0, Ordering::Relaxed);
    }
}

/// Span-layer hook: marks `name` as the active phase when it is one of
/// [`PHASE_NAMES`]. Returns the previous phase index for restoration.
pub(crate) fn phase_enter(name: &str) -> Option<usize> {
    if !memory_tracking() {
        return None;
    }
    let idx = PHASE_NAMES.iter().position(|&p| p == name)?;
    Some(CURRENT_PHASE.swap(idx, Ordering::Relaxed))
}

/// Span-layer hook: restores the phase saved by [`phase_enter`].
pub(crate) fn phase_exit(previous: usize) {
    CURRENT_PHASE.store(previous, Ordering::Relaxed);
}

/// Records an externally observed RSS reading (the profiler's sampler
/// feeds this), keeping the high-water mark.
pub fn note_rss_kb(kb: u64) {
    RSS_PEAK_KB.fetch_max(kb, Ordering::Relaxed);
}

/// Reads the process resident-set size in kB from `/proc/self/status`
/// (`VmRSS`). Returns `None` off-Linux or when the read fails — RSS is
/// best-effort telemetry, never load-bearing.
pub fn read_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                return rest.split_whitespace().next().and_then(|n| n.parse().ok());
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples RSS once and folds it into the peak. Returns the reading.
pub fn sample_rss_kb() -> Option<u64> {
    let kb = read_rss_kb()?;
    note_rss_kb(kb);
    Some(kb)
}

/// Point-in-time memory counters, as captured by [`memory_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Heap allocations observed.
    pub alloc_count: u64,
    /// Heap deallocations observed.
    pub dealloc_count: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Total bytes freed.
    pub dealloc_bytes: u64,
    /// Bytes live right now.
    pub live_bytes: u64,
    /// Live-byte high-water mark.
    pub peak_live_bytes: u64,
    /// Peak RSS in kB, when the platform exposes it and at least one
    /// sample was taken.
    pub peak_rss_kb: Option<u64>,
    /// Per-phase `(phase, allocations, bytes)`, in [`PHASE_NAMES`]
    /// order, phases with zero activity omitted.
    pub by_phase: Vec<(&'static str, u64, u64)>,
}

impl MemoryReport {
    /// Deterministic-schema JSON rendering (sorted object keys via the
    /// underlying [`JsonValue`] object).
    pub fn to_json(&self) -> JsonValue {
        let mut phases = JsonValue::object();
        for (phase, count, bytes) in &self.by_phase {
            phases.set(
                phase,
                JsonValue::object()
                    .with("allocations", *count)
                    .with("bytes", *bytes),
            );
        }
        JsonValue::object()
            .with("alloc_count", self.alloc_count)
            .with("dealloc_count", self.dealloc_count)
            .with("alloc_bytes", self.alloc_bytes)
            .with("dealloc_bytes", self.dealloc_bytes)
            .with("live_bytes", self.live_bytes)
            .with("peak_live_bytes", self.peak_live_bytes)
            .with("peak_rss_kb", self.peak_rss_kb)
            .with("by_phase", phases)
    }
}

/// Snapshots the counters. `None` while tracking is off — the
/// `Option` is what keeps non-tracked runs byte-identical downstream.
pub fn memory_report() -> Option<MemoryReport> {
    if !memory_tracking() {
        return None;
    }
    let peak_rss = RSS_PEAK_KB.load(Ordering::Relaxed);
    let by_phase = PHASE_NAMES
        .iter()
        .enumerate()
        .filter_map(|(idx, &phase)| {
            let count = PHASE_ALLOC_COUNT[idx].load(Ordering::Relaxed);
            let bytes = PHASE_ALLOC_BYTES[idx].load(Ordering::Relaxed);
            (count > 0).then_some((phase, count, bytes))
        })
        .collect();
    Some(MemoryReport {
        alloc_count: ALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_count: DEALLOC_COUNT.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        dealloc_bytes: DEALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
        peak_rss_kb: (peak_rss > 0).then_some(peak_rss),
        by_phase,
    })
}

#[inline]
fn on_alloc(size: usize) {
    if !memory_tracking() {
        return;
    }
    let size = size as u64;
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let phase = CURRENT_PHASE.load(Ordering::Relaxed).min(NUM_PHASES - 1);
    PHASE_ALLOC_COUNT[phase].fetch_add(1, Ordering::Relaxed);
    PHASE_ALLOC_BYTES[phase].fetch_add(size, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    if !memory_tracking() {
        return;
    }
    let size = size as u64;
    DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    DEALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    // Saturate: frees of memory allocated before tracking started must
    // not wrap the live counter.
    let mut live = LIVE_BYTES.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(size);
        match LIVE_BYTES.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => live = actual,
        }
    }
}

/// A counting wrapper around another allocator. Install it in a binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: nanomap_observe::CountingAllocator =
///     nanomap_observe::CountingAllocator::system();
/// ```
///
/// Counting is off until [`set_memory_tracking`]`(true)`; while off the
/// wrapper costs one relaxed load per allocator call.
pub struct CountingAllocator<A = System> {
    inner: A,
}

impl CountingAllocator<System> {
    /// The standard wrapper over the system allocator.
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl<A> CountingAllocator<A> {
    /// Wraps an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        Self { inner }
    }
}

// SAFETY: every method forwards to the inner allocator with the same
// layout contract; the counting side effects are lock-free atomics that
// never allocate, unwind, or re-enter the allocator.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAllocator<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { self.inner.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { self.inner.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { self.inner.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Memory counters are process-global; serialize the tests that
    /// toggle them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn report_is_none_while_tracking_off() {
        let _guard = test_lock();
        set_memory_tracking(false);
        assert!(memory_report().is_none());
    }

    #[test]
    fn counters_track_a_simulated_allocation_pattern() {
        let _guard = test_lock();
        reset_memory();
        set_memory_tracking(true);
        // Exercise the counting hooks directly: the test binary does not
        // install the wrapper (only production binaries do), so feed the
        // same code paths the allocator would.
        on_alloc(1024);
        on_alloc(512);
        on_dealloc(512);
        let report = memory_report().expect("tracking on");
        set_memory_tracking(false);
        assert_eq!(report.alloc_count, 2);
        assert_eq!(report.dealloc_count, 1);
        assert_eq!(report.alloc_bytes, 1536);
        assert_eq!(report.live_bytes, 1024);
        assert_eq!(report.peak_live_bytes, 1536);
        assert_eq!(report.by_phase, vec![("other", 2, 1536)]);
    }

    #[test]
    fn phase_attribution_follows_the_span_hooks() {
        let _guard = test_lock();
        reset_memory();
        set_memory_tracking(true);
        let saved = phase_enter("place").expect("place is a known phase");
        on_alloc(4096);
        phase_exit(saved);
        on_alloc(1);
        let report = memory_report().expect("tracking on");
        set_memory_tracking(false);
        assert!(report.by_phase.contains(&("place", 1, 4096)));
        assert!(report.by_phase.contains(&("other", 1, 1)));
    }

    #[test]
    fn unknown_span_names_do_not_switch_phase() {
        let _guard = test_lock();
        reset_memory();
        set_memory_tracking(true);
        assert!(phase_enter("not-a-phase").is_none());
        set_memory_tracking(false);
    }

    #[test]
    fn dealloc_of_pretracking_memory_saturates() {
        let _guard = test_lock();
        reset_memory();
        set_memory_tracking(true);
        on_dealloc(1_000_000);
        let report = memory_report().expect("tracking on");
        set_memory_tracking(false);
        assert_eq!(report.live_bytes, 0, "live bytes must not wrap");
        assert_eq!(report.dealloc_bytes, 1_000_000);
    }

    #[test]
    fn memory_json_is_deterministic_and_schema_stable() {
        let report = MemoryReport {
            alloc_count: 2,
            dealloc_count: 1,
            alloc_bytes: 300,
            dealloc_bytes: 100,
            live_bytes: 200,
            peak_live_bytes: 300,
            peak_rss_kb: Some(2048),
            by_phase: vec![("pack", 1, 100), ("place", 1, 200)],
        };
        let text = report.to_json().to_compact_string();
        assert!(text.contains("\"peak_live_bytes\":300"));
        assert!(text.contains("\"peak_rss_kb\":2048"));
        assert!(text.contains("\"pack\""));
        // None folds to null-free omission? No — Option<u64> maps to
        // null; assert the shape stays parseable either way.
        let none_report = MemoryReport {
            peak_rss_kb: None,
            ..report.clone()
        };
        let parsed = crate::json::parse(&none_report.to_json().to_compact_string());
        assert!(parsed.is_ok());
    }

    #[test]
    fn rss_reads_are_plausible_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = read_rss_kb().expect("linux exposes VmRSS");
            assert!(kb > 100, "a running test binary resides in >100 kB");
        } else {
            assert!(read_rss_kb().is_none());
        }
    }
}
