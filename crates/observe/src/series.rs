//! Bounded time-series telemetry for convergence loops.
//!
//! The flow's optimization phases are iterative searches; their
//! *trajectories* (annealing cost per temperature step, PathFinder
//! overuse per iteration, FDS force per round) say far more about
//! solution quality than the end result alone. A [`SeriesHandle`]
//! records `(iteration, value)` points into a bounded reservoir:
//! whenever the buffer fills, every other kept point is dropped and the
//! keep-stride doubles, so an arbitrarily long run costs a fixed amount
//! of memory while preserving the overall shape of the curve.
//!
//! Which points survive depends only on the *sequence* of records, never
//! on wall-clock time, so downsampled series are deterministic for a
//! deterministic run. Each point also carries a microsecond timestamp
//! relative to the collector epoch, which the Chrome-trace exporter uses
//! to place counter samples on the trace timeline.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::collector::{enabled, since_epoch_us};

/// Maximum points kept per series before the reservoir decimates.
pub const SERIES_CAPACITY: usize = 512;

/// One retained sample of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Caller-supplied iteration index.
    pub x: u64,
    /// Microseconds since the collector epoch when recorded.
    pub t_us: u64,
    /// The sample value.
    pub y: f64,
}

/// Mutable series state behind the registry mutex.
#[derive(Debug)]
pub(crate) struct SeriesData {
    points: Vec<SeriesPoint>,
    /// Keep one sample in `stride` (doubles on each decimation).
    stride: u64,
    /// Total samples offered via `record`.
    seen: u64,
    first: Option<SeriesPoint>,
    last: Option<SeriesPoint>,
    min_y: f64,
    max_y: f64,
}

impl Default for SeriesData {
    fn default() -> Self {
        Self {
            points: Vec::new(),
            stride: 1,
            seen: 0,
            first: None,
            last: None,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }
}

impl SeriesData {
    pub(crate) fn record(&mut self, x: u64, y: f64) {
        let point = SeriesPoint {
            x,
            t_us: since_epoch_us(Instant::now()),
            y,
        };
        if self.first.is_none() {
            self.first = Some(point);
        }
        self.last = Some(point);
        self.min_y = self.min_y.min(y);
        self.max_y = self.max_y.max(y);
        // Reservoir: admit every stride-th offered sample; halve the kept
        // set and double the stride when the buffer fills.
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == SERIES_CAPACITY {
                let mut keep = 0;
                self.points.retain(|_| {
                    keep += 1;
                    (keep - 1) % 2 == 0
                });
                self.stride *= 2;
            }
            // Re-test after the stride change so admission stays aligned.
            if self.seen.is_multiple_of(self.stride) {
                self.points.push(point);
            }
        }
        self.seen += 1;
    }

    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    pub(crate) fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            count: self.seen,
            stride: self.stride,
            first: self.first,
            last: self.last,
            min_y: if self.seen == 0 { 0.0 } else { self.min_y },
            max_y: if self.seen == 0 { 0.0 } else { self.max_y },
            points: self.points.clone(),
        }
    }
}

/// A series handle resolved from the registry via [`crate::series`].
/// Cheap to clone; resolve once outside the loop being instrumented.
#[derive(Debug, Clone)]
pub struct SeriesHandle(pub(crate) Arc<Mutex<SeriesData>>);

impl SeriesHandle {
    /// Records one `(iteration, value)` sample (no-op while observability
    /// is disabled).
    #[inline]
    pub fn record(&self, iter: u64, value: f64) {
        if enabled() {
            let mut data = self
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            data.record(iter, value);
        }
    }

    /// An immutable snapshot for readout.
    pub fn snapshot(&self) -> SeriesSnapshot {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .snapshot()
    }
}

/// Immutable view of a series for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Total samples offered (including downsampled-away ones).
    pub count: u64,
    /// Current keep-stride (1 until the first decimation).
    pub stride: u64,
    /// First sample ever recorded.
    pub first: Option<SeriesPoint>,
    /// Most recent sample.
    pub last: Option<SeriesPoint>,
    /// Smallest value over *all* samples (0 when empty).
    pub min_y: f64,
    /// Largest value over *all* samples (0 when empty) — the "peak" the
    /// QoR layer snapshots.
    pub max_y: f64,
    /// Retained points in record order.
    pub points: Vec<SeriesPoint>,
}

impl SeriesSnapshot {
    /// The peak (largest) value the series ever saw.
    pub fn peak(&self) -> f64 {
        self.max_y
    }

    /// Value of the most recent sample (0 when empty).
    pub fn last_y(&self) -> f64 {
        self.last.map_or(0.0, |p| p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded(n: u64) -> SeriesData {
        let mut data = SeriesData::default();
        for i in 0..n {
            data.record(i, i as f64);
        }
        data
    }

    #[test]
    fn short_series_keeps_every_point() {
        let snap = recorded(100).snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.stride, 1);
        assert_eq!(snap.points.len(), 100);
        assert_eq!(snap.first.unwrap().x, 0);
        assert_eq!(snap.last.unwrap().x, 99);
    }

    #[test]
    fn long_series_stays_bounded_and_doubles_stride() {
        let snap = recorded(100_000).snapshot();
        assert_eq!(snap.count, 100_000);
        assert!(snap.points.len() <= SERIES_CAPACITY);
        assert!(snap.points.len() >= SERIES_CAPACITY / 4, "over-decimated");
        assert!(snap.stride >= 2);
        // Kept points are exactly the stride-aligned samples.
        for p in &snap.points {
            assert_eq!(p.x % snap.stride, 0, "off-stride point {p:?}");
        }
        // Extremes survive downsampling in the summary fields.
        assert_eq!(snap.min_y, 0.0);
        assert_eq!(snap.max_y, 99_999.0);
        assert_eq!(snap.last.unwrap().x, 99_999);
    }

    #[test]
    fn downsampling_is_deterministic() {
        let a = recorded(12_345).snapshot();
        let b = recorded(12_345).snapshot();
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!((pa.x, pa.y), (pb.x, pb.y));
        }
    }

    #[test]
    fn empty_series_reads_zero() {
        let snap = SeriesData::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.peak(), 0.0);
        assert_eq!(snap.min_y, 0.0);
        assert_eq!(snap.last_y(), 0.0);
        assert!(snap.points.is_empty());
    }

    #[test]
    fn single_sample_series_is_first_last_and_peak_at_once() {
        let mut data = SeriesData::default();
        data.record(7, 3.25);
        let snap = data.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.stride, 1);
        assert_eq!(snap.points.len(), 1);
        assert_eq!(snap.first, snap.last);
        assert_eq!(snap.last_y(), 3.25);
        assert_eq!(snap.peak(), 3.25);
        assert_eq!(snap.min_y, 3.25);
    }

    #[test]
    fn reservoir_saturation_boundary_keeps_stride_one() {
        // Exactly at capacity: no decimation yet.
        let full = recorded(SERIES_CAPACITY as u64).snapshot();
        assert_eq!(full.stride, 1);
        assert_eq!(full.points.len(), SERIES_CAPACITY);
        // One past capacity: the stride doubles and the kept set halves,
        // but count, extremes, and the newest sample stay exact.
        let over = recorded(SERIES_CAPACITY as u64 + 1).snapshot();
        assert_eq!(over.count, SERIES_CAPACITY as u64 + 1);
        assert_eq!(over.stride, 2);
        assert!(over.points.len() <= SERIES_CAPACITY / 2 + 1);
        assert_eq!(over.max_y, SERIES_CAPACITY as f64);
        assert_eq!(over.last.unwrap().x, SERIES_CAPACITY as u64);
    }

    #[test]
    fn min_max_track_all_samples_not_just_kept_ones() {
        let mut data = SeriesData::default();
        // A spike at an index the reservoir may drop.
        for i in 0..10_000u64 {
            let y = if i == 7_001 { 1e9 } else { 1.0 };
            data.record(i, y);
        }
        let snap = data.snapshot();
        assert_eq!(snap.max_y, 1e9);
        assert_eq!(snap.min_y, 1.0);
    }
}
