//! Deterministic fault injection for chaos testing.
//!
//! A [`FailPoint`] is a named site in production code (artifact writes,
//! checkpoint IO, cache loads, socket IO) where a test can ask for a
//! failure to be injected. The registry is **disarmed by default**: an
//! un-armed process pays exactly one relaxed atomic load per site and
//! takes no lock, so instrumented hot paths stay byte-for-byte
//! deterministic with a build that has no failpoints at all.
//!
//! Arming happens through the `NANOMAP_FAILPOINTS` environment variable
//! (read once, at first evaluation) or programmatically via [`arm`].
//! The configuration grammar is a `;`-separated list of
//! `name=mode` clauses:
//!
//! ```text
//! NANOMAP_FAILPOINTS="cache.write=once;ledger.append=nth:3;socket.read=prob:0.25"
//! ```
//!
//! Modes:
//!
//! | mode     | behavior                                                  |
//! |----------|-----------------------------------------------------------|
//! | `off`    | never fires                                               |
//! | `always` | fires on every evaluation                                 |
//! | `once`   | fires on the first evaluation only                        |
//! | `nth:N`  | fires on the N-th evaluation (1-based), once              |
//! | `prob:P` | fires with probability P, from a **seeded** PRNG          |
//!
//! `prob` draws from a per-failpoint [`XorShift64Star`](crate::rng::XorShift64Star)
//! seeded with `NANOMAP_FAILPOINT_SEED` (default 1) mixed with the
//! FNV-1a hash of the failpoint name, so a fixed seed reproduces the
//! exact same firing schedule on every run — chaos tests are replayable.
//!
//! Production code evaluates a site with [`should_fail`] (or the
//! convenience [`inject_io`], which returns a ready-made
//! `io::Error`):
//!
//! ```
//! use nanomap_observe::failpoint;
//!
//! fn write_entry() -> std::io::Result<()> {
//!     failpoint::inject_io("cache.write")?;
//!     // ... real write ...
//!     Ok(())
//! }
//! assert!(write_entry().is_ok()); // disarmed by default
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::rng::XorShift64Star;

/// Environment variable holding the failpoint configuration string.
pub const FAILPOINTS_ENV: &str = "NANOMAP_FAILPOINTS";
/// Environment variable holding the deterministic seed for `prob:` modes.
pub const FAILPOINT_SEED_ENV: &str = "NANOMAP_FAILPOINT_SEED";

/// When a failpoint should fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailMode {
    /// Never fires (explicitly disabled).
    Off,
    /// Fires on every evaluation.
    Always,
    /// Fires on the first evaluation only.
    Once,
    /// Fires on the N-th evaluation (1-based), exactly once.
    Nth(u64),
    /// Fires with the given probability from a seeded per-point PRNG.
    Prob(f64),
}

impl FailMode {
    /// Parses one mode clause (`off`, `always`, `once`, `nth:N`, `prob:P`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed clause.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "off" => Ok(Self::Off),
            "always" => Ok(Self::Always),
            "once" => Ok(Self::Once),
            _ => {
                if let Some(n) = text.strip_prefix("nth:") {
                    let n: u64 = n.parse().map_err(|_| format!("bad nth count {n:?}"))?;
                    if n == 0 {
                        return Err("nth:0 is invalid (counts are 1-based)".into());
                    }
                    Ok(Self::Nth(n))
                } else if let Some(p) = text.strip_prefix("prob:") {
                    let p: f64 = p.parse().map_err(|_| format!("bad probability {p:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} outside [0, 1]"));
                    }
                    Ok(Self::Prob(p))
                } else {
                    Err(format!("unknown failpoint mode {text:?}"))
                }
            }
        }
    }
}

/// One armed failpoint: its mode plus mutable firing state.
#[derive(Debug)]
struct FailPoint {
    mode: FailMode,
    evaluations: u64,
    fired: u64,
    rng: XorShift64Star,
}

impl FailPoint {
    fn new(name: &str, mode: FailMode, seed: u64) -> Self {
        Self {
            mode,
            evaluations: 0,
            fired: 0,
            rng: XorShift64Star::new(seed ^ fnv1a(name.as_bytes())),
        }
    }

    fn evaluate(&mut self) -> bool {
        self.evaluations += 1;
        let fire = match self.mode {
            FailMode::Off => false,
            FailMode::Always => true,
            FailMode::Once => self.fired == 0,
            FailMode::Nth(n) => self.evaluations == n,
            FailMode::Prob(p) => self.rng.next_f64() < p,
        };
        if fire {
            self.fired += 1;
        }
        fire
    }
}

/// FNV-1a over a byte slice; mixes the failpoint name into its seed so
/// two points armed with the same global seed fire on independent
/// schedules.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fast-path flag: true iff at least one failpoint is armed. Checked
/// with a relaxed load before touching the registry mutex.
static ARMED: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var(FAILPOINTS_ENV) {
            let seed = std::env::var(FAILPOINT_SEED_ENV)
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            match parse_spec(&spec, seed) {
                Ok(points) => map = points,
                Err(err) => eprintln!("nanomap: ignoring malformed {FAILPOINTS_ENV}: {err}"),
            }
        }
        if !map.is_empty() {
            ARMED.store(true, Ordering::Relaxed);
        }
        Mutex::new(map)
    })
}

fn parse_spec(spec: &str, seed: u64) -> Result<HashMap<String, FailPoint>, String> {
    let mut map = HashMap::new();
    for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
        let (name, mode) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause {clause:?} is not name=mode"))?;
        let (name, mode) = (name.trim(), FailMode::parse(mode.trim())?);
        map.insert(name.to_string(), FailPoint::new(name, mode, seed));
    }
    Ok(map)
}

/// Arms one failpoint programmatically (tests; production arms via env).
pub fn arm(name: &str, mode: FailMode) {
    arm_seeded(name, mode, 1);
}

/// Arms one failpoint with an explicit seed for `prob:` determinism.
pub fn arm_seeded(name: &str, mode: FailMode, seed: u64) {
    let mut map = registry().lock().unwrap();
    map.insert(name.to_string(), FailPoint::new(name, mode, seed));
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms every failpoint and restores the zero-cost fast path.
pub fn disarm_all() {
    if let Some(lock) = REGISTRY.get() {
        lock.lock().unwrap().clear();
    }
    ARMED.store(false, Ordering::Relaxed);
}

/// True iff any failpoint is currently armed (one relaxed load).
#[must_use]
pub fn armed() -> bool {
    // Force the env-var read on first call so `NANOMAP_FAILPOINTS` set
    // before spawn is honored even if no site evaluated yet.
    if ARMED.load(Ordering::Relaxed) {
        return true;
    }
    if REGISTRY.get().is_none() {
        let _ = registry();
        return ARMED.load(Ordering::Relaxed);
    }
    false
}

/// Evaluates the named failpoint; returns true when the caller should
/// inject its failure. Disarmed cost: one relaxed atomic load.
#[must_use]
pub fn should_fail(name: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        // First evaluation anywhere also initializes from the env.
        if REGISTRY.get().is_some() {
            return false;
        }
        let _ = registry();
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
    }
    match registry().lock().unwrap().get_mut(name) {
        Some(point) => point.evaluate(),
        None => false,
    }
}

/// Evaluates the failpoint and returns a synthetic `io::Error` when it
/// fires — the common shape for IO-layer sites (`inject_io("x")?;`).
///
/// # Errors
///
/// Returns `io::ErrorKind::Other` tagged with the failpoint name when
/// the armed site fires.
pub fn inject_io(name: &str) -> std::io::Result<()> {
    if should_fail(name) {
        return Err(std::io::Error::other(format!(
            "failpoint {name} injected failure"
        )));
    }
    Ok(())
}

/// How often a failpoint evaluated and fired (`None` if never armed).
#[must_use]
pub fn stats(name: &str) -> Option<(u64, u64)> {
    let lock = REGISTRY.get()?;
    let map = lock.lock().unwrap();
    map.get(name).map(|p| (p.evaluations, p.fired))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so each test uses unique names
    // and the suite never calls `disarm_all` concurrently with others.

    #[test]
    fn disarmed_points_never_fire() {
        assert!(!should_fail("test.never-armed"));
        assert!(inject_io("test.never-armed-io").is_ok());
    }

    #[test]
    fn once_fires_exactly_once() {
        arm("test.once", FailMode::Once);
        assert!(should_fail("test.once"));
        assert!(!should_fail("test.once"));
        assert!(!should_fail("test.once"));
        assert_eq!(stats("test.once"), Some((3, 1)));
    }

    #[test]
    fn nth_fires_on_the_nth_evaluation() {
        arm("test.nth", FailMode::Nth(3));
        assert!(!should_fail("test.nth"));
        assert!(!should_fail("test.nth"));
        assert!(should_fail("test.nth"));
        assert!(!should_fail("test.nth"));
    }

    #[test]
    fn prob_schedule_is_deterministic_per_seed() {
        let schedule = |seed| {
            arm_seeded("test.prob", FailMode::Prob(0.5), seed);
            (0..64)
                .map(|_| should_fail("test.prob"))
                .collect::<Vec<_>>()
        };
        let a = schedule(42);
        let b = schedule(42);
        let c = schedule(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f));
    }

    #[test]
    fn spec_grammar_parses_and_rejects() {
        let map = parse_spec("a=once; b = nth:2 ;c=prob:0.25", 7).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map["b"].mode, FailMode::Nth(2));
        assert!(parse_spec("a", 7).is_err());
        assert!(parse_spec("a=nth:0", 7).is_err());
        assert!(parse_spec("a=prob:1.5", 7).is_err());
        assert!(parse_spec("a=sometimes", 7).is_err());
    }

    #[test]
    fn inject_io_error_names_the_point() {
        arm("test.io", FailMode::Always);
        let err = inject_io("test.io").unwrap_err();
        assert!(err.to_string().contains("test.io"));
    }
}
