//! Structured `nanomap-events-v1` event bus.
//!
//! A process-wide, bounded queue of typed flow events: run lifecycle,
//! phase boundaries (published by [`crate::SpanGuard`]), fractional
//! progress from the same iteration boundaries the budget system polls,
//! counter deltas, degradations, recovery-ladder attempts and checkpoint
//! writes. Consumers either [`drain_events`] directly or attach an
//! [`EventStream`] that forwards events as NDJSON lines to any writer
//! (a file, stdout, a socket) on a background thread.
//!
//! Design constraints, in order:
//!
//! 1. **Never block the flow.** Publishing is a relaxed atomic load when
//!    the bus is disabled, and a short mutex push when enabled. When the
//!    queue is full, low-priority events (progress, counter deltas) are
//!    dropped silently and counted; lifecycle events evict the oldest
//!    low-priority event instead so run structure survives slow
//!    consumers.
//! 2. **Monotonic order.** Sequence numbers come from one process-wide
//!    atomic, so the merged stream is globally ordered and each thread's
//!    subsequence is strictly monotonic.
//! 3. **Broken sinks degrade, never fail.** A write error on the stream
//!    (EPIPE from `--live-status - | head`, a full disk) logs one warning
//!    and the stream keeps draining to the void so the queue cannot
//!    back up.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::collector;
use crate::json::JsonValue;

/// Format tag embedded in every run-start event and NDJSON header line.
pub const EVENTS_SCHEMA: &str = "nanomap-events-v1";

/// Queue capacity; beyond this, low-priority events are dropped (counted
/// in [`dropped_events`]) rather than blocking or growing without bound.
pub const EVENT_QUEUE_CAPACITY: usize = 8192;

static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn queue() -> &'static Mutex<VecDeque<Event>> {
    static QUEUE: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    QUEUE.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn lock() -> std::sync::MutexGuard<'static, VecDeque<Event>> {
    queue()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Enables or disables the event bus. Disabled (the default), every
/// publisher is a no-op costing one relaxed atomic load, and artifacts
/// stay byte-identical to an uninstrumented run.
pub fn set_events_enabled(on: bool) {
    EVENTS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the event bus is currently accepting events.
#[inline]
pub fn events_enabled() -> bool {
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

/// Number of events dropped so far because the queue was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears the queue and the drop counter (sequence numbers keep
/// climbing — they are monotonic for the life of the process). For
/// tests and multi-run drivers.
pub fn reset_events() {
    lock().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// One typed flow event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Process-wide monotonic sequence number (1-based).
    pub seq: u64,
    /// Microseconds since the collector epoch.
    pub t_us: u64,
    /// Ordinal of the publishing thread (see [`crate::thread_ordinal`]).
    pub tid: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of `nanomap-events-v1`.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A mapping run began.
    RunStart {
        /// Stable id derived from netlist fingerprint + objective + seeds.
        run_id: String,
        /// Circuit (netlist) name.
        circuit: String,
        /// Objective key, e.g. `min-at`.
        objective: String,
        /// Placement seed.
        place_seed: u64,
        /// Routing seed.
        route_seed: u64,
    },
    /// A span opened (phase or sub-operation).
    PhaseStart {
        /// Span name.
        phase: &'static str,
        /// Nesting depth on the publishing thread (roots are 0).
        depth: u32,
    },
    /// Fraction-complete estimate from an iteration boundary.
    PhaseProgress {
        /// Span name of the publishing phase.
        phase: &'static str,
        /// Iterations completed so far.
        completed: u64,
        /// Total iterations when known in advance.
        total: Option<u64>,
        /// Fraction complete in `[0, 1]` when estimable.
        fraction: Option<f64>,
        /// Phase-specific figure of merit (best force, cost, overuse…).
        metric: f64,
    },
    /// A span closed.
    PhaseEnd {
        /// Span name.
        phase: &'static str,
        /// Nesting depth on the publishing thread.
        depth: u32,
        /// Wall-clock duration in microseconds.
        duration_us: u64,
    },
    /// Counter deltas accumulated while a span was open (only counters
    /// prefixed with the span's name, only non-zero deltas).
    Counters {
        /// Span name the deltas are attributed to.
        phase: &'static str,
        /// `(counter name, delta)` pairs.
        deltas: Vec<(&'static str, u64)>,
    },
    /// A phase gave up early under a time budget and returned its
    /// best-so-far result.
    Degraded {
        /// Phase that degraded.
        phase: String,
        /// Human-readable reason.
        reason: String,
        /// Iterations completed before the cut.
        completed_iterations: u64,
    },
    /// The recovery ladder retried after a mapping error.
    Recovery {
        /// 1-based attempt number.
        attempt: u64,
        /// Candidate index being retried.
        candidate: usize,
        /// Remedy applied, e.g. `reseed`.
        remedy: String,
        /// Phase that failed.
        phase: String,
        /// The error that triggered the retry.
        error: String,
        /// Wall-clock the attempt burned, in milliseconds.
        wall_ms: f64,
    },
    /// A crash-safe checkpoint was written.
    Checkpoint {
        /// Flow phase the checkpoint captures.
        phase: String,
        /// Path the checkpoint landed at.
        path: String,
    },
    /// A daemon request-lifecycle transition (`nanomapd` tracing): one
    /// event per admission/queue/slice/cache/response stage, all stamped
    /// with the request-scoped trace id so a single request's timeline —
    /// preemption slices and coalesced followers included — can be
    /// reconstructed from the stream.
    Service {
        /// Request-scoped trace id (client-propagated or server-assigned).
        trace_id: String,
        /// Client request id echoed from the wire.
        request: String,
        /// Lifecycle stage: `queued`, `shed`, `started`, `resumed`,
        /// `cache-hit`, `coalesced`, `preempted` or `completed`.
        stage: String,
        /// Flight-recorder id of the serving run, once resolved.
        run_id: Option<String>,
        /// Terminal result code (`ok` or a typed rejection), on
        /// `completed`/`shed` stages.
        code: Option<String>,
        /// Human-readable detail (queue depth, rejection reason, …).
        detail: Option<String>,
        /// Stage duration — or end-to-end latency on `completed` —
        /// in microseconds.
        us: Option<u64>,
    },
    /// The run finished (successfully or not).
    RunEnd {
        /// Same id the run-start carried.
        run_id: String,
        /// `ok`, `degraded`, `budget-exhausted`, `recovery-exhausted`
        /// or `error`.
        status: String,
        /// Process exit code the CLI maps this outcome to.
        exit_code: i32,
        /// Per-phase wall-clock totals in milliseconds, mirroring
        /// `phase_times` in the metrics artifact.
        phase_ms: Vec<(String, f64)>,
        /// End-to-end wall-clock in milliseconds.
        total_ms: f64,
    },
}

impl EventKind {
    /// Stable kind discriminant used as the `"kind"` JSON field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run-start",
            EventKind::PhaseStart { .. } => "phase-start",
            EventKind::PhaseProgress { .. } => "phase-progress",
            EventKind::PhaseEnd { .. } => "phase-end",
            EventKind::Counters { .. } => "counters",
            EventKind::Degraded { .. } => "degraded",
            EventKind::Recovery { .. } => "recovery-attempt",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Service { .. } => "service",
            EventKind::RunEnd { .. } => "run-end",
        }
    }

    /// Low-priority events may be dropped under backpressure; lifecycle
    /// events evict a low-priority one instead.
    fn low_priority(&self) -> bool {
        matches!(
            self,
            EventKind::PhaseProgress { .. } | EventKind::Counters { .. }
        )
    }
}

impl Event {
    /// Serializes the event as one flat JSON object (the NDJSON line
    /// format of `nanomap-events-v1`).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object()
            .with("seq", self.seq)
            .with("t_us", self.t_us)
            .with("tid", self.tid)
            .with("kind", self.kind.name());
        match &self.kind {
            EventKind::RunStart {
                run_id,
                circuit,
                objective,
                place_seed,
                route_seed,
            } => {
                obj.set("schema", EVENTS_SCHEMA);
                obj.set("run_id", run_id.as_str());
                obj.set("circuit", circuit.as_str());
                obj.set("objective", objective.as_str());
                obj.set("place_seed", *place_seed);
                obj.set("route_seed", *route_seed);
            }
            EventKind::PhaseStart { phase, depth } => {
                obj.set("phase", *phase);
                obj.set("depth", *depth);
            }
            EventKind::PhaseProgress {
                phase,
                completed,
                total,
                fraction,
                metric,
            } => {
                obj.set("phase", *phase);
                obj.set("completed", *completed);
                if let Some(total) = total {
                    obj.set("total", *total);
                }
                if let Some(fraction) = fraction {
                    obj.set("fraction", *fraction);
                }
                obj.set("metric", *metric);
            }
            EventKind::PhaseEnd {
                phase,
                depth,
                duration_us,
            } => {
                obj.set("phase", *phase);
                obj.set("depth", *depth);
                obj.set("duration_us", *duration_us);
            }
            EventKind::Counters { phase, deltas } => {
                obj.set("phase", *phase);
                let mut map = JsonValue::object();
                for (name, delta) in deltas {
                    map.set(name, *delta);
                }
                obj.set("deltas", map);
            }
            EventKind::Degraded {
                phase,
                reason,
                completed_iterations,
            } => {
                obj.set("phase", phase.as_str());
                obj.set("reason", reason.as_str());
                obj.set("completed_iterations", *completed_iterations);
            }
            EventKind::Recovery {
                attempt,
                candidate,
                remedy,
                phase,
                error,
                wall_ms,
            } => {
                obj.set("attempt", *attempt);
                obj.set("candidate", *candidate);
                obj.set("remedy", remedy.as_str());
                obj.set("phase", phase.as_str());
                obj.set("error", error.as_str());
                obj.set("wall_ms", *wall_ms);
            }
            EventKind::Checkpoint { phase, path } => {
                obj.set("phase", phase.as_str());
                obj.set("path", path.as_str());
            }
            EventKind::Service {
                trace_id,
                request,
                stage,
                run_id,
                code,
                detail,
                us,
            } => {
                obj.set("trace_id", trace_id.as_str());
                obj.set("request", request.as_str());
                obj.set("stage", stage.as_str());
                if let Some(run_id) = run_id {
                    obj.set("run_id", run_id.as_str());
                }
                if let Some(code) = code {
                    obj.set("code", code.as_str());
                }
                if let Some(detail) = detail {
                    obj.set("detail", detail.as_str());
                }
                if let Some(us) = us {
                    obj.set("us", *us);
                }
            }
            EventKind::RunEnd {
                run_id,
                status,
                exit_code,
                phase_ms,
                total_ms,
            } => {
                obj.set("run_id", run_id.as_str());
                obj.set("status", status.as_str());
                obj.set("exit_code", i64::from(*exit_code));
                let mut phases = JsonValue::object();
                for (name, ms) in phase_ms {
                    phases.set(name, *ms);
                }
                obj.set("phase_ms", phases);
                obj.set("total_ms", *total_ms);
            }
        }
        obj
    }
}

/// Publishes an event (no-op while the bus is disabled). Stamps the
/// sequence number, timestamp and thread ordinal.
pub fn publish(kind: EventKind) {
    if !events_enabled() {
        return;
    }
    let event = Event {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        t_us: collector::since_epoch_us(Instant::now()),
        tid: collector::thread_ordinal(),
        kind,
    };
    let mut q = lock();
    if q.len() >= EVENT_QUEUE_CAPACITY {
        if event.kind.low_priority() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Lifecycle events matter for stream structure: make room by
        // evicting the oldest droppable event; if the queue is all
        // lifecycle (pathological), drop the incoming one.
        if let Some(pos) = q.iter().position(|e| e.kind.low_priority()) {
            q.remove(pos);
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    q.push_back(event);
}

/// Publishes a [`EventKind::PhaseProgress`] event from an iteration
/// boundary. When `total` is known the fraction is derived; otherwise
/// pass an explicit estimate through `fraction`.
pub fn progress(
    phase: &'static str,
    completed: u64,
    total: Option<u64>,
    fraction: Option<f64>,
    metric: f64,
) {
    if !events_enabled() {
        return;
    }
    let fraction = fraction
        .or_else(|| {
            total.map(|t| {
                if t == 0 {
                    1.0
                } else {
                    (completed as f64 / t as f64).min(1.0)
                }
            })
        })
        .map(|f| f.clamp(0.0, 1.0));
    publish(EventKind::PhaseProgress {
        phase,
        completed,
        total,
        fraction,
        metric,
    });
}

/// Drains every queued event, oldest first.
pub fn drain_events() -> Vec<Event> {
    lock().drain(..).collect()
}

/// Statistics returned by [`EventStream::finish`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// NDJSON lines successfully written.
    pub written: u64,
    /// Events dropped by the bounded queue while the stream was live.
    pub dropped: u64,
    /// Whether the sink failed (EPIPE, full disk…) and later events
    /// were discarded.
    pub sink_broken: bool,
}

/// Background NDJSON forwarder: drains the event bus every few
/// milliseconds and writes one compact-JSON line per event to the
/// supplied sink. Never blocks publishers; a broken sink degrades to a
/// single stderr warning.
pub struct EventStream {
    stop: std::sync::Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<StreamStats>>,
}

impl EventStream {
    /// Spawns the forwarder thread. Also enables the event bus.
    pub fn spawn(mut sink: Box<dyn Write + Send>) -> Self {
        set_events_enabled(true);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop_flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("nanomap-events".into())
            .spawn(move || {
                let mut stats = StreamStats::default();
                loop {
                    let stopping = stop_flag.load(Ordering::Relaxed);
                    let batch = drain_events();
                    if !batch.is_empty() && !stats.sink_broken {
                        let mut buf = String::new();
                        for event in &batch {
                            buf.push_str(&event.to_json().to_compact_string());
                            buf.push('\n');
                        }
                        let outcome = sink.write_all(buf.as_bytes()).and_then(|()| sink.flush());
                        match outcome {
                            Ok(()) => stats.written += batch.len() as u64,
                            Err(e) => {
                                stats.sink_broken = true;
                                eprintln!(
                                    "warning: live-status sink closed ({e}); \
                                     continuing without streaming"
                                );
                            }
                        }
                    }
                    if stopping {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                stats.dropped = dropped_events();
                stats
            })
            .expect("spawning event stream thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Flushes remaining events, stops the forwarder and returns its
    /// statistics. Also disables the event bus.
    pub fn finish(mut self) -> StreamStats {
        self.shutdown()
    }

    fn shutdown(&mut self) -> StreamStats {
        let Some(handle) = self.handle.take() else {
            return StreamStats::default();
        };
        self.stop.store(true, Ordering::Relaxed);
        let stats = handle.join().unwrap_or_default();
        set_events_enabled(false);
        stats
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bus is process-global; tests that enable it must not overlap.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_bus_drops_everything_for_free() {
        let _guard = serial();
        reset_events();
        set_events_enabled(false);
        publish(EventKind::PhaseStart {
            phase: "noop",
            depth: 0,
        });
        progress("noop", 1, Some(2), None, 0.0);
        assert!(drain_events().is_empty());
        assert_eq!(dropped_events(), 0);
    }

    #[test]
    fn progress_derives_and_clamps_fraction() {
        let _guard = serial();
        reset_events();
        set_events_enabled(true);
        progress("p", 5, Some(10), None, 1.5);
        progress("p", 30, Some(10), None, 0.0); // over-complete clamps
        progress("p", 1, None, Some(7.0), 0.0); // explicit estimate clamps
        set_events_enabled(false);
        let events = drain_events();
        let fractions: Vec<f64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::PhaseProgress {
                    phase: "p",
                    fraction,
                    ..
                } => *fraction,
                _ => None,
            })
            .collect();
        assert_eq!(fractions, vec![0.5, 1.0, 1.0]);
    }

    #[test]
    fn backpressure_drops_low_priority_and_keeps_lifecycle() {
        let _guard = serial();
        reset_events();
        set_events_enabled(true);
        for i in 0..EVENT_QUEUE_CAPACITY + 10 {
            progress("flood", i as u64, None, Some(0.5), 0.0);
        }
        // Other tests' spans may also publish while the bus is up, so
        // bound rather than pin the counts.
        assert!(dropped_events() >= 10);
        // A lifecycle event still gets in by evicting a progress event.
        publish(EventKind::PhaseEnd {
            phase: "flood",
            depth: 0,
            duration_us: 1,
        });
        set_events_enabled(false);
        let events = drain_events();
        assert!(events.len() <= EVENT_QUEUE_CAPACITY);
        assert!(events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::PhaseEnd { phase: "flood", .. })));
        reset_events();
        assert_eq!(dropped_events(), 0);
    }

    #[test]
    fn concurrent_publishers_stay_monotonic_per_thread_and_nest() {
        let _guard = serial();
        reset_events();
        set_events_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        publish(EventKind::PhaseStart {
                            phase: "evt-outer",
                            depth: 0,
                        });
                        publish(EventKind::PhaseStart {
                            phase: "evt-inner",
                            depth: 1,
                        });
                        progress("evt-inner", 1, Some(2), None, 0.0);
                        publish(EventKind::PhaseEnd {
                            phase: "evt-inner",
                            depth: 1,
                            duration_us: 1,
                        });
                        publish(EventKind::PhaseEnd {
                            phase: "evt-outer",
                            depth: 0,
                            duration_us: 2,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        set_events_enabled(false);
        // Other tests may publish onto the shared bus; keep only this
        // test's events (all use an `evt-` phase prefix).
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    EventKind::PhaseStart { phase, .. }
                    | EventKind::PhaseEnd { phase, .. }
                    | EventKind::PhaseProgress { phase, .. }
                        if phase.starts_with("evt-")
                )
            })
            .collect();
        assert_eq!(events.len(), 4 * 50 * 5);
        // Per-thread: sequence numbers strictly increase and
        // phase-start/phase-end nest, even after the global merge.
        let mut last_seq: std::collections::BTreeMap<u32, u64> = Default::default();
        let mut stacks: std::collections::BTreeMap<u32, Vec<&'static str>> = Default::default();
        for e in &events {
            if let Some(&prev) = last_seq.get(&e.tid) {
                assert!(e.seq > prev, "tid {} went {} -> {}", e.tid, prev, e.seq);
            }
            last_seq.insert(e.tid, e.seq);
            match &e.kind {
                EventKind::PhaseStart { phase, .. } => {
                    stacks.entry(e.tid).or_default().push(phase);
                }
                EventKind::PhaseEnd { phase, .. } => {
                    assert_eq!(stacks.entry(e.tid).or_default().pop(), Some(*phase));
                }
                _ => {}
            }
        }
        assert!(stacks.values().all(Vec::is_empty));
        assert_eq!(last_seq.len(), 4, "expected one lane per thread");
    }

    /// A sink that fails every write, standing in for EPIPE.
    struct BrokenSink;
    impl Write for BrokenSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[derive(Clone, Default)]
    struct SharedSink(std::sync::Arc<Mutex<Vec<u8>>>);
    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_forwards_ndjson_lines() {
        let _guard = serial();
        reset_events();
        let sink = SharedSink::default();
        let stream = EventStream::spawn(Box::new(sink.clone()));
        publish(EventKind::PhaseStart {
            phase: "streamed",
            depth: 0,
        });
        publish(EventKind::PhaseEnd {
            phase: "streamed",
            depth: 0,
            duration_us: 3,
        });
        let stats = stream.finish();
        assert!(stats.written >= 2);
        assert!(!stats.sink_broken);
        assert!(!events_enabled(), "finish() must disable the bus");
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        // Foreign tests may also stream lines; count only ours.
        let streamed = text
            .lines()
            .map(|line| crate::json::parse(line).unwrap())
            .filter(|v| v.get("phase").and_then(JsonValue::as_str) == Some("streamed"))
            .count();
        assert_eq!(streamed, 2);
    }

    #[test]
    fn broken_sink_degrades_without_failing() {
        let _guard = serial();
        reset_events();
        let stream = EventStream::spawn(Box::new(BrokenSink));
        publish(EventKind::PhaseStart {
            phase: "doomed",
            depth: 0,
        });
        publish(EventKind::PhaseEnd {
            phase: "doomed",
            depth: 0,
            duration_us: 1,
        });
        let stats = stream.finish();
        assert!(stats.sink_broken);
        assert_eq!(stats.written, 0);
    }
}
