//! Counters, gauges and log-scale histograms.
//!
//! All metric types are lock-free on the hot path: handles wrap
//! `Arc<Atomic…>` cells resolved once from the global registry, so an
//! instrumented inner loop pays one relaxed load (the enabled check) plus
//! one atomic RMW per event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::collector::enabled;

/// A monotonic counter handle. Cheap to clone; resolve once per hot loop
/// via [`crate::counter`].
#[derive(Debug, Clone)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op while observability is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: latest-value semantics, stored as `f64` bits.
#[derive(Debug, Clone)]
pub struct Gauge(pub(crate) Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge (no-op while observability is disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: bucket `b` holds values with bit-length `b`,
/// i.e. `[2^(b-1), 2^b)`; bucket 0 holds zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-scale histogram over `u64` samples.
///
/// Values land in power-of-two buckets by bit length, so the histogram
/// covers the full `u64` range in 65 cells with ≤ 2× relative error on
/// percentile readouts — plenty for iteration counts, microsecond
/// durations and overflow tallies.
#[derive(Debug)]
pub struct Histogram {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

pub(crate) fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Representative (upper-bound) value of a bucket.
pub(crate) fn bucket_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    pub(crate) fn record_raw(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A histogram handle resolved from the registry.
#[derive(Debug, Clone)]
pub struct HistogramHandle(pub(crate) Arc<Histogram>);

impl HistogramHandle {
    /// A standalone histogram detached from the global registry and its
    /// enabled gate. Subsystems that must account unconditionally (the
    /// serving daemon's latency accounting) use this with
    /// [`Self::record_always`], so their bookkeeping runs even while
    /// flow observability stays off and artifacts stay byte-identical.
    #[must_use]
    pub fn standalone() -> Self {
        Self(Arc::new(Histogram::default()))
    }

    /// Records one sample (no-op while observability is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if enabled() {
            self.0.record_raw(value);
        }
    }

    /// Records one sample unconditionally, bypassing the global enable
    /// gate — for [standalone](Self::standalone) histograms that must
    /// count regardless of whether flow observability is on.
    #[inline]
    pub fn record_always(&self, value: u64) {
        self.0.record_raw(value);
    }

    /// Records `|value| * scale` rounded down — the idiom for signed or
    /// fractional samples such as annealing cost deltas.
    #[inline]
    pub fn record_scaled(&self, value: f64, scale: f64) {
        if enabled() {
            let scaled = (value.abs() * scale).min(u64::MAX as f64);
            self.0.record_raw(scaled as u64);
        }
    }

    /// An immutable snapshot for readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::from(&*self.0)
    }
}

/// Immutable view of a histogram for percentile readout and export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (wraps above `u64::MAX`).
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
    /// `(bucket_upper_bound, sample_count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((bucket_bound(b), count))
            })
            .collect();
        Self {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile `p` in `[0, 100]`: the upper bound of the
    /// bucket containing the p-th ranked sample (0 when empty). The true
    /// maximum caps the readout so p100 is exact.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for &(bound, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentiles_bound_true_values_within_2x() {
        crate::set_enabled(true);
        let h = HistogramHandle(Arc::new(Histogram::default()));
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        let p50 = snap.percentile(50.0);
        // True median 500; log buckets land it in (256, 511].
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        assert!(p50 >= 500 / 2);
        assert_eq!(snap.percentile(100.0), 1000);
        assert!(snap.percentile(1.0) <= 31);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = HistogramHandle(Arc::new(Histogram::default()));
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(99.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_every_percentile_is_zero() {
        let h = HistogramHandle(Arc::new(Histogram::default()));
        let snap = h.snapshot();
        for q in [0.0, 1.0, 50.0, 95.0, 99.9, 100.0] {
            assert_eq!(snap.percentile(q), 0, "p{q} of empty histogram");
        }
    }

    #[test]
    fn single_sample_histogram_is_that_sample_at_every_percentile() {
        crate::set_enabled(true);
        let h = HistogramHandle(Arc::new(Histogram::default()));
        h.record(42);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        for q in [0.0, 50.0, 99.0, 100.0] {
            // The max cap clamps the log-bucket bound to the true value.
            assert_eq!(snap.percentile(q), 42, "p{q}");
        }
        assert_eq!(snap.mean(), 42.0);
    }

    #[test]
    fn standalone_histograms_record_unconditionally() {
        // No set_enabled here: record_always must count regardless of
        // the global gate (shared with concurrently running tests).
        let h = HistogramHandle::standalone();
        h.record_always(7);
        h.record_always(9);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 16);
        assert_eq!(snap.percentile(100.0), 9);
    }

    #[test]
    fn zero_valued_samples_are_counted_not_dropped() {
        crate::set_enabled(true);
        let h = HistogramHandle(Arc::new(Histogram::default()));
        h.record(0);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.percentile(100.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
