//! The thread-safe global collector and its two sinks.
//!
//! One process-wide collector gathers finished spans and the metric
//! registries. Reading happens through [`snapshot`], which freezes
//! everything into a [`MetricsSnapshot`] with a tree renderer (human
//! sink) and a JSON emitter (machine sink).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metrics::{Counter, Gauge, Histogram, HistogramHandle, HistogramSnapshot};
use crate::series::{SeriesData, SeriesHandle, SeriesSnapshot};
use crate::span::SpanRecord;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ECHO: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Stable per-process ordinal of the calling thread (0 = first thread
/// that touched the collector). Used as the Chrome-trace track id.
pub fn thread_ordinal() -> u32 {
    TID.with(|t| *t)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn since_epoch_us(at: Instant) -> u64 {
    at.saturating_duration_since(epoch())
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

#[derive(Default)]
struct Registry {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    gauges: BTreeMap<&'static str, Arc<AtomicU64>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    series: BTreeMap<&'static str, Arc<Mutex<SeriesData>>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // A poisoned registry only means a panic mid-record; the data is
    // still sound for reporting.
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Globally enables or disables observability. Disabled (the default),
/// spans and metric updates are no-ops costing one relaxed atomic load.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first span so start offsets are small.
    let _ = epoch();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Live echo of closing spans to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Echo {
    /// No live output (default).
    Off,
    /// Top-level phases only (depth ≤ 1).
    Progress,
    /// Every span.
    Trace,
}

/// Selects the live echo mode (spans print to stderr as they close).
pub fn set_echo(mode: Echo) {
    ECHO.store(
        match mode {
            Echo::Off => 0,
            Echo::Progress => 1,
            Echo::Trace => 2,
        },
        Ordering::Relaxed,
    );
}

pub(crate) fn record_span(record: SpanRecord) {
    match ECHO.load(Ordering::Relaxed) {
        1 if record.depth <= 1 => echo_span(&record),
        2 => echo_span(&record),
        _ => {}
    }
    lock().spans.push(record);
}

fn echo_span(record: &SpanRecord) {
    let indent = "  ".repeat(record.depth as usize);
    let attrs = render_attrs(&record.attrs);
    eprintln!(
        "[observe] {indent}{name}{attrs} {ms:.3} ms",
        name = record.name,
        ms = record.duration_ms()
    );
}

fn render_attrs(attrs: &[(&'static str, JsonValue)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("{k}={}", v.to_compact_string()))
        .collect();
    format!("({})", body.join(", "))
}

/// Resolves (registering on first use) the counter `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter(Arc::clone(lock().counters.entry(name).or_default()))
}

/// Resolves (registering on first use) the gauge `name`.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge(Arc::clone(lock().gauges.entry(name).or_default()))
}

/// Resolves (registering on first use) the histogram `name`.
pub fn histogram(name: &'static str) -> HistogramHandle {
    HistogramHandle(Arc::clone(lock().histograms.entry(name).or_default()))
}

/// Resolves (registering on first use) the time series `name`.
pub fn series(name: &'static str) -> SeriesHandle {
    SeriesHandle(Arc::clone(lock().series.entry(name).or_default()))
}

/// Convenience one-shot counter increment (registry lookup per call —
/// fine off the hot path).
pub fn incr(name: &'static str, n: u64) {
    counter(name).add(n);
}

/// Current values of every counter whose name starts with `prefix`.
/// Feeds the event bus's per-span counter-delta events.
pub(crate) fn counters_with_prefix(prefix: &str) -> Vec<(&'static str, u64)> {
    lock()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
        .collect()
}

/// Clears all recorded spans and metric values (registrations survive;
/// handles held by callers keep working). Intended for tests and for
/// multi-run drivers that emit one report per run.
pub fn reset() {
    let mut reg = lock();
    reg.spans.clear();
    for cell in reg.counters.values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.gauges.values() {
        cell.store(0, Ordering::Relaxed);
    }
    for hist in reg.histograms.values() {
        for bucket in &hist.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        hist.count.store(0, Ordering::Relaxed);
        hist.sum.store(0, Ordering::Relaxed);
        hist.max.store(0, Ordering::Relaxed);
    }
    for cell in reg.series.values() {
        cell.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reset();
    }
}

/// Everything the collector knows, frozen at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Finished spans in close order.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// Time-series snapshots by name.
    pub series: BTreeMap<&'static str, SeriesSnapshot>,
}

/// Takes a consistent snapshot of spans, counters, gauges and histograms.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock();
    MetricsSnapshot {
        spans: reg.spans.clone(),
        counters: reg
            .counters
            .iter()
            .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(&name, cell)| (name, f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(&name, hist)| (name, HistogramSnapshot::from(&**hist)))
            .collect(),
        series: reg
            .series
            .iter()
            .map(|(&name, cell)| {
                (
                    name,
                    cell.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .snapshot(),
                )
            })
            .collect(),
    }
}

impl MetricsSnapshot {
    /// All span records with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a series, if it was ever registered.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.get(name)
    }

    /// The machine sink: spans, counters, gauges and histograms as one
    /// JSON object (serde-free; see [`crate::json`]).
    pub fn to_json(&self) -> JsonValue {
        let spans: Vec<JsonValue> = self
            .spans
            .iter()
            .map(|s| {
                let mut attrs = JsonValue::object();
                for (k, v) in &s.attrs {
                    attrs.set(k, v.clone());
                }
                JsonValue::object()
                    .with("id", s.id)
                    .with("parent", s.parent)
                    .with("name", s.name)
                    .with("depth", s.depth)
                    .with("tid", s.tid)
                    .with("start_us", s.start_us)
                    .with("duration_us", s.duration_us)
                    .with("attrs", attrs)
            })
            .collect();
        let mut counters = JsonValue::object();
        for (&name, &value) in &self.counters {
            counters.set(name, value);
        }
        let mut gauges = JsonValue::object();
        for (&name, &value) in &self.gauges {
            gauges.set(name, value);
        }
        let mut histograms = JsonValue::object();
        for (&name, snap) in &self.histograms {
            let buckets: Vec<JsonValue> = snap
                .buckets
                .iter()
                .map(|&(bound, count)| JsonValue::object().with("le", bound).with("count", count))
                .collect();
            histograms.set(
                name,
                JsonValue::object()
                    .with("count", snap.count)
                    .with("sum", snap.sum)
                    .with("max", snap.max)
                    .with("mean", snap.mean())
                    .with("p50", snap.percentile(50.0))
                    .with("p90", snap.percentile(90.0))
                    .with("p99", snap.percentile(99.0))
                    .with("buckets", JsonValue::Array(buckets)),
            );
        }
        let mut series = JsonValue::object();
        for (&name, snap) in &self.series {
            let points: Vec<JsonValue> = snap
                .points
                .iter()
                .map(|p| JsonValue::Array(vec![JsonValue::from(p.x), JsonValue::from(p.y)]))
                .collect();
            series.set(
                name,
                JsonValue::object()
                    .with("count", snap.count)
                    .with("stride", snap.stride)
                    .with("min", snap.min_y)
                    .with("max", snap.max_y)
                    .with("last", snap.last_y())
                    .with("points", JsonValue::Array(points)),
            );
        }
        JsonValue::object()
            .with("spans", JsonValue::Array(spans))
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
            .with("series", series)
    }

    /// The human sink: an aggregated per-phase tree. Sibling spans with
    /// the same name fold into one line (`×N`, summed time); attributes
    /// print only for singletons.
    pub fn render_tree(&self) -> String {
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for span in &self.spans {
            children.entry(span.parent).or_default().push(span);
        }
        // Parents whose records exist; spans whose parent never closed
        // (snapshot mid-flight) render as roots.
        let known: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !known.contains(&p)))
            .collect();
        roots.sort_by_key(|s| s.start_us);
        let mut out = String::new();
        render_level(&mut out, &roots, &children, 0);
        for (name, &value) in &self.counters {
            if value > 0 {
                out.push_str(&format!("counter {name} = {value}\n"));
            }
        }
        for (name, snap) in &self.histograms {
            if snap.count > 0 {
                out.push_str(&format!(
                    "histogram {name}: n={} mean={:.1} p50={} p90={} max={}\n",
                    snap.count,
                    snap.mean(),
                    snap.percentile(50.0),
                    snap.percentile(90.0),
                    snap.max
                ));
            }
        }
        for (name, snap) in &self.series {
            if snap.count > 0 {
                out.push_str(&format!(
                    "series {name}: n={} last={:.3} min={:.3} max={:.3} (kept {}, stride {})\n",
                    snap.count,
                    snap.last_y(),
                    snap.min_y,
                    snap.max_y,
                    snap.points.len(),
                    snap.stride
                ));
            }
        }
        out
    }
}

fn render_level(
    out: &mut String,
    spans: &[&SpanRecord],
    children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
    depth: usize,
) {
    // Aggregate siblings by name, keeping first-seen order.
    let mut order: Vec<&'static str> = Vec::new();
    let mut groups: BTreeMap<&'static str, Vec<&SpanRecord>> = BTreeMap::new();
    for &span in spans {
        if !groups.contains_key(span.name) {
            order.push(span.name);
        }
        groups.entry(span.name).or_default().push(span);
    }
    for name in order {
        let group = &groups[name];
        let total_ms: f64 = group.iter().map(|s| s.duration_ms()).sum();
        let indent = "  ".repeat(depth);
        if group.len() == 1 {
            let attrs = render_attrs(&group[0].attrs);
            out.push_str(&format!("{indent}{name}{attrs} {total_ms:.3} ms\n"));
        } else {
            out.push_str(&format!(
                "{indent}{name} ×{} {total_ms:.3} ms\n",
                group.len()
            ));
        }
        let mut kids: Vec<&SpanRecord> = group
            .iter()
            .flat_map(|s| children.get(&Some(s.id)).into_iter().flatten().copied())
            .collect();
        kids.sort_by_key(|s| s.start_us);
        render_level(out, &kids, children, depth + 1);
    }
}
