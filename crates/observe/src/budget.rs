//! Deadline budgets and cooperative cancellation.
//!
//! The flow threads one [`CancelToken`] through every phase. Iterative
//! phases (FDS rounds, annealing temperature steps, PathFinder
//! iterations) poll [`CancelToken::expired`] at iteration boundaries
//! only — never mid-move — so a run with no budget reads no clock,
//! consumes no extra RNG draws, and stays byte-identical to a run
//! without the token plumbed at all.
//!
//! On expiry a phase finishes its current iteration, snapshots a valid
//! *best-so-far* result, and returns it as
//! [`Anytime::Degraded`] with a [`Degradation`] record instead of an
//! error. The flow driver decides whether a degraded mapping is
//! acceptable (anytime mode) or a failure (strict mode).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// Shared cancellation state. Allocated only when a deadline or manual
/// cancellation is actually requested.
#[derive(Debug)]
struct TokenInner {
    /// Absolute wall-clock deadline, if a time budget was set.
    deadline: Option<Instant>,
    /// Manual cancellation flag (e.g. a server dropping a request).
    cancelled: AtomicBool,
}

/// A cooperative cancellation token with an optional wall-clock deadline.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// deadline and cancellation flag. The default token is *unlimited*:
/// [`expired`](Self::expired) is a single `None` check with no clock
/// read, so unbudgeted runs pay nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// A token that never expires and cannot be cancelled. Polling it is
    /// free (no clock read).
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A token that expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Some(Arc::new(TokenInner {
                deadline: Some(Instant::now() + budget),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// A token from an optional millisecond budget (`None` = unlimited).
    /// This is the shape CLI flags arrive in.
    pub fn with_budget_ms(budget_ms: Option<u64>) -> Self {
        match budget_ms {
            Some(ms) => Self::with_deadline(Duration::from_millis(ms)),
            None => Self::unlimited(),
        }
    }

    /// A token with no deadline that can still be cancelled manually.
    pub fn cancellable() -> Self {
        Self {
            inner: Some(Arc::new(TokenInner {
                deadline: None,
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// Requests cancellation. All clones observe it on their next poll.
    /// No-op on an unlimited token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether the deadline has passed or [`cancel`](Self::cancel) was
    /// called. The polling point for every iterative phase.
    pub fn expired(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Time left before the deadline, or `None` when no deadline was set.
    /// A cancelled or expired token reports `Duration::ZERO`.
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::Acquire) {
            return inner
                .deadline
                .map(|_| Duration::ZERO)
                .or(Some(Duration::ZERO));
        }
        inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Milliseconds left before the deadline (`None` = no deadline).
    pub fn remaining_ms(&self) -> Option<f64> {
        self.remaining().map(|d| d.as_secs_f64() * 1000.0)
    }

    /// Whether this token can ever expire.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }
}

/// Record of a phase that ran out of budget and returned best-so-far.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Flow phase that degraded (`"fds"`, `"place"`, `"route"`, …).
    pub phase: String,
    /// Human-readable cause.
    pub reason: String,
    /// Iterations the phase completed before stopping.
    pub completed_iterations: u64,
    /// Phase-local quality estimate of the best-so-far result (peak LUT
    /// count for FDS, placement cost for annealing, overused routing
    /// nodes for PathFinder).
    pub qor_estimate: f64,
}

impl Degradation {
    /// JSON object mirroring the struct.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("phase", self.phase.as_str())
            .with("reason", self.reason.as_str())
            .with("completed_iterations", self.completed_iterations)
            .with("qor_estimate", self.qor_estimate)
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} after {} iterations (qor estimate {:.3})",
            self.phase, self.reason, self.completed_iterations, self.qor_estimate
        )
    }
}

/// Result of a budget-aware phase: either it finished, or the budget
/// expired and it returned a valid best-so-far value plus the record of
/// what was cut short.
#[derive(Debug, Clone, PartialEq)]
pub enum Anytime<T> {
    /// The phase ran to completion.
    Complete(T),
    /// The budget expired; the value is valid but best-so-far.
    Degraded(T, Degradation),
}

impl<T> Anytime<T> {
    /// The inner value, complete or not.
    pub fn value(&self) -> &T {
        match self {
            Self::Complete(v) | Self::Degraded(v, _) => v,
        }
    }

    /// Consumes into the inner value, discarding any degradation.
    pub fn into_value(self) -> T {
        match self {
            Self::Complete(v) | Self::Degraded(v, _) => v,
        }
    }

    /// Splits into the value and the optional degradation record.
    pub fn into_parts(self) -> (T, Option<Degradation>) {
        match self {
            Self::Complete(v) => (v, None),
            Self::Degraded(v, d) => (v, Some(d)),
        }
    }

    /// Whether the budget cut this phase short.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded(..))
    }

    /// Maps the inner value, preserving the degradation record.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Anytime<U> {
        match self {
            Self::Complete(v) => Anytime::Complete(f(v)),
            Self::Degraded(v, d) => Anytime::Degraded(f(v), d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let t = CancelToken::unlimited();
        assert!(!t.expired());
        assert!(t.is_unlimited());
        assert_eq!(t.remaining(), None);
        assert_eq!(t.remaining_ms(), None);
        t.cancel(); // no-op
        assert!(!t.expired());
    }

    #[test]
    fn default_is_unlimited() {
        assert!(CancelToken::default().is_unlimited());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.expired());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_not_expired() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.expired());
        assert!(!t.is_unlimited());
        let ms = t.remaining_ms().expect("deadline set");
        assert!(ms > 3_000_000.0);
    }

    #[test]
    fn budget_ms_none_is_unlimited() {
        assert!(CancelToken::with_budget_ms(None).is_unlimited());
        assert!(CancelToken::with_budget_ms(Some(0)).expired());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::cancellable();
        let clone = t.clone();
        assert!(!clone.expired());
        t.cancel();
        assert!(clone.expired());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn degradation_json_round_shape() {
        let d = Degradation {
            phase: "route".into(),
            reason: "time budget expired".into(),
            completed_iterations: 7,
            qor_estimate: 3.0,
        };
        let j = d.to_json();
        assert_eq!(j.get("phase").and_then(JsonValue::as_str), Some("route"));
        assert_eq!(
            j.get("completed_iterations").and_then(JsonValue::as_int),
            Some(7)
        );
        assert!(d.summary().contains("after 7 iterations"));
    }

    #[test]
    fn anytime_accessors() {
        let c: Anytime<u32> = Anytime::Complete(5);
        assert!(!c.is_degraded());
        assert_eq!(*c.value(), 5);
        let d = Anytime::Degraded(
            6u32,
            Degradation {
                phase: "fds".into(),
                reason: "budget".into(),
                completed_iterations: 1,
                qor_estimate: 0.0,
            },
        );
        assert!(d.is_degraded());
        let mapped = d.map(|v| v * 2);
        let (v, deg) = mapped.into_parts();
        assert_eq!(v, 12);
        assert_eq!(deg.expect("degraded").phase, "fds");
    }
}
