//! # nanomap-observe
//!
//! Zero-dependency observability for the NanoMap flow: hierarchical
//! wall-clock [spans](span!), monotonic [counters](counter) and
//! [gauges](gauge), log-scale [histograms](histogram) with percentile
//! readout, bounded time [series](series) for convergence trajectories,
//! a thread-safe global [collector](snapshot), and three sinks —
//! a human-readable per-phase tree ([`MetricsSnapshot::render_tree`]),
//! a hand-rolled JSON emitter ([`MetricsSnapshot::to_json`], serde-free),
//! and a Chrome trace-event exporter
//! ([`MetricsSnapshot::to_chrome_trace`], loadable in Perfetto).
//!
//! Everything is **off by default** and costs one relaxed atomic load per
//! instrumentation site until [`set_enabled`]`(true)` — the flow's hot
//! paths stay hot with observability compiled in.
//!
//! The crate also hosts the workspace's determinism substrate:
//! [`rng::XorShift64Star`], the seeded PRNG that replaced the `rand`
//! crate so annealing and routing runs reproduce from one logged seed.
//!
//! ```
//! use nanomap_observe as observe;
//!
//! observe::set_enabled(true);
//! {
//!     let _phase = observe::span!("fds", items = 12usize);
//!     observe::counter("fds.force_evals").add(144);
//!     observe::histogram("fds.round_us").record(250);
//!     observe::series("fds.best_force").record(0, 3.5);
//! }
//! let snap = observe::snapshot();
//! assert_eq!(snap.counter("fds.force_evals"), 144);
//! assert!(!snap.spans_named("fds").is_empty());
//! assert_eq!(snap.series("fds.best_force").unwrap().last_y(), 3.5);
//! let json = snap.to_json().to_pretty_string();
//! assert!(json.contains("\"fds.force_evals\""));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod budget;
pub mod events;
pub mod failpoint;
pub mod json;
pub mod profile;
pub mod rng;

mod collector;
mod metrics;
mod series;
mod span;
mod trace;

pub use alloc::{
    memory_report, memory_tracking, read_rss_kb, reset_memory, sample_rss_kb, set_memory_tracking,
    CountingAllocator, MemoryReport,
};
pub use budget::{Anytime, CancelToken, Degradation};
pub use collector::{
    counter, enabled, gauge, histogram, incr, reset, series, set_echo, set_enabled, snapshot,
    thread_ordinal, Echo, MetricsSnapshot,
};
pub use failpoint::{FailMode, FAILPOINTS_ENV, FAILPOINT_SEED_ENV};

pub use events::{
    drain_events, dropped_events, events_enabled, publish, reset_events, set_events_enabled, Event,
    EventKind, EventStream, StreamStats, EVENTS_SCHEMA, EVENT_QUEUE_CAPACITY,
};
pub use json::JsonValue;
pub use metrics::{Counter, Gauge, HistogramHandle, HistogramSnapshot};
pub use profile::{
    sampler_running, start_sampler, stop_sampler, HotPath, ProfileData, ProfilePath,
    DEFAULT_SAMPLE_HZ, PROFILE_SCHEMA,
};
pub use series::{SeriesHandle, SeriesPoint, SeriesSnapshot, SERIES_CAPACITY};
pub use span::{SpanAttr, SpanGuard, SpanRecord};
