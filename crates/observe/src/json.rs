//! Hand-rolled JSON values and serialization — no external crates.
//!
//! The flow must emit machine-readable metrics in offline environments
//! where `serde` cannot even be resolved, so escaping and formatting are
//! done in-crate. The emitter produces strictly valid JSON: non-finite
//! floats become `null`, strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Creates an empty object.
    pub fn object() -> Self {
        Self::Object(Vec::new())
    }

    /// Inserts a key into an object (panics on non-objects: builder misuse
    /// is a programming error, not a data error).
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            Self::Object(entries) => entries.push((key.to_string(), value.into())),
            other => panic!("JsonValue::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Self::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content, when this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Self::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as a float, when this is a number (integers
    /// are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Float(f) => Some(*f),
            Self::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Self::Float(f) => write_f64(out, *f),
            Self::Str(s) => write_escaped(out, s),
            Self::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Self::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Writes a float as a valid JSON number (`null` for NaN/∞).
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` on f64 never produces exponents for ordinary magnitudes and
        // round-trips the value; "1" is a valid JSON number.
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

/// Writes a string with RFC 8259 escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        Self::Int(i)
    }
}

impl From<i32> for JsonValue {
    fn from(i: i32) -> Self {
        Self::Int(i64::from(i))
    }
}

impl From<u16> for JsonValue {
    fn from(i: u16) -> Self {
        Self::Int(i64::from(i))
    }
}

impl From<u32> for JsonValue {
    fn from(i: u32) -> Self {
        Self::Int(i64::from(i))
    }
}

impl From<u64> for JsonValue {
    fn from(i: u64) -> Self {
        i64::try_from(i).map_or(Self::Float(i as f64), Self::Int)
    }
}

impl From<usize> for JsonValue {
    fn from(i: usize) -> Self {
        Self::from(i as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        Self::Float(f)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(o: Option<T>) -> Self {
        o.map_or(Self::Null, Into::into)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        Self::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A minimal JSON validator/parser used by the test-suite to check that
/// emitted metrics are well-formed (it builds the value tree; numbers are
/// parsed as `f64`).
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum container nesting the parser accepts. Every value this
/// workspace emits is a handful of levels deep; the cap exists so a
/// corrupt or adversarial input (`[[[[…`) yields a typed parse error
/// instead of exhausting the thread stack — callers like `--resume`
/// and the daemon's cache loader treat that error as "torn file".
pub const MAX_PARSE_DEPTH: usize = 512;

fn parse_value(
    text: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<JsonValue, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_PARSE_DEPTH} at byte {pos}"
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    other => return Err(format!("expected , or ] at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(text, bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(entries));
                    }
                    other => return Err(format!("expected , or }} at byte {pos}, got {other:?}")),
                }
            }
        }
        Some(_) => {
            // Number.
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let slice = &text[start..*pos];
            if let Ok(i) = slice.parse::<i64>() {
                Ok(JsonValue::Int(i))
            } else {
                slice
                    .parse::<f64>()
                    .map(JsonValue::Float)
                    .map_err(|e| format!("bad number {slice:?} at byte {start}: {e}"))
            }
        }
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one full UTF-8 character.
                let c = text[*pos..].chars().next().expect("in-bounds char");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");
        // Anything at or under the cap still parses.
        let ok = "[".repeat(MAX_PARSE_DEPTH) + &"]".repeat(MAX_PARSE_DEPTH);
        parse(&ok).unwrap();
    }

    #[test]
    fn escaping_edge_cases_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab\rand\u{08}bs\u{0C}ff",
            "control \u{01}\u{1f} chars",
            "unicode: caffè ☕ 図",
            "",
        ] {
            let emitted = JsonValue::from(s).to_compact_string();
            let parsed = parse(&emitted).expect("valid JSON");
            assert_eq!(parsed.as_str(), Some(s), "round-trip of {s:?}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).to_compact_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_compact_string(), "null");
        assert_eq!(JsonValue::from(1.5f64).to_compact_string(), "1.5");
    }

    #[test]
    fn object_and_array_shape() {
        let v = JsonValue::object()
            .with("a", 1u32)
            .with("b", vec![1i64, 2, 3])
            .with("c", JsonValue::Null)
            .with("d", Some("x"));
        let compact = v.to_compact_string();
        assert_eq!(compact, r#"{"a":1,"b":[1,2,3],"c":null,"d":"x"}"#);
        let parsed = parse(&compact).unwrap();
        assert_eq!(parsed.get("a").and_then(JsonValue::as_int), Some(1));
        assert_eq!(parsed.get("d").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = JsonValue::object()
            .with("nested", JsonValue::object().with("k", "v"))
            .with("empty", JsonValue::Array(vec![]));
        let pretty = v.to_pretty_string();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn huge_u64_degrades_to_float() {
        let v = JsonValue::from(u64::MAX);
        assert!(matches!(v, JsonValue::Float(_)));
        assert_eq!(JsonValue::from(42u64), JsonValue::Int(42));
    }
}
