//! Chrome trace-event export.
//!
//! [`MetricsSnapshot::to_chrome_trace`] renders a snapshot in the
//! [Trace Event Format] understood by Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`: every finished span becomes a complete (`X`)
//! duration event on its thread's track, and every time series becomes a
//! counter (`C`) track sampled at the wall-clock instants the points were
//! recorded. Timestamps are microseconds since the collector epoch, which
//! is exactly the unit the format expects.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! ```
//! use nanomap_observe as observe;
//! observe::set_enabled(true);
//! {
//!     let _phase = observe::span!("place");
//!     observe::series("place.cost").record(0, 42.0);
//! }
//! let trace = observe::snapshot().to_chrome_trace().to_pretty_string();
//! assert!(trace.contains("\"traceEvents\""));
//! assert!(trace.contains("\"ph\": \"C\""));
//! ```

use std::collections::BTreeSet;

use crate::collector::MetricsSnapshot;
use crate::json::JsonValue;

/// The process id stamped on every event (one flow = one process).
const PID: u32 = 1;

impl MetricsSnapshot {
    /// Renders the snapshot as a Chrome trace-event JSON document.
    ///
    /// Load the result in Perfetto or `chrome://tracing`: spans appear as
    /// nested slices on per-thread tracks, series as counter tracks.
    pub fn to_chrome_trace(&self) -> JsonValue {
        self.to_chrome_trace_with_events(Vec::new())
    }

    /// [`Self::to_chrome_trace`] with caller-supplied extra trace events
    /// appended (already in Trace Event Format — e.g. the flow's
    /// critical-path hops as flow events).
    pub fn to_chrome_trace_with_events(&self, extra: Vec<JsonValue>) -> JsonValue {
        let mut events: Vec<JsonValue> = Vec::new();
        events.push(meta_event(
            "process_name",
            None,
            JsonValue::object().with("name", "nanomap"),
        ));
        // One named track per thread that recorded spans.
        let tids: BTreeSet<u32> = self.spans.iter().map(|s| s.tid).collect();
        for &tid in &tids {
            let name = if tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            };
            events.push(meta_event(
                "thread_name",
                Some(tid),
                JsonValue::object().with("name", name),
            ));
        }
        for span in &self.spans {
            let mut args = JsonValue::object();
            for (k, v) in &span.attrs {
                args.set(k, v.clone());
            }
            args.set("depth", span.depth);
            events.push(
                JsonValue::object()
                    .with("name", span.name)
                    .with("cat", "span")
                    .with("ph", "X")
                    .with("pid", PID)
                    .with("tid", span.tid)
                    .with("ts", span.start_us)
                    // Zero-duration slices are invisible; clamp to 1 µs.
                    .with("dur", span.duration_us.max(1))
                    .with("args", args),
            );
        }
        for (&name, snap) in &self.series {
            for point in &snap.points {
                events.push(
                    JsonValue::object()
                        .with("name", name)
                        .with("cat", "series")
                        .with("ph", "C")
                        .with("pid", PID)
                        .with("ts", point.t_us)
                        .with("args", JsonValue::object().with("value", point.y)),
                );
            }
        }
        events.extend(extra);
        JsonValue::object()
            .with("traceEvents", JsonValue::Array(events))
            .with("displayTimeUnit", "ms")
    }
}

fn meta_event(name: &str, tid: Option<u32>, args: JsonValue) -> JsonValue {
    let mut event = JsonValue::object()
        .with("name", name)
        .with("ph", "M")
        .with("pid", PID);
    if let Some(tid) = tid {
        event.set("tid", tid);
    }
    event.set("args", args);
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::series::{SeriesPoint, SeriesSnapshot};
    use crate::span::SpanRecord;
    use std::collections::BTreeMap;

    type SeriesSpec = Vec<(&'static str, Vec<(u64, u64, f64)>)>;

    fn snapshot_with(spans: Vec<SpanRecord>, series: SeriesSpec) -> MetricsSnapshot {
        let series: BTreeMap<&'static str, SeriesSnapshot> = series
            .into_iter()
            .map(|(name, pts)| {
                let points: Vec<SeriesPoint> = pts
                    .iter()
                    .map(|&(x, t_us, y)| SeriesPoint { x, t_us, y })
                    .collect();
                (
                    name,
                    SeriesSnapshot {
                        count: points.len() as u64,
                        stride: 1,
                        first: points.first().copied(),
                        last: points.last().copied(),
                        min_y: points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min),
                        max_y: points.iter().map(|p| p.y).fold(0.0, f64::max),
                        points,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            spans,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series,
        }
    }

    fn span(name: &'static str, tid: u32, start_us: u64, duration_us: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: None,
            name,
            attrs: vec![("k", JsonValue::from(3u32))],
            depth: 0,
            tid,
            start_us,
            duration_us,
        }
    }

    #[test]
    fn emits_x_events_with_thread_tracks() {
        let snap = snapshot_with(
            vec![span("place", 0, 10, 500), span("route", 2, 600, 1)],
            vec![],
        );
        let doc = snap.to_chrome_trace();
        let text = doc.to_compact_string();
        let parsed = parse(&text).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        // Metadata: process + two thread names.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("ts").and_then(JsonValue::as_int), Some(10));
        assert_eq!(xs[0].get("dur").and_then(JsonValue::as_int), Some(500));
        assert_eq!(xs[0].get("tid").and_then(JsonValue::as_int), Some(0));
        assert_eq!(xs[1].get("tid").and_then(JsonValue::as_int), Some(2));
        // Zero/one-microsecond spans stay visible.
        assert_eq!(xs[1].get("dur").and_then(JsonValue::as_int), Some(1));
    }

    #[test]
    fn emits_counter_events_for_series_points() {
        let snap = snapshot_with(
            vec![],
            vec![("place.cost", vec![(0, 5, 100.0), (1, 9, 80.5)])],
        );
        let doc = snap.to_chrome_trace();
        let parsed = parse(&doc.to_pretty_string()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        for c in &counters {
            assert_eq!(
                c.get("name").and_then(JsonValue::as_str),
                Some("place.cost")
            );
            assert!(c.get("args").and_then(|a| a.get("value")).is_some());
        }
        assert_eq!(counters[0].get("ts").and_then(JsonValue::as_int), Some(5));
    }
}
