//! Span-stack sampling profiler.
//!
//! The span layer already measures *closed* spans; this module answers
//! the complementary question — *where is the time going right now?* —
//! without touching the hot path's instrumentation cost. Every thread
//! that opens spans publishes its current span path (a stack of interned
//! span names) into a lock-free shared slot guarded by a seqlock. A
//! background sampler thread polls all slots at a configurable rate
//! (default [`DEFAULT_SAMPLE_HZ`] = 997 Hz, prime so it cannot alias
//! with millisecond-periodic work), accumulating one stack sample per
//! thread per tick. Stopping the sampler yields a [`ProfileData`] with:
//!
//! * deterministic-schema `nanomap-profile-v1` JSON ([`ProfileData::to_json`]),
//! * collapsed-stack text for standard flamegraph tooling
//!   ([`ProfileData::collapsed`]),
//! * instant events that fold the samples into the Chrome-trace export
//!   ([`ProfileData::chrome_events`]),
//! * a top-K hot-path table with per-phase attribution
//!   ([`ProfileData::top_paths`]).
//!
//! Publishing costs two release stores per span open/close *only while a
//! sampler is running*; otherwise a single relaxed load, preserving the
//! crate's zero-cost-when-off contract. Sampler failures are reported,
//! never propagated: a mapping run must finish whether or not its
//! profiler does.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::collector::since_epoch_us;
use crate::json::JsonValue;

/// Default sampling frequency. Prime, so the sampler cannot phase-lock
/// with work that happens to be periodic in round milliseconds.
pub const DEFAULT_SAMPLE_HZ: u32 = 997;

/// Deepest span path the shared slot can publish; deeper frames are
/// dropped (the sample is attributed to the deepest published frame).
pub const MAX_STACK_DEPTH: usize = 48;

/// Schema tag stamped on every profile artifact.
pub const PROFILE_SCHEMA: &str = "nanomap-profile-v1";

/// How many sampler ticks between RSS reads (RSS moves far slower than
/// the span stack, and reading `/proc` is comparatively expensive).
const RSS_SAMPLE_STRIDE: u64 = 32;

// ---------------------------------------------------------------------------
// Span-name interning
// ---------------------------------------------------------------------------

struct InternTable {
    by_name: BTreeMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn intern_table() -> &'static Mutex<InternTable> {
    static TABLE: OnceLock<Mutex<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(InternTable {
            by_name: BTreeMap::new(),
            names: Vec::new(),
        })
    })
}

/// Interns a span name, returning its stable small id.
fn intern(name: &'static str) -> u32 {
    let mut table = intern_table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&id) = table.by_name.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name);
    table.by_name.insert(name, id);
    id
}

/// Resolves an interned id back to its span name (`"?"` for an id the
/// table has never issued — impossible in practice, but the profiler
/// never panics).
fn name_of(id: u32) -> &'static str {
    let table = intern_table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    table.names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread shared span-path slot (seqlock)
// ---------------------------------------------------------------------------

/// One thread's published span path. Writers (the instrumented thread)
/// bump `version` to odd, mutate, bump back to even; the sampler rejects
/// any read that observes an odd or changed version (a torn sample).
struct PathSlot {
    tid: u32,
    version: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_STACK_DEPTH],
}

impl PathSlot {
    fn new(tid: u32) -> Self {
        Self {
            tid,
            version: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: [(); MAX_STACK_DEPTH].map(|()| AtomicU32::new(0)),
        }
    }

    /// Pushes an interned frame (writer side; only called from the
    /// owning thread).
    fn push(&self, id: u32) {
        let depth = self.depth.load(Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
        if depth < MAX_STACK_DEPTH {
            self.frames[depth].store(id, Ordering::Relaxed);
        }
        self.depth.store(depth + 1, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Pops the top frame (writer side).
    fn pop(&self) {
        let depth = self.depth.load(Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
        self.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Sampler-side consistent read: `None` when the slot is idle (no
    /// open span) or the read tore.
    fn read(&self) -> Result<Option<Vec<u32>>, Torn> {
        let before = self.version.load(Ordering::Acquire);
        if before % 2 == 1 {
            return Err(Torn);
        }
        let depth = self.depth.load(Ordering::Relaxed).min(MAX_STACK_DEPTH);
        if depth == 0 {
            // Still validate: an idle read racing a push must not count
            // as a clean idle observation.
            return if self.version.load(Ordering::Acquire) == before {
                Ok(None)
            } else {
                Err(Torn)
            };
        }
        let mut frames = Vec::with_capacity(depth);
        for frame in self.frames.iter().take(depth) {
            frames.push(frame.load(Ordering::Relaxed));
        }
        if self.version.load(Ordering::Acquire) == before {
            Ok(Some(frames))
        } else {
            Err(Torn)
        }
    }
}

/// Marker: the seqlock read raced a writer.
struct Torn;

fn slot_registry() -> &'static Mutex<Vec<Arc<PathSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<PathSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_SLOT: std::cell::OnceCell<Arc<PathSlot>> = const { std::cell::OnceCell::new() };
}

fn with_my_slot(f: impl FnOnce(&PathSlot)) {
    MY_SLOT.with(|cell| {
        let slot = cell.get_or_init(|| {
            let slot = Arc::new(PathSlot::new(crate::collector::thread_ordinal()));
            slot_registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&slot));
            slot
        });
        f(slot);
    });
}

/// Whether a sampler is currently publishing (one relaxed load — the
/// span layer's only cost while profiling is off).
static PUBLISHING: AtomicBool = AtomicBool::new(false);

/// Whether span-path publishing is active (a sampler is running).
#[inline]
pub(crate) fn publishing() -> bool {
    PUBLISHING.load(Ordering::Relaxed)
}

/// Span-open hook: publishes `name` onto this thread's shared path.
/// Returns whether the frame was published (so the matching close pops
/// exactly what it pushed, even if the sampler starts or stops mid-span).
#[inline]
pub(crate) fn frame_enter(name: &'static str) -> bool {
    if !publishing() {
        return false;
    }
    let id = intern(name);
    with_my_slot(|slot| slot.push(id));
    true
}

/// Span-close hook for a frame that [`frame_enter`] published.
#[inline]
pub(crate) fn frame_exit() {
    with_my_slot(PathSlot::pop);
}

// ---------------------------------------------------------------------------
// The sampler thread
// ---------------------------------------------------------------------------

/// One raw stack sample.
struct RawSample {
    /// Microseconds since the collector epoch.
    t_us: u64,
    /// Thread ordinal the sample was taken from.
    tid: u32,
    /// Index into the collected path table.
    path: u32,
}

/// Everything the sampler thread accumulated.
struct SamplerOutput {
    paths: Vec<Vec<u32>>,
    samples: Vec<RawSample>,
    ticks: u64,
    torn: u64,
    idle: u64,
    work_us: u64,
    rss_peak_kb: Option<u64>,
    started_us: u64,
    stopped_us: u64,
}

struct SamplerControl {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<SamplerOutput>,
    nominal_hz: u32,
}

fn sampler_state() -> &'static Mutex<Option<SamplerControl>> {
    static STATE: OnceLock<Mutex<Option<SamplerControl>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Starts the background sampler at `hz` samples per second (clamped to
/// 1..=100_000; 0 selects [`DEFAULT_SAMPLE_HZ`]). Idempotent: when a
/// sampler is already running this is a no-op returning `false`.
///
/// Spawn failures degrade to `false` — callers treat a missing profiler
/// as a warning, never an abort.
pub fn start_sampler(hz: u32) -> bool {
    let mut state = sampler_state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if state.is_some() {
        return false;
    }
    let hz = if hz == 0 { DEFAULT_SAMPLE_HZ } else { hz }.clamp(1, 100_000);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let spawned = std::thread::Builder::new()
        .name("nanomap-sampler".into())
        .spawn(move || sampler_loop(hz, &stop_flag));
    match spawned {
        Ok(handle) => {
            PUBLISHING.store(true, Ordering::Relaxed);
            *state = Some(SamplerControl {
                stop,
                handle,
                nominal_hz: hz,
            });
            true
        }
        Err(e) => {
            eprintln!("warning: profiler sampler thread failed to start: {e}");
            false
        }
    }
}

/// Stops the sampler and returns its accumulated profile. Idempotent:
/// `None` when no sampler is running (including a second stop).
pub fn stop_sampler() -> Option<ProfileData> {
    let control = sampler_state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()?;
    PUBLISHING.store(false, Ordering::Relaxed);
    control.stop.store(true, Ordering::Relaxed);
    match control.handle.join() {
        Ok(output) => Some(ProfileData::from_output(control.nominal_hz, output)),
        Err(_) => {
            eprintln!("warning: profiler sampler thread panicked; profile discarded");
            None
        }
    }
}

/// Whether a sampler is currently running.
pub fn sampler_running() -> bool {
    sampler_state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .is_some()
}

fn sampler_loop(hz: u32, stop: &AtomicBool) -> SamplerOutput {
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let started_us = since_epoch_us(Instant::now());
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut path_ids: BTreeMap<Vec<u32>, u32> = BTreeMap::new();
    let mut samples: Vec<RawSample> = Vec::new();
    let mut ticks = 0u64;
    let mut torn = 0u64;
    let mut idle = 0u64;
    let mut work_us = 0u64;
    let mut rss_peak_kb: Option<u64> = None;
    let mut next = Instant::now() + period;
    while !stop.load(Ordering::Relaxed) {
        let work_start = Instant::now();
        ticks += 1;
        {
            let slots = slot_registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for slot in slots.iter() {
                match slot.read() {
                    Ok(Some(frames)) => {
                        let next_id = path_ids.len() as u32;
                        let id = *path_ids.entry(frames.clone()).or_insert_with(|| {
                            paths.push(frames);
                            next_id
                        });
                        samples.push(RawSample {
                            t_us: since_epoch_us(work_start),
                            tid: slot.tid,
                            path: id,
                        });
                    }
                    Ok(None) => idle += 1,
                    Err(Torn) => torn += 1,
                }
            }
        }
        if ticks % RSS_SAMPLE_STRIDE == 1 {
            if let Some(kb) = crate::alloc::read_rss_kb() {
                crate::alloc::note_rss_kb(kb);
                rss_peak_kb = Some(rss_peak_kb.map_or(kb, |peak| peak.max(kb)));
            }
        }
        work_us += work_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
            next += period;
        } else {
            // Fell behind (debugger, heavy load): resynchronize instead
            // of burning CPU trying to catch up.
            next = now + period;
        }
    }
    SamplerOutput {
        paths,
        samples,
        ticks,
        torn,
        idle,
        work_us,
        rss_peak_kb,
        started_us,
        stopped_us: since_epoch_us(Instant::now()),
    }
}

// ---------------------------------------------------------------------------
// ProfileData: aggregation + artifacts
// ---------------------------------------------------------------------------

/// One aggregated span path in a finished profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePath {
    /// Span names from root to leaf.
    pub frames: Vec<&'static str>,
    /// Samples whose deepest frame was exactly this path.
    pub exclusive: u64,
    /// Samples taken at this path or any descendant of it.
    pub inclusive: u64,
}

impl ProfilePath {
    /// The `a;b;c` collapsed-stack rendering of the path.
    pub fn key(&self) -> String {
        self.frames.join(";")
    }
}

/// A finished sampling profile: aggregated span paths plus sampler
/// health telemetry. Info-only by contract — nothing in here feeds the
/// QoR gates.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// Requested sampling frequency.
    pub nominal_hz: u32,
    /// Ticks actually achieved per second of sampler wall-clock.
    pub effective_hz: f64,
    /// Sampler wall-clock from start to stop, in microseconds.
    pub duration_us: u64,
    /// Total on-stack samples (sum of exclusive counts).
    pub total_samples: u64,
    /// Sampler wakeups.
    pub ticks: u64,
    /// Seqlock reads that raced a writer and were discarded.
    pub torn_samples: u64,
    /// Polls that found a thread with no open span.
    pub idle_samples: u64,
    /// Time the sampler spent doing work (its overhead), in microseconds.
    pub overhead_us: u64,
    /// Peak RSS observed by the sampler, when the platform exposes it.
    pub rss_peak_kb: Option<u64>,
    /// Aggregated paths sorted by collapsed key (deterministic given the
    /// same sample multiset).
    pub paths: Vec<ProfilePath>,
    /// Raw samples, kept for the Chrome-trace fold.
    samples: Vec<(u64, u32, String)>,
}

impl ProfileData {
    fn from_output(nominal_hz: u32, output: SamplerOutput) -> Self {
        // Resolve interned paths to name vectors once.
        let named: Vec<Vec<&'static str>> = output
            .paths
            .iter()
            .map(|p| p.iter().map(|&id| name_of(id)).collect())
            .collect();
        // Exclusive counts per sampled path.
        let mut exclusive: BTreeMap<String, (Vec<&'static str>, u64)> = BTreeMap::new();
        for sample in &output.samples {
            if let Some(frames) = named.get(sample.path as usize) {
                exclusive
                    .entry(frames.join(";"))
                    .or_insert_with(|| (frames.clone(), 0))
                    .1 += 1;
            }
        }
        // Inclusive counts: every sample lands on each of its prefixes.
        let mut inclusive: BTreeMap<String, (Vec<&'static str>, u64)> = BTreeMap::new();
        for (frames, count) in exclusive.values() {
            for depth in 1..=frames.len() {
                let prefix = &frames[..depth];
                inclusive
                    .entry(prefix.join(";"))
                    .or_insert_with(|| (prefix.to_vec(), 0))
                    .1 += count;
            }
        }
        let paths: Vec<ProfilePath> = inclusive
            .iter()
            .map(|(key, (frames, incl))| ProfilePath {
                frames: frames.clone(),
                exclusive: exclusive.get(key).map_or(0, |(_, n)| *n),
                inclusive: *incl,
            })
            .collect();
        let total_samples = output.samples.len() as u64;
        let duration_us = output.stopped_us.saturating_sub(output.started_us);
        let effective_hz = if duration_us > 0 {
            output.ticks as f64 / (duration_us as f64 / 1e6)
        } else {
            0.0
        };
        let samples = output
            .samples
            .iter()
            .filter_map(|s| {
                named
                    .get(s.path as usize)
                    .and_then(|frames| frames.last())
                    .map(|leaf| (s.t_us, s.tid, (*leaf).to_string()))
            })
            .collect();
        Self {
            nominal_hz,
            effective_hz,
            duration_us,
            total_samples,
            ticks: output.ticks,
            torn_samples: output.torn,
            idle_samples: output.idle,
            overhead_us: output.work_us,
            rss_peak_kb: output.rss_peak_kb,
            paths,
            samples,
        }
    }

    /// Microseconds of wall-clock one sample represents (the effective
    /// sampling period; 0 when nothing was sampled).
    pub fn us_per_sample(&self) -> f64 {
        if self.effective_hz > 0.0 {
            1e6 / self.effective_hz
        } else {
            0.0
        }
    }

    /// Estimated inclusive milliseconds attributed to `path` (a
    /// `a;b;c` collapsed key).
    pub fn inclusive_ms(&self, key: &str) -> f64 {
        self.paths
            .iter()
            .find(|p| p.key() == key)
            .map_or(0.0, |p| p.inclusive as f64 * self.us_per_sample() / 1e3)
    }

    /// Sampler overhead as a fraction of its wall-clock (the measured
    /// cost of profiling; the acceptance bar is < 5%).
    pub fn overhead_fraction(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        self.overhead_us as f64 / self.duration_us as f64
    }

    /// Collapsed-stack text (`frames;joined;by;semicolons count` per
    /// line, sorted) — the input format of standard flamegraph tooling.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for path in &self.paths {
            if path.exclusive > 0 {
                out.push_str(&format!("{} {}\n", path.key(), path.exclusive));
            }
        }
        out
    }

    /// The `nanomap-profile-v1` JSON artifact. Key order is
    /// deterministic; values depend on wall-clock sampling and are
    /// info-only by contract.
    pub fn to_json(&self) -> JsonValue {
        let us_per_sample = self.us_per_sample();
        let paths: Vec<JsonValue> = self
            .paths
            .iter()
            .map(|p| {
                JsonValue::object()
                    .with("path", p.key())
                    .with("depth", p.frames.len())
                    .with("exclusive_samples", p.exclusive)
                    .with("inclusive_samples", p.inclusive)
                    .with("exclusive_ms", p.exclusive as f64 * us_per_sample / 1e3)
                    .with("inclusive_ms", p.inclusive as f64 * us_per_sample / 1e3)
            })
            .collect();
        let sampler = JsonValue::object()
            .with("nominal_hz", self.nominal_hz)
            .with("effective_hz", self.effective_hz)
            .with("duration_us", self.duration_us)
            .with("ticks", self.ticks)
            .with("total_samples", self.total_samples)
            .with("idle_samples", self.idle_samples)
            .with("torn_samples", self.torn_samples)
            .with("overhead_us", self.overhead_us)
            .with("overhead_fraction", self.overhead_fraction())
            .with("rss_peak_kb", self.rss_peak_kb);
        JsonValue::object()
            .with("schema", PROFILE_SCHEMA)
            .with("sampler", sampler)
            .with("paths", JsonValue::Array(paths))
    }

    /// The top `k` paths by exclusive samples, each with the fraction of
    /// its enclosing phase's inclusive samples. The "phase" of a path is
    /// its depth-2 prefix (`flow;<phase>`), or the path itself when
    /// shallower.
    pub fn top_paths(&self, k: usize) -> Vec<HotPath> {
        let mut hot: Vec<&ProfilePath> = self.paths.iter().filter(|p| p.exclusive > 0).collect();
        hot.sort_by(|a, b| b.exclusive.cmp(&a.exclusive).then(a.key().cmp(&b.key())));
        hot.iter()
            .take(k)
            .map(|p| {
                let phase_depth = p.frames.len().min(2);
                let phase_key = p.frames[..phase_depth].join(";");
                let phase_inclusive = self
                    .paths
                    .iter()
                    .find(|q| q.key() == phase_key)
                    .map_or(0, |q| q.inclusive);
                HotPath {
                    key: p.key(),
                    exclusive: p.exclusive,
                    inclusive: p.inclusive,
                    exclusive_ms: p.exclusive as f64 * self.us_per_sample() / 1e3,
                    phase: phase_key,
                    phase_fraction: if phase_inclusive > 0 {
                        p.exclusive as f64 / phase_inclusive as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// Renders the top-K table for humans (the `nanomap profile`
    /// subcommand's output).
    pub fn render_top(&self, k: usize) -> String {
        let mut out = format!(
            "profile: {} samples over {:.1} ms ({} requested, {:.0} Hz effective), \
             overhead {:.2}%\n",
            self.total_samples,
            self.duration_us as f64 / 1e3,
            format_args!("{} Hz", self.nominal_hz),
            self.effective_hz,
            self.overhead_fraction() * 100.0,
        );
        if let Some(kb) = self.rss_peak_kb {
            out.push_str(&format!("memory: peak RSS {:.1} MiB\n", kb as f64 / 1024.0));
        }
        if self.total_samples == 0 {
            out.push_str(
                "no samples: the run finished between sampler ticks (try --sample-hz or a \
                 larger design)\n",
            );
            return out;
        }
        out.push_str(&format!(
            "{:<4} {:>8} {:>9} {:>8}  {}\n",
            "rank", "samples", "est ms", "% phase", "span path"
        ));
        for (rank, hot) in self.top_paths(k).iter().enumerate() {
            out.push_str(&format!(
                "{:<4} {:>8} {:>9.1} {:>7.1}%  {}\n",
                rank + 1,
                hot.exclusive,
                hot.exclusive_ms,
                hot.phase_fraction * 100.0,
                hot.key
            ));
        }
        out
    }

    /// Folds the samples into Chrome-trace instant events (`ph: "i"`) on
    /// a dedicated sampler track, for
    /// [`crate::MetricsSnapshot::to_chrome_trace_with_events`].
    pub fn chrome_events(&self) -> Vec<JsonValue> {
        self.samples
            .iter()
            .map(|(t_us, tid, leaf)| {
                JsonValue::object()
                    .with("name", leaf.as_str())
                    .with("cat", "sample")
                    .with("ph", "i")
                    .with("s", "t")
                    .with("pid", 1u32)
                    .with("tid", *tid)
                    .with("ts", *t_us)
            })
            .collect()
    }
}

/// One row of [`ProfileData::top_paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct HotPath {
    /// Collapsed `a;b;c` path.
    pub key: String,
    /// Exclusive samples.
    pub exclusive: u64,
    /// Inclusive samples.
    pub inclusive: u64,
    /// Estimated exclusive milliseconds.
    pub exclusive_ms: f64,
    /// Collapsed key of the enclosing phase (depth-2 prefix).
    pub phase: String,
    /// `exclusive / phase inclusive` — this path's share of its phase.
    pub phase_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sampler tests mutate process-global state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn synthetic_profile(paths: &[(&[&'static str], u64)]) -> ProfileData {
        let mut output = SamplerOutput {
            paths: Vec::new(),
            samples: Vec::new(),
            ticks: 0,
            torn: 0,
            idle: 0,
            work_us: 10,
            rss_peak_kb: None,
            started_us: 0,
            stopped_us: 1_000_000,
        };
        for (idx, (frames, count)) in paths.iter().enumerate() {
            output
                .paths
                .push(frames.iter().map(|&f| intern(f)).collect());
            for _ in 0..*count {
                output.ticks += 1;
                output.samples.push(RawSample {
                    t_us: output.ticks,
                    tid: 0,
                    path: idx as u32,
                });
            }
        }
        ProfileData::from_output(1000, output)
    }

    #[test]
    fn inclusive_counts_telescope_over_prefixes() {
        let profile = synthetic_profile(&[
            (&["flow", "pack"], 30),
            (&["flow", "pack", "cluster"], 10),
            (&["flow", "place"], 60),
        ]);
        assert_eq!(profile.total_samples, 100);
        let by_key: BTreeMap<String, &ProfilePath> =
            profile.paths.iter().map(|p| (p.key(), p)).collect();
        assert_eq!(by_key["flow"].inclusive, 100);
        assert_eq!(by_key["flow"].exclusive, 0);
        assert_eq!(by_key["flow;pack"].inclusive, 40);
        assert_eq!(by_key["flow;pack"].exclusive, 30);
        assert_eq!(by_key["flow;pack;cluster"].inclusive, 10);
        assert_eq!(by_key["flow;place"].exclusive, 60);
    }

    #[test]
    fn collapsed_stacks_render_exclusive_counts_sorted() {
        let profile = synthetic_profile(&[(&["flow", "route"], 5), (&["flow", "pack"], 7)]);
        let collapsed = profile.collapsed();
        // Sorted by key; only non-zero exclusive paths appear.
        assert_eq!(collapsed, "flow;pack 7\nflow;route 5\n");
    }

    #[test]
    fn profile_json_has_schema_and_deterministic_paths() {
        let profile = synthetic_profile(&[(&["flow", "fds"], 3)]);
        let json = profile.to_json();
        assert_eq!(
            json.get("schema").and_then(JsonValue::as_str),
            Some(PROFILE_SCHEMA)
        );
        let text = json.to_pretty_string();
        let reparsed = crate::json::parse(&text).expect("artifact parses");
        assert_eq!(text, reparsed.to_pretty_string(), "emitter round-trips");
        let paths = json.get("paths").and_then(JsonValue::as_array).unwrap();
        assert_eq!(paths.len(), 2); // flow and flow;fds
    }

    #[test]
    fn top_paths_rank_by_exclusive_and_attribute_to_phase() {
        let profile = synthetic_profile(&[
            (&["flow", "place", "anneal"], 75),
            (&["flow", "place"], 25),
            (&["flow", "fds"], 10),
        ]);
        let top = profile.top_paths(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].key, "flow;place;anneal");
        assert_eq!(top[0].phase, "flow;place");
        assert!((top[0].phase_fraction - 0.75).abs() < 1e-9);
        assert_eq!(top[1].key, "flow;place");
    }

    #[test]
    fn sampler_captures_live_span_stacks() {
        let _guard = test_lock();
        crate::set_enabled(true);
        assert!(start_sampler(4000), "sampler starts");
        {
            let _outer = crate::span!("prof-outer");
            let _inner = crate::span!("prof-inner");
            std::thread::sleep(Duration::from_millis(40));
        }
        let profile = stop_sampler().expect("profile comes back");
        assert!(profile.total_samples > 0, "expected samples in 40 ms");
        assert!(profile
            .paths
            .iter()
            .any(|p| p.key().contains("prof-outer;prof-inner")));
        // Inclusive time of the root must cover the inner path.
        let outer = profile.inclusive_ms("prof-outer");
        let inner = profile.inclusive_ms("prof-outer;prof-inner");
        assert!(outer >= inner);
        assert!(profile.overhead_fraction() < 0.5, "sampler dominated");
    }

    #[test]
    fn sampler_start_stop_are_idempotent() {
        let _guard = test_lock();
        assert!(start_sampler(1000));
        assert!(!start_sampler(1000), "second start is a no-op");
        assert!(sampler_running());
        assert!(stop_sampler().is_some());
        assert!(stop_sampler().is_none(), "second stop yields nothing");
        assert!(!sampler_running());
        assert!(!publishing(), "publishing stops with the sampler");
    }

    #[test]
    fn unpublished_frames_cost_one_load() {
        let _guard = test_lock();
        // No sampler running: frame_enter must refuse to publish so the
        // matching exit never pops a frame it did not push.
        assert!(!publishing());
        assert!(!frame_enter("never-published"));
    }

    #[test]
    fn empty_profile_renders_without_panicking() {
        let profile = synthetic_profile(&[]);
        assert_eq!(profile.total_samples, 0);
        assert_eq!(profile.collapsed(), "");
        assert!(profile.render_top(5).contains("no samples"));
        assert!(profile.top_paths(5).is_empty());
        assert_eq!(profile.inclusive_ms("flow"), 0.0);
    }
}
