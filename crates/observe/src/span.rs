//! Hierarchical wall-clock spans with RAII guards.
//!
//! `let _g = span!("fds", items = n);` opens a span that closes when the
//! guard drops. Nesting is tracked per thread, so concurrent flows build
//! independent subtrees under the shared collector.

use std::cell::RefCell;
use std::time::Instant;

use crate::collector::{self, enabled};
use crate::json::JsonValue;

/// One attribute on a span.
pub type SpanAttr = (&'static str, JsonValue);

/// A finished span as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Collector-unique id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (phase or operation).
    pub name: &'static str,
    /// Attributes captured at open time.
    pub attrs: Vec<SpanAttr>,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    /// Ordinal of the thread the span ran on (0 = first instrumented
    /// thread). The Chrome-trace exporter maps this to a track.
    pub tid: u32,
    /// Microseconds since the collector epoch at open.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
}

impl SpanRecord {
    /// Duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.duration_us as f64 / 1000.0
    }
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span. Created by [`crate::span!`] or
/// [`SpanGuard::enter`]; records the span into the global collector on
/// drop. Inert (zero-cost beyond one atomic load) while observability is
/// disabled.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    attrs: Vec<SpanAttr>,
    depth: u32,
    started: Instant,
    /// Whether this span pushed a frame onto the profiler's shared
    /// path slot (so drop pops exactly what it pushed, even if the
    /// sampler started or stopped mid-span).
    published: bool,
    /// Phase index to restore in the allocator's attribution slot, when
    /// this span switched it.
    saved_phase: Option<usize>,
    /// Counter values (for counters prefixed `<name>.`) captured at
    /// open, when the event bus was live — drop publishes the deltas.
    counter_base: Option<Vec<(&'static str, u64)>>,
}

impl SpanGuard {
    /// Opens a span. Prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str, attrs: Vec<SpanAttr>) -> Self {
        if !enabled() {
            return Self { open: None };
        }
        let id = collector::next_span_id();
        let (parent, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len() as u32;
            stack.push(id);
            (parent, depth)
        });
        let published = crate::profile::frame_enter(name);
        let saved_phase = crate::alloc::phase_enter(name);
        let counter_base = if crate::events::events_enabled() {
            crate::events::publish(crate::events::EventKind::PhaseStart { phase: name, depth });
            Some(collector::counters_with_prefix(&format!("{name}.")))
        } else {
            None
        };
        Self {
            open: Some(OpenSpan {
                id,
                parent,
                name,
                attrs,
                depth,
                started: Instant::now(),
                published,
                saved_phase,
                counter_base,
            }),
        }
    }

    /// Attaches an attribute after open (e.g. a result computed inside the
    /// span). No-op on inert guards.
    pub fn attr(&mut self, key: &'static str, value: impl Into<JsonValue>) {
        if let Some(open) = &mut self.open {
            open.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let duration = open.started.elapsed();
        if open.published {
            crate::profile::frame_exit();
        }
        if let Some(previous) = open.saved_phase {
            crate::alloc::phase_exit(previous);
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order per thread; defend against
            // misuse (a guard outliving its parent) by searching.
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.truncate(pos);
            }
        });
        let duration_us = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        if let Some(base) = &open.counter_base {
            if crate::events::events_enabled() {
                crate::events::publish(crate::events::EventKind::PhaseEnd {
                    phase: open.name,
                    depth: open.depth,
                    duration_us,
                });
                let now = collector::counters_with_prefix(&format!("{}.", open.name));
                let deltas: Vec<(&'static str, u64)> = now
                    .iter()
                    .map(|&(name, value)| {
                        let before = base
                            .iter()
                            .find(|&&(b, _)| b == name)
                            .map_or(0, |&(_, v)| v);
                        (name, value.saturating_sub(before))
                    })
                    .filter(|&(_, delta)| delta > 0)
                    .collect();
                if !deltas.is_empty() {
                    crate::events::publish(crate::events::EventKind::Counters {
                        phase: open.name,
                        deltas,
                    });
                }
            }
        }
        let start_us = collector::since_epoch_us(open.started);
        collector::record_span(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            attrs: open.attrs,
            depth: open.depth,
            tid: collector::thread_ordinal(),
            start_us,
            duration_us,
        });
    }
}

/// Opens a hierarchical wall-clock span; returns a [`SpanGuard`] that
/// closes the span when dropped. Bind it: `let _span = span!(...)`.
///
/// ```
/// let _flow = nanomap_observe::span!("flow", circuit = "ex1");
/// let _phase = nanomap_observe::span!("fds");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter(
            $name,
            ::std::vec![$((stringify!($key), $crate::JsonValue::from($value))),+],
        )
    };
}
