//! A small seeded xorshift64* PRNG.
//!
//! Replaces the `rand` crate across the workspace so annealing and
//! routing runs are reproducible from a single logged seed, and so the
//! workspace builds with no registry access. Not cryptographic — it
//! drives randomized CAD heuristics and test-case generation only.

/// Deterministic xorshift64* generator (Vigna 2016).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. Any seed is accepted; zero (the
    /// one invalid xorshift state) is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let raw = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(raw) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_i64({lo}, {hi})");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span + 1) as i64)
    }

    /// A random bool.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64Star::new(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = XorShift64Star::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_i64_inclusive_bounds() {
        let mut rng = XorShift64Star::new(9);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..2000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_hit |= v == -3;
            hi_hit |= v == 3;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = XorShift64Star::new(11);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift64Star::new(13);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, sorted, "shuffle moved something");
    }
}
