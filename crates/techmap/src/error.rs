//! Error types for technology mapping.

use std::error::Error;
use std::fmt;

use nanomap_netlist::NetlistError;

/// Errors produced by RTL expansion or FlowMap mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechmapError {
    /// The underlying netlist is malformed.
    Netlist(NetlistError),
    /// A generic logic node requires more inputs than the LUT size.
    LogicTooWide {
        /// Node or gate name.
        node: String,
        /// Required inputs.
        required: u32,
        /// Available LUT inputs.
        available: u32,
    },
    /// An operator width is unsupported (e.g. multiplier over 32 bits).
    UnsupportedWidth {
        /// Offending node name.
        node: String,
        /// Requested width.
        width: u32,
    },
    /// The requested LUT size is outside `2..=6`.
    BadLutSize(u32),
    /// A node is structurally degenerate (e.g. a mux with zero data
    /// inputs) and has no LUT expansion.
    DegenerateNode {
        /// Offending node name.
        node: String,
        /// What makes it degenerate.
        detail: &'static str,
    },
}

impl fmt::Display for TechmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::LogicTooWide {
                node,
                required,
                available,
            } => write!(
                f,
                "logic node `{node}` needs {required} inputs but LUTs have {available}"
            ),
            Self::UnsupportedWidth { node, width } => {
                write!(f, "node `{node}` has unsupported width {width}")
            }
            Self::BadLutSize(k) => write!(f, "LUT size {k} outside the supported 2..=6 range"),
            Self::DegenerateNode { node, detail } => {
                write!(f, "node `{node}` is degenerate: {detail}")
            }
        }
    }
}

impl Error for TechmapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for TechmapError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TechmapError::LogicTooWide {
            node: "alu".into(),
            required: 9,
            available: 4,
        };
        assert!(e.to_string().contains("alu"));
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn netlist_errors_convert() {
        let e: TechmapError = NetlistError::NoOutputs.into();
        assert!(matches!(e, TechmapError::Netlist(_)));
    }
}
