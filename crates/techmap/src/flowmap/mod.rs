//! FlowMap: depth-optimal technology mapping for k-LUT architectures.
//!
//! Implements the algorithm of Cong and Ding (*FlowMap: an optimal
//! technology mapping algorithm for delay optimization in lookup-table
//! based FPGA designs*, IEEE TCAD 13(1), 1994 — reference \[14\] of the
//! NanoMap paper). The two phases are:
//!
//! 1. **Labeling** — in topological order, compute for every node `t` the
//!    minimum LUT depth `l(t)`. With `p` the maximum fanin label, `l(t)`
//!    is `p` iff the fanin cone of `t`, with all label-`p` nodes collapsed
//!    into `t`, has a K-feasible cut (max-flow ≤ k); otherwise `p + 1`.
//! 2. **Mapping** — walking from the outputs, realize each needed node as
//!    one LUT whose inputs are its stored min-cut, enumerating the cone
//!    between cut and node to derive the truth table.
//!
//! The input network must be k-bounded; [`decompose`] rewrites arbitrary
//! fanin gates into two-input form first.

mod flow;

use std::collections::HashMap;

use nanomap_netlist::gate::{GateKind, GateNetwork, GateSignal};
use nanomap_netlist::{GateId, LutNetwork, SignalRef, TruthTable};

use crate::error::TechmapError;
use flow::{FlowGraph, INF};

/// Options for FlowMap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMapOptions {
    /// LUT input count `k`.
    pub lut_inputs: u32,
}

impl Default for FlowMapOptions {
    fn default() -> Self {
        Self { lut_inputs: 4 }
    }
}

/// The result of mapping: the LUT network plus per-output depth labels.
#[derive(Debug)]
pub struct FlowMapResult {
    /// The mapped network.
    pub network: LutNetwork,
    /// The depth label of every original gate (LUT depth at that point).
    pub labels: Vec<u32>,
    /// The maximum label over all primary outputs (the mapped depth).
    pub depth: u32,
}

/// Rewrites a network so no gate has more than two inputs.
///
/// `And`/`Or`/`Xor` chains decompose associatively; `Nand`/`Nor`/`Xnor`
/// become a decomposed base tree followed by an inverter.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::gate::{GateKind, GateNetwork};
/// use nanomap_techmap::flowmap::decompose;
///
/// let mut net = GateNetwork::new("wide");
/// let inputs: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
/// let g = net.add_gate(GateKind::And, inputs);
/// net.add_output("y", g);
/// let two = decompose(&net);
/// assert!(two.iter().all(|(_, g)| g.inputs.len() <= 2));
/// ```
pub fn decompose(net: &GateNetwork) -> GateNetwork {
    let mut out = GateNetwork::new(net.name());
    // Inputs keep their indices.
    for name in net.input_names() {
        out.add_input(name.clone());
    }
    let order = net.topo_order().expect("validated networks are acyclic");
    let mut mapped: HashMap<GateId, GateSignal> = HashMap::new();
    let resolve = |sig: GateSignal, mapped: &HashMap<GateId, GateSignal>| match sig {
        GateSignal::Gate(g) => mapped[&g],
        other => other,
    };
    for id in order {
        let gate = net.gate(id);
        let ins: Vec<GateSignal> = gate.inputs.iter().map(|&s| resolve(s, &mapped)).collect();
        let sig = if ins.len() <= 2 {
            out.add_named_gate(gate.kind, ins, gate.name.clone())
        } else {
            let (base, invert) = match gate.kind {
                GateKind::And => (GateKind::And, false),
                GateKind::Nand => (GateKind::And, true),
                GateKind::Or => (GateKind::Or, false),
                GateKind::Nor => (GateKind::Or, true),
                GateKind::Xor => (GateKind::Xor, false),
                GateKind::Xnor => (GateKind::Xor, true),
                k => unreachable!("unary gate {k:?} cannot have >2 inputs"),
            };
            let mut level = ins;
            while level.len() > 2 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for chunk in level.chunks(2) {
                    if chunk.len() == 2 {
                        next.push(out.add_gate(base, chunk.to_vec()));
                    } else {
                        next.push(chunk[0]);
                    }
                }
                level = next;
            }
            let last_kind = if invert {
                match base {
                    GateKind::And => GateKind::Nand,
                    GateKind::Or => GateKind::Nor,
                    GateKind::Xor => GateKind::Xnor,
                    _ => unreachable!(),
                }
            } else {
                base
            };
            out.add_named_gate(last_kind, level, gate.name.clone())
        };
        mapped.insert(id, sig);
    }
    for (name, sig) in net.outputs() {
        out.add_output(name.clone(), resolve(*sig, &mapped));
    }
    out
}

/// Maps a gate network onto k-input LUTs with optimal depth.
///
/// The network is two-input-decomposed internally, so arbitrary fanins are
/// accepted.
///
/// # Errors
///
/// Returns an error if the network is malformed or `k` is outside `2..=6`.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::gate::{GateKind, GateNetwork};
/// use nanomap_techmap::flowmap::{map_network, FlowMapOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = GateNetwork::new("fa");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let c = net.add_input("cin");
/// let sum = net.add_gate(GateKind::Xor, vec![a, b, c]);
/// net.add_output("sum", sum);
/// let result = map_network(&net, FlowMapOptions::default())?;
/// // A 3-input function fits one 4-LUT.
/// assert_eq!(result.network.num_luts(), 1);
/// assert_eq!(result.depth, 1);
/// # Ok(())
/// # }
/// ```
pub fn map_network(
    net: &GateNetwork,
    options: FlowMapOptions,
) -> Result<FlowMapResult, TechmapError> {
    let k = options.lut_inputs;
    if !(2..=6).contains(&k) {
        return Err(TechmapError::BadLutSize(k));
    }
    net.validate()?;
    let net = decompose(net);
    let order = net.topo_order()?;
    let n = net.num_gates();
    let num_inputs = net.num_inputs();

    // Flow-network node ids: every "signal node" is a PI or a gate.
    // sig_index: PIs 0..num_inputs, gates num_inputs + gate_index.
    let sig_index = |sig: GateSignal| -> Option<usize> {
        match sig {
            GateSignal::Input(i) => Some(i),
            GateSignal::Gate(g) => Some(num_inputs + g.index()),
            GateSignal::Const(_) => None,
        }
    };

    let mut labels = vec![0u32; n];
    // Best K-feasible cut per gate: the LUT input signals.
    let mut cuts: Vec<Vec<GateSignal>> = vec![Vec::new(); n];

    // Transitive-fanin cone cache is unnecessary; recompute per gate.
    for &t in &order {
        // Collect cone (gates + PIs) via DFS over fanins.
        let mut in_cone = HashMap::new(); // sig_index -> GateSignal
        let mut stack = vec![GateSignal::Gate(t)];
        while let Some(sig) = stack.pop() {
            let Some(idx) = sig_index(sig) else { continue };
            if in_cone.contains_key(&idx) {
                continue;
            }
            in_cone.insert(idx, sig);
            if let GateSignal::Gate(g) = sig {
                for &f in &net.gate(g).inputs {
                    stack.push(f);
                }
            }
        }
        let p = net
            .gate(t)
            .inputs
            .iter()
            .filter_map(|&s| match s {
                GateSignal::Gate(g) => Some(labels[g.index()]),
                GateSignal::Input(_) => Some(0),
                GateSignal::Const(_) => None,
            })
            .max()
            .unwrap_or(0);
        if p == 0 {
            // All fanins are PIs/constants; a single LUT always suffices
            // (two-input decomposed, k >= 2).
            labels[t.index()] = 1;
            cuts[t.index()] = net.gate(t).inputs.clone();
            continue;
        }

        // Build the flow network: source + 2 nodes per cone signal + sink.
        // Collapsed nodes (label == p gates, and t itself) merge into sink.
        // Sort by signal index: the flow-network node numbering (and with
        // it, which of several min-cuts max-flow finds) must not depend on
        // HashMap iteration order, or mapping results change run to run.
        let mut cone: Vec<(usize, GateSignal)> = in_cone.iter().map(|(&i, &s)| (i, s)).collect();
        cone.sort_unstable_by_key(|&(i, _)| i);
        let collapsed_set: std::collections::HashSet<usize> = cone
            .iter()
            .filter_map(|&(idx, sig)| match sig {
                GateSignal::Gate(g) if g == t || labels[g.index()] == p => Some(idx),
                _ => None,
            })
            .collect();
        let collapsed = move |sig: GateSignal| -> bool {
            match sig_index(sig) {
                Some(idx) => collapsed_set.contains(&idx),
                None => false,
            }
        };
        // Flow node numbering: 0 = source, 1 = sink, then v_in = 2 + 2*j,
        // v_out = 3 + 2*j for cone position j (skipping collapsed nodes).
        let mut pos_of: HashMap<usize, usize> = HashMap::new();
        let mut j = 0;
        for &(idx, sig) in &cone {
            if !collapsed(sig) {
                pos_of.insert(idx, j);
                j += 1;
            }
        }
        let mut graph = FlowGraph::new(2 + 2 * j);
        let v_in = |idx: usize, pos_of: &HashMap<usize, usize>| 2 + 2 * pos_of[&idx];
        let v_out = |idx: usize, pos_of: &HashMap<usize, usize>| 3 + 2 * pos_of[&idx];
        for &(idx, sig) in &cone {
            if collapsed(sig) {
                continue;
            }
            graph.add_edge(v_in(idx, &pos_of), v_out(idx, &pos_of), 1);
            if matches!(sig, GateSignal::Input(_)) {
                graph.add_edge(0, v_in(idx, &pos_of), INF);
            }
        }
        // Wire fanin edges.
        for &(idx, sig) in &cone {
            let GateSignal::Gate(g) = sig else { continue };
            let dst_collapsed = collapsed(sig);
            for &f in &net.gate(g).inputs {
                let Some(fidx) = sig_index(f) else { continue };
                if collapsed(f) {
                    // Edges out of collapsed nodes stay inside the sink.
                    continue;
                }
                let from = v_out(fidx, &pos_of);
                let to = if dst_collapsed { 1 } else { v_in(idx, &pos_of) };
                graph.add_edge(from, to, INF);
                let _ = idx;
            }
        }
        let flow = graph.max_flow_bounded(0, 1, i64::from(k));
        if flow <= i64::from(k) {
            labels[t.index()] = p;
            // Min cut: split edges from residual-reachable v_in to
            // unreachable v_out.
            let reach = graph.residual_reachable(0);
            let mut cut = Vec::new();
            for &(idx, sig) in &cone {
                if collapsed(sig) {
                    continue;
                }
                if reach[v_in(idx, &pos_of)] && !reach[v_out(idx, &pos_of)] {
                    cut.push(sig);
                }
            }
            debug_assert!(cut.len() as u32 <= k);
            // An empty cut is legal for constant-fed cones: the LUT becomes
            // a constant generator.
            cuts[t.index()] = cut;
        } else {
            labels[t.index()] = p + 1;
            cuts[t.index()] = net.gate(t).inputs.clone();
        }
    }

    // --- Mapping phase. ---
    let mut out = LutNetwork::new(net.name());
    let input_sigs: Vec<SignalRef> = net
        .input_names()
        .iter()
        .map(|name| out.add_input(name.clone()))
        .collect();
    let mut realized: HashMap<GateId, SignalRef> = HashMap::new();
    // Worklist of gates needing LUTs, from outputs backwards; realize in
    // topological order by processing after all cut gates realized — use
    // recursion via explicit stack.
    let mut need: Vec<GateId> = net
        .outputs()
        .iter()
        .filter_map(|&(_, s)| match s {
            GateSignal::Gate(g) => Some(g),
            _ => None,
        })
        .collect();
    while let Some(t) = need.pop() {
        if realized.contains_key(&t) {
            continue;
        }
        // Ensure cut gates are realized first.
        let missing: Vec<GateId> = cuts[t.index()]
            .iter()
            .filter_map(|&s| match s {
                GateSignal::Gate(g) if !realized.contains_key(&g) => Some(g),
                _ => None,
            })
            .collect();
        if !missing.is_empty() {
            need.push(t);
            need.extend(missing);
            continue;
        }
        let cut = &cuts[t.index()];
        let truth = cone_truth(&net, t, cut);
        let inputs: Vec<SignalRef> = cut
            .iter()
            .map(|&s| match s {
                GateSignal::Input(i) => input_sigs[i],
                GateSignal::Gate(g) => realized[&g],
                GateSignal::Const(c) => SignalRef::Const(c),
            })
            .collect();
        let name = net.gate(t).name.clone();
        let sig = out.add_lut_full(truth, inputs, None, name);
        realized.insert(t, sig);
    }
    for (name, sig) in net.outputs() {
        let mapped = match *sig {
            GateSignal::Input(i) => input_sigs[i],
            GateSignal::Gate(g) => realized[&g],
            GateSignal::Const(c) => SignalRef::Const(c),
        };
        out.add_output(name.clone(), mapped);
    }
    let depth = net
        .outputs()
        .iter()
        .filter_map(|&(_, s)| match s {
            GateSignal::Gate(g) => Some(labels[g.index()]),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    Ok(FlowMapResult {
        network: out,
        labels,
        depth,
    })
}

/// Truth table of the cone rooted at `t` with the cut signals as inputs.
fn cone_truth(net: &GateNetwork, t: GateId, cut: &[GateSignal]) -> TruthTable {
    // Gather cone gates between cut and t (t inclusive, cut exclusive).
    let cut_pos: HashMap<GateSignal, usize> =
        cut.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut cone: Vec<GateId> = Vec::new();
    let mut seen: HashMap<GateId, bool> = HashMap::new();
    let mut stack = vec![t];
    while let Some(g) = stack.pop() {
        if seen.contains_key(&g) || cut_pos.contains_key(&GateSignal::Gate(g)) {
            continue;
        }
        seen.insert(g, true);
        cone.push(g);
        for &f in &net.gate(g).inputs {
            if let GateSignal::Gate(fg) = f {
                if !cut_pos.contains_key(&f) {
                    stack.push(fg);
                }
            }
        }
    }
    // Topologically order the cone subset.
    let order = net.topo_order().expect("acyclic");
    let in_cone: HashMap<GateId, ()> = cone.iter().map(|&g| (g, ())).collect();
    let cone_order: Vec<GateId> = order
        .into_iter()
        .filter(|g| in_cone.contains_key(g))
        .collect();

    TruthTable::from_fn(cut.len() as u32, |assignment| {
        let mut values: HashMap<GateId, bool> = HashMap::new();
        let value = |sig: GateSignal, values: &HashMap<GateId, bool>| -> bool {
            if let Some(&pos) = cut_pos.get(&sig) {
                return assignment[pos];
            }
            match sig {
                GateSignal::Const(c) => c,
                GateSignal::Gate(g) => values[&g],
                GateSignal::Input(_) => {
                    unreachable!("PIs inside the cone must be cut inputs")
                }
            }
        };
        for &g in &cone_order {
            let ins: Vec<bool> = net
                .gate(g)
                .inputs
                .iter()
                .map(|&s| value(s, &values))
                .collect();
            values.insert(g, net.gate(g).kind.eval(&ins));
        }
        value(GateSignal::Gate(t), &values)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::LutSimulator;

    fn check_equivalent(net: &GateNetwork, mapped: &LutNetwork) {
        let n = net.num_inputs();
        assert!(n <= 14, "exhaustive check limited to 14 inputs");
        let mut sim = LutSimulator::new(mapped).unwrap();
        for row in 0u64..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|b| (row >> b) & 1 == 1).collect();
            sim.set_inputs(&ins);
            sim.eval_comb();
            assert_eq!(sim.outputs(), net.eval(&ins), "row {row}");
        }
    }

    fn ripple_adder_gates(width: usize) -> GateNetwork {
        let mut net = GateNetwork::new("rca");
        let a: Vec<_> = (0..width).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..width).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry = net.add_input("cin");
        for i in 0..width {
            let sum = net.add_gate(GateKind::Xor, vec![a[i], b[i], carry]);
            let g1 = net.add_gate(GateKind::And, vec![a[i], b[i]]);
            let g2 = net.add_gate(GateKind::And, vec![a[i], carry]);
            let g3 = net.add_gate(GateKind::And, vec![b[i], carry]);
            carry = net.add_gate(GateKind::Or, vec![g1, g2, g3]);
            net.add_output(format!("s{i}"), sum);
        }
        net.add_output("cout", carry);
        net
    }

    #[test]
    fn maps_full_adder_to_two_luts() {
        let net = ripple_adder_gates(1);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        // sum and carry each fit one 4-LUT (3 inputs).
        assert_eq!(result.network.num_luts(), 2);
        assert_eq!(result.depth, 1);
        check_equivalent(&net, &result.network);
    }

    #[test]
    fn maps_ripple_adder_equivalently() {
        let net = ripple_adder_gates(4);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        check_equivalent(&net, &result.network);
        // FlowMap should beat or match naive one-gate-per-LUT depth.
        assert!(result.depth <= net.depth());
    }

    #[test]
    fn depth_is_optimal_for_xor_tree() {
        // 8-input XOR tree of 2-input gates: depth 3 in gates; with 4-LUTs
        // an optimal mapping reaches depth 2 (4 + 4 inputs, then combine
        // wait: 8 inputs -> two 4-input XORs + one 2-input = depth 2).
        let mut net = GateNetwork::new("xor8");
        let mut level: Vec<_> = (0..8).map(|i| net.add_input(format!("i{i}"))).collect();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                next.push(net.add_gate(GateKind::Xor, pair.to_vec()));
            }
            level = next;
        }
        net.add_output("y", level[0]);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        assert_eq!(result.depth, 2);
        check_equivalent(&net, &result.network);
    }

    #[test]
    fn wide_gate_decomposes_and_maps() {
        let mut net = GateNetwork::new("and9");
        let ins: Vec<_> = (0..9).map(|i| net.add_input(format!("i{i}"))).collect();
        let g = net.add_gate(GateKind::And, ins);
        net.add_output("y", g);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        check_equivalent(&net, &result.network);
        // 9-input AND with 4-LUTs: ceil(log4(9)) = 2 levels.
        assert_eq!(result.depth, 2);
    }

    #[test]
    fn nand_nor_xnor_decompose_correctly() {
        for kind in [GateKind::Nand, GateKind::Nor, GateKind::Xnor] {
            let mut net = GateNetwork::new("g");
            let ins: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
            let g = net.add_gate(kind, ins);
            net.add_output("y", g);
            let result = map_network(&net, FlowMapOptions::default()).unwrap();
            check_equivalent(&net, &result.network);
        }
    }

    #[test]
    fn output_driven_by_input_passes_through() {
        let mut net = GateNetwork::new("wire");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Not, vec![a]);
        net.add_output("y", g);
        net.add_output("a_copy", a);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        check_equivalent(&net, &result.network);
    }

    #[test]
    fn shared_logic_realized_once() {
        let mut net = GateNetwork::new("share");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let shared = net.add_gate(GateKind::Xor, vec![a, b]);
        // Two outputs depending on the same deep node.
        let o1 = net.add_gate(GateKind::Not, vec![shared]);
        let o2 = net.add_gate(GateKind::Buf, vec![shared]);
        net.add_output("y1", o1);
        net.add_output("y2", o2);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        check_equivalent(&net, &result.network);
    }

    #[test]
    fn labels_monotone_along_paths() {
        let net = ripple_adder_gates(6);
        let result = map_network(&net, FlowMapOptions::default()).unwrap();
        for (id, gate) in decompose(&net).iter() {
            for &input in &gate.inputs {
                if let GateSignal::Gate(g) = input {
                    assert!(
                        result.labels[g.index()] <= result.labels[id.index()],
                        "labels must be monotone"
                    );
                }
            }
        }
    }

    #[test]
    fn k2_mapping_works() {
        let net = ripple_adder_gates(2);
        let result = map_network(&net, FlowMapOptions { lut_inputs: 2 }).unwrap();
        check_equivalent(&net, &result.network);
    }

    #[test]
    fn bad_lut_size_rejected() {
        let net = ripple_adder_gates(1);
        assert!(map_network(&net, FlowMapOptions { lut_inputs: 9 }).is_err());
    }
}
