//! Minimal max-flow solver for FlowMap's K-feasible-cut computation.
//!
//! FlowMap only needs to distinguish "max-flow <= k" from "> k", so the
//! solver runs BFS augmenting paths (Edmonds–Karp over a residual graph
//! whose finite capacities are all 1) and stops as soon as the flow exceeds
//! the bound.

/// A directed edge with residual bookkeeping. Flow may go negative on
/// reverse edges, hence the signed type.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: i64,
    flow: i64,
    /// Index of the reverse edge in `graph.edges`.
    rev: usize,
}

impl Edge {
    #[inline]
    fn residual(&self) -> i64 {
        self.cap - self.flow
    }
}

/// A unit-capacity flow network.
#[derive(Debug, Default)]
pub(crate) struct FlowGraph {
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

/// Sentinel for "infinite" capacity.
pub(crate) const INF: i64 = i64::MAX / 4;

impl FlowGraph {
    /// Creates a graph with `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge with the given capacity.
    pub(crate) fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        let fwd = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            flow: 0,
            rev: fwd + 1,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            flow: 0,
            rev: fwd,
        });
        self.adj[from].push(fwd);
        self.adj[to].push(fwd + 1);
    }

    /// Computes max flow from `s` to `t`, stopping early once the flow
    /// exceeds `bound`. Returns the achieved flow (which may be `bound + 1`
    /// when the true flow is larger).
    pub(crate) fn max_flow_bounded(&mut self, s: usize, t: usize, bound: i64) -> i64 {
        let mut flow = 0;
        while flow <= bound {
            // BFS for an augmenting path in the residual graph.
            let mut parent_edge = vec![usize::MAX; self.adj.len()];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut seen = vec![false; self.adj.len()];
            seen[s] = true;
            'bfs: while let Some(u) = queue.pop_front() {
                for &ei in &self.adj[u] {
                    let e = self.edges[ei];
                    if !seen[e.to] && e.residual() > 0 {
                        seen[e.to] = true;
                        parent_edge[e.to] = ei;
                        if e.to == t {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !seen[t] {
                break;
            }
            // Augment by 1 (every finite capacity is 1).
            let mut v = t;
            while v != s {
                let ei = parent_edge[v];
                self.edges[ei].flow += 1;
                let rev = self.edges[ei].rev;
                self.edges[rev].flow -= 1;
                v = self.edges[rev].to;
            }
            flow += 1;
        }
        flow
    }

    /// Nodes reachable from `s` in the residual graph (valid after
    /// [`Self::max_flow_bounded`] completed without hitting the bound).
    pub(crate) fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &ei in &self.adj[u] {
                let e = self.edges[ei];
                if e.residual() > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_unit_path() {
        // s -> a -> t
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        assert_eq!(g.max_flow_bounded(0, 2, 10), 1);
    }

    #[test]
    fn parallel_paths() {
        // s -> {a,b,c} -> t with unit caps: flow 3
        let mut g = FlowGraph::new(5);
        for node in 1..=3 {
            g.add_edge(0, node, 1);
            g.add_edge(node, 4, 1);
        }
        assert_eq!(g.max_flow_bounded(0, 4, 10), 3);
    }

    #[test]
    fn bound_stops_early() {
        let mut g = FlowGraph::new(6);
        for node in 1..=4 {
            g.add_edge(0, node, 1);
            g.add_edge(node, 5, 1);
        }
        // True flow 4; bound 2 means we stop at 3.
        assert_eq!(g.max_flow_bounded(0, 5, 2), 3);
    }

    #[test]
    fn bottleneck_respected() {
        // s -> a (inf), a -> b (1), b -> t (inf): flow 1.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, INF);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, INF);
        assert_eq!(g.max_flow_bounded(0, 3, 10), 1);
    }

    #[test]
    fn min_cut_via_residual_reachability() {
        // Classic: cut should be the middle unit edge.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, INF);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, INF);
        g.max_flow_bounded(0, 3, 10);
        let reach = g.residual_reachable(0);
        assert!(reach[0] && reach[1]);
        assert!(!reach[2] && !reach[3]);
    }

    #[test]
    fn residual_allows_flow_reversal() {
        // A graph where Edmonds-Karp must cancel flow: the famous
        // "cross edge" diamond.
        //      s(0)
        //     /    \
        //   a(1)   b(2)
        //    | \    |
        //    |  \   |
        //   c(3) \ d(4)
        //     \   X  /
        //      t(5)
        // Edges: s->a, s->b, a->c, a->d, b->d, c->t, d->t, all cap 1.
        // Max flow 2, and a greedy path s->a->d->t would block s->b->d->t
        // without residual reversal.
        let mut g = FlowGraph::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 4, 1); // a->d FIRST so BFS prefers it
        g.add_edge(1, 3, 1);
        g.add_edge(2, 4, 1);
        g.add_edge(3, 5, 1);
        g.add_edge(4, 5, 1);
        assert_eq!(g.max_flow_bounded(0, 5, 10), 2);
    }

    #[test]
    fn cut_after_reversal_is_consistent() {
        let mut g = FlowGraph::new(6);
        g.add_edge(0, 1, INF);
        g.add_edge(0, 2, INF);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 1);
        g.add_edge(3, 5, 0);
        g.add_edge(4, 5, INF);
        // 3->4 is the single bottleneck.
        assert_eq!(g.max_flow_bounded(0, 5, 10), 1);
        let reach = g.residual_reachable(0);
        assert!(reach[3]);
        assert!(!reach[4] && !reach[5]);
    }
}
