//! LUT-network optimization passes.
//!
//! A light logic-cleanup stage between technology mapping and the folding
//! flow (the kind of netlist hygiene Design Compiler performed ahead of
//! the paper's flow):
//!
//! * **constant propagation** — LUT inputs driven by constants are
//!   cofactored away; fully-constant LUTs become constants;
//! * **buffer sweep** — single-input identity LUTs are bypassed
//!   (inverters are kept: they compute);
//! * **structural hashing** — LUTs with identical function and inputs
//!   merge;
//! * **dead-logic sweep** — LUTs reaching no output or flip-flop drop.
//!
//! Passes iterate to a fixed point. Origins, names and flip-flop banks
//! are preserved, so the folding flow's LUT clusters survive
//! optimization.

use std::collections::HashMap;

use nanomap_netlist::{LutNetwork, SignalRef, TruthTable};

/// Statistics of an [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// LUTs before optimization.
    pub luts_before: usize,
    /// LUTs after optimization.
    pub luts_after: usize,
    /// LUTs turned into constants.
    pub constants_folded: usize,
    /// Identity LUTs bypassed.
    pub buffers_swept: usize,
    /// LUTs merged by structural hashing.
    pub duplicates_merged: usize,
    /// Unreachable LUTs dropped.
    pub dead_removed: usize,
    /// Unobservable flip-flops dropped.
    pub dead_ffs_removed: usize,
    /// Fixed-point iterations run.
    pub iterations: u32,
}

impl OptimizeStats {
    /// Fraction of LUTs removed.
    pub fn reduction(&self) -> f64 {
        if self.luts_before == 0 {
            0.0
        } else {
            1.0 - self.luts_after as f64 / self.luts_before as f64
        }
    }
}

/// Optimizes a LUT network; returns the cleaned network and statistics.
///
/// The result is functionally identical to the input (same primary
/// inputs/outputs and flip-flop ordering).
///
/// # Panics
///
/// Panics if the input network fails validation.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::{LutNetwork, TruthTable, SignalRef};
/// use nanomap_techmap::optimize;
///
/// let mut net = LutNetwork::new("t");
/// let a = net.add_input("a");
/// // AND with constant true is a buffer; the chain collapses entirely.
/// let g = net.add_lut(TruthTable::and(2), vec![a, SignalRef::Const(true)]);
/// let h = net.add_lut(TruthTable::buffer(), vec![g]);
/// net.add_output("y", h);
/// let (cleaned, stats) = optimize(&net);
/// assert_eq!(cleaned.num_luts(), 0);
/// assert!(stats.reduction() > 0.99);
/// ```
pub fn optimize(net: &LutNetwork) -> (LutNetwork, OptimizeStats) {
    net.validate().expect("optimize requires a valid network");
    let mut stats = OptimizeStats {
        luts_before: net.num_luts(),
        ..OptimizeStats::default()
    };
    let mut current = net.clone();
    loop {
        stats.iterations += 1;
        let (next, changed) = one_pass(&current, &mut stats);
        current = next;
        if !changed || stats.iterations >= 16 {
            break;
        }
    }
    stats.luts_after = current.num_luts();
    (current, stats)
}

/// One rebuild pass applying every rule; returns (new network, changed).
fn one_pass(net: &LutNetwork, stats: &mut OptimizeStats) -> (LutNetwork, bool) {
    let topo = net.topo_order().expect("validated");
    let mut out = LutNetwork::new(net.name());
    let mut changed = false;

    // Recreate inputs, banks and modules with identical indexing.
    for name in net.input_names() {
        out.add_input(name.clone());
    }
    for b in 0..net.num_banks() as u32 {
        out.add_bank(net.bank_name(b).to_string());
    }
    for m in 0..net.num_modules() {
        out.add_module(
            net.module_name(nanomap_netlist::ModuleId::new(m))
                .to_string(),
        );
    }
    // Liveness: LUTs and flip-flops reachable backwards from the primary
    // outputs (through flip-flop D inputs). Unobservable state dies.
    let (lut_live, ff_live) = liveness(net);

    // Live flip-flops first (D inputs fixed after LUTs exist), remapping
    // their ids densely.
    let mut ff_map: HashMap<nanomap_netlist::FfId, nanomap_netlist::FfId> = HashMap::new();
    for (fid, ff) in net.ffs() {
        if ff_live[fid.index()] {
            let new_id = out.add_ff_in_bank(SignalRef::Const(false), ff.name.clone(), ff.bank);
            ff_map.insert(fid, new_id);
        } else {
            stats.dead_ffs_removed += 1;
            changed = true;
        }
    }

    // Map old signal -> new signal.
    let mut mapped: HashMap<SignalRef, SignalRef> = HashMap::new();
    // Structural hash: (truth bits, arity, inputs) -> new signal.
    let mut dedupe: HashMap<(u64, u32, Vec<SignalRef>), SignalRef> = HashMap::new();
    let live = lut_live;

    let resolve = |sig: SignalRef, mapped: &HashMap<SignalRef, SignalRef>| -> SignalRef {
        match sig {
            SignalRef::Lut(_) => *mapped.get(&sig).expect("topological rebuild"),
            SignalRef::Ff(f) => SignalRef::Ff(
                *ff_map
                    .get(&f)
                    .expect("live logic only references live state"),
            ),
            other => other,
        }
    };

    for id in topo {
        let old_sig = SignalRef::Lut(id);
        if !live[id.index()] {
            stats.dead_removed += 1;
            changed = true;
            // Dead LUTs get no replacement; nothing live refers to them.
            mapped.insert(old_sig, SignalRef::Const(false));
            continue;
        }
        let lut = net.lut(id);
        // Resolve inputs, then cofactor constants away.
        let mut truth = lut.truth;
        let mut inputs: Vec<SignalRef> = Vec::with_capacity(lut.inputs.len());
        for &raw in &lut.inputs {
            inputs.push(resolve(raw, &mapped));
        }
        let mut i = 0;
        while i < inputs.len() {
            match inputs[i] {
                SignalRef::Const(value) => {
                    truth = truth.cofactor(i as u32, value);
                    inputs.remove(i);
                    changed = true;
                }
                _ => i += 1,
            }
        }
        // Merge duplicated input signals into one variable.
        let mut i = 0;
        while i < inputs.len() {
            let mut j = i + 1;
            while j < inputs.len() {
                if inputs[i] == inputs[j] {
                    truth = merge_variables(truth, i as u32, j as u32);
                    inputs.remove(j);
                    changed = true;
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
        // Drop inputs the function ignores (exposed by cofactoring).
        let mut i = 0;
        while i < inputs.len() {
            if truth.num_inputs() > 1 && truth.ignores_input(i as u32) {
                truth = truth.cofactor(i as u32, false);
                inputs.remove(i);
                changed = true;
            } else {
                i += 1;
            }
        }
        let is_constant = truth.bits() == 0
            || truth.bits() == TruthTable::constant_true(truth.num_inputs()).bits();
        let new_sig = if inputs.is_empty() || is_constant {
            stats.constants_folded += 1;
            changed = true;
            SignalRef::Const(truth.bits() != 0)
        } else if truth == TruthTable::buffer() {
            stats.buffers_swept += 1;
            changed = true;
            inputs[0]
        } else {
            let key = (truth.bits(), truth.num_inputs(), inputs.clone());
            if let Some(&existing) = dedupe.get(&key) {
                stats.duplicates_merged += 1;
                changed = true;
                existing
            } else {
                let sig = out.add_lut_full(truth, inputs, lut.origin, lut.name.clone());
                dedupe.insert(key, sig);
                sig
            }
        };
        mapped.insert(old_sig, new_sig);
    }
    // Flip-flop D inputs and outputs.
    for (fid, ff) in net.ffs() {
        if let Some(&new_id) = ff_map.get(&fid) {
            out.set_ff_input(new_id, resolve(ff.d, &mapped));
        }
    }
    for (name, sig) in net.outputs() {
        out.add_output(name.clone(), resolve(*sig, &mapped));
    }
    (out, changed)
}

/// Collapses variable `dup` into variable `keep` (both indices refer to
/// the same signal): the result has one fewer input, with `dup`'s value
/// always equal to `keep`'s.
fn merge_variables(truth: TruthTable, keep: u32, dup: u32) -> TruthTable {
    debug_assert!(keep < dup);
    TruthTable::from_fn(truth.num_inputs() - 1, |bits| {
        let mut full = [false; nanomap_netlist::MAX_LUT_INPUTS as usize];
        let mut src = 0;
        for slot in 0..truth.num_inputs() {
            if slot == dup {
                full[slot as usize] = bits[keep as usize];
            } else {
                full[slot as usize] = bits[src];
                src += 1;
            }
        }
        truth.eval(&full[..truth.num_inputs() as usize])
    })
}

/// Marks LUTs and flip-flops reachable (backwards) from the primary
/// outputs; an FF is alive only if its Q value can reach an output,
/// possibly through other state.
fn liveness(net: &LutNetwork) -> (Vec<bool>, Vec<bool>) {
    #[derive(Clone, Copy)]
    enum Node {
        Lut(usize),
        Ff(usize),
    }
    let mut lut_live = vec![false; net.num_luts()];
    let mut ff_live = vec![false; net.num_ffs()];
    let mut stack: Vec<Node> = Vec::new();
    let seed = |sig: SignalRef, stack: &mut Vec<Node>| match sig {
        SignalRef::Lut(l) => stack.push(Node::Lut(l.index())),
        SignalRef::Ff(f) => stack.push(Node::Ff(f.index())),
        _ => {}
    };
    for &(_, sig) in net.outputs() {
        seed(sig, &mut stack);
    }
    while let Some(node) = stack.pop() {
        match node {
            Node::Lut(l) => {
                if lut_live[l] {
                    continue;
                }
                lut_live[l] = true;
                for &input in &net.lut(nanomap_netlist::LutId::new(l)).inputs {
                    seed(input, &mut stack);
                }
            }
            Node::Ff(f) => {
                if ff_live[f] {
                    continue;
                }
                ff_live[f] = true;
                seed(net.ff(nanomap_netlist::FfId::new(f)).d, &mut stack);
            }
        }
    }
    (lut_live, ff_live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::LutSimulator;

    fn equivalent(a: &LutNetwork, b: &LutNetwork, cycles: usize) {
        let mut sa = LutSimulator::new(a).unwrap();
        let mut sb = LutSimulator::new(b).unwrap();
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for cycle in 0..cycles {
            let inputs: Vec<bool> = (0..a.num_inputs())
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect();
            sa.set_inputs(&inputs);
            sb.set_inputs(&inputs);
            sa.eval_comb();
            sb.eval_comb();
            assert_eq!(sa.outputs(), sb.outputs(), "cycle {cycle}");
            sa.step();
            sb.step();
        }
    }

    #[test]
    fn constant_inputs_cofactor_away() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let g = net.add_lut(TruthTable::and(2), vec![a, SignalRef::Const(true)]);
        net.add_output("y", g);
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_luts(), 0); // AND(a, 1) = a: buffer, then swept
        assert!(stats.buffers_swept >= 1);
        equivalent(&net, &opt, 8);
    }

    #[test]
    fn constant_lut_folds_forward() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        // g = AND(a, 0) = 0; h = OR(a, g) = a.
        let g = net.add_lut(TruthTable::and(2), vec![a, SignalRef::Const(false)]);
        let h = net.add_lut(TruthTable::or(2), vec![a, g]);
        net.add_output("y", h);
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_luts(), 0);
        assert!(stats.constants_folded >= 1);
        equivalent(&net, &opt, 8);
    }

    #[test]
    fn duplicates_merge() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_lut(TruthTable::xor(2), vec![a, b]);
        let g2 = net.add_lut(TruthTable::xor(2), vec![a, b]);
        let top = net.add_lut(TruthTable::and(2), vec![g1, g2]);
        net.add_output("y", top);
        let (opt, stats) = optimize(&net);
        assert!(stats.duplicates_merged >= 1);
        // AND(x, x) has a dead second input after merging; it reduces to x.
        assert_eq!(opt.num_luts(), 1);
        equivalent(&net, &opt, 8);
    }

    #[test]
    fn dead_logic_removed() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let live = net.add_lut(TruthTable::inverter(), vec![a]);
        let _dead = net.add_lut(TruthTable::xor(2), vec![a, live]);
        net.add_output("y", live);
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_luts(), 1);
        assert_eq!(stats.dead_removed, 1);
        equivalent(&net, &opt, 8);
    }

    #[test]
    fn inverters_are_kept() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let inv = net.add_lut(TruthTable::inverter(), vec![a]);
        net.add_output("y", inv);
        let (opt, _) = optimize(&net);
        assert_eq!(opt.num_luts(), 1);
        equivalent(&net, &opt, 4);
    }

    #[test]
    fn sequential_structure_preserved() {
        // Toggle flip-flop with a redundant buffer chain in the loop.
        let mut net = LutNetwork::new("t");
        let ff = net.add_ff(SignalRef::Const(false), Some("t".into()));
        let inv = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(ff)]);
        let buf = net.add_lut(TruthTable::buffer(), vec![inv]);
        net.set_ff_input(ff, buf);
        net.add_output("q", SignalRef::Ff(ff));
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_ffs(), 1);
        assert_eq!(opt.num_luts(), 1);
        assert_eq!(stats.buffers_swept, 1);
        equivalent(&net, &opt, 10);
    }

    #[test]
    fn benchmark_scale_cleanup_is_equivalent() {
        // A mapped multiplier contains no redundancy by construction, but
        // must pass through unchanged and equivalent.
        use nanomap_netlist::rtl::{CombOp, RtlBuilder};
        let mut b = RtlBuilder::new("m");
        let a = b.input("a", 5);
        let c = b.input("b", 5);
        let mul = b.comb("mul", CombOp::Mul { width: 5 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let y = b.output("y", 10);
        b.connect(mul, 0, y, 0).unwrap();
        let net = crate::expand(&b.finish().unwrap(), crate::ExpandOptions::default()).unwrap();
        let (opt, stats) = optimize(&net);
        assert!(opt.num_luts() <= net.num_luts());
        assert!(stats.reduction() >= 0.0);
        equivalent(&net, &opt, 32);
    }

    #[test]
    fn origins_survive() {
        use nanomap_netlist::rtl::{CombOp, RtlBuilder};
        let mut b = RtlBuilder::new("m");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let y = b.output("y", 4);
        b.connect(add, 0, y, 0).unwrap();
        let net = crate::expand(&b.finish().unwrap(), crate::ExpandOptions::default()).unwrap();
        let (opt, _) = optimize(&net);
        // Every surviving LUT keeps its module origin.
        for (_, lut) in opt.luts() {
            assert!(lut.origin.is_some());
        }
    }
}

#[cfg(test)]
mod dead_ff_tests {
    use super::*;
    use nanomap_netlist::LutSimulator;

    #[test]
    fn unobservable_state_is_removed() {
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        // Live path: a -> inverter -> output.
        let inv = net.add_lut(TruthTable::inverter(), vec![a]);
        net.add_output("y", inv);
        // Dead self-looping counter bit feeding nothing observable.
        let dead_ff = net.add_ff(SignalRef::Const(false), Some("dead".into()));
        let toggle = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(dead_ff)]);
        net.set_ff_input(dead_ff, toggle);
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_ffs(), 0);
        assert_eq!(opt.num_luts(), 1);
        assert_eq!(stats.dead_ffs_removed, 1);
        assert_eq!(stats.dead_removed, 1);
    }

    #[test]
    fn observable_state_survives_and_behaves() {
        let mut net = LutNetwork::new("t");
        let ff = net.add_ff(SignalRef::Const(false), Some("live".into()));
        let inv = net.add_lut(TruthTable::inverter(), vec![SignalRef::Ff(ff)]);
        net.set_ff_input(ff, inv);
        net.add_output("q", SignalRef::Ff(ff));
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_ffs(), 1);
        assert_eq!(stats.dead_ffs_removed, 0);
        let mut sa = LutSimulator::new(&net).unwrap();
        let mut sb = LutSimulator::new(&opt).unwrap();
        for _ in 0..6 {
            assert_eq!(sa.outputs(), sb.outputs());
            sa.step();
            sb.step();
        }
    }

    #[test]
    fn chained_dead_state_collapses_transitively() {
        // dead_b <- dead_a <- dead_b: a state clique feeding nothing.
        let mut net = LutNetwork::new("t");
        let a = net.add_input("a");
        let keep = net.add_lut(TruthTable::buffer(), vec![a]);
        net.add_output("y", keep);
        let fa = net.add_ff(SignalRef::Const(false), None);
        let fb = net.add_ff(SignalRef::Ff(fa), None);
        net.set_ff_input(fa, SignalRef::Ff(fb));
        let (opt, stats) = optimize(&net);
        assert_eq!(opt.num_ffs(), 0);
        assert_eq!(stats.dead_ffs_removed, 2);
    }
}
