//! RTL-to-LUT expansion.
//!
//! Expands every combinational RTL operator into a network of k-input LUTs,
//! registers into flip-flops, and wiring operators into pure reconnection.
//! Each LUT produced for a multi-bit module records its [`LutOrigin`]
//! (module instance and depth within the module); NanoMap's logic-mapping
//! step partitions modules into *LUT clusters* along these depths.
//!
//! The generated structures follow the paper's examples: a `width`-bit
//! ripple-carry adder uses `2*width` LUTs with logic depth `width`, and a
//! parallel (array) multiplier uses on the order of `3w^2` LUTs with depth
//! about `2w - 1` (the paper's 4-bit instances: 8 LUTs / depth 4 and
//! 38 LUTs / depth 7).

// Expansion runs on user-supplied circuits: failures must surface as
// `TechmapError`, never a panic. The few remaining `expect`s below are
// invariants established by `RtlCircuit::validate` (which `expand` runs
// first) and carry individual justifications.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use nanomap_netlist::rtl::{CombOp, NodeKind, RtlCircuit};
use nanomap_netlist::{FfId, LutNetwork, LutOrigin, ModuleId, NodeId, SignalRef, TruthTable};

use crate::error::TechmapError;

/// Options controlling RTL expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandOptions {
    /// LUT size `m` (NATURE uses 4-input LUTs).
    pub lut_inputs: u32,
    /// Multiplier structure.
    pub multiplier: MultiplierStyle,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        Self {
            lut_inputs: 4,
            multiplier: MultiplierStyle::CarrySaveArray,
        }
    }
}

/// How parallel multipliers are structured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiplierStyle {
    /// Classic carry-save adder array: critical path about `2w - 1`
    /// cells, the regular structure whose 4-bit instance matches the
    /// paper's 38-LUT / depth-7 multiplier.
    #[default]
    CarrySaveArray,
    /// Wallace tree: 3:2 column compression to two rows, then a ripple
    /// vector merge. Shallower (about `w + log w`) at similar LUT cost —
    /// the style the paper's 16-bit plane depths imply.
    Wallace,
}

/// Expands an RTL circuit into a LUT/flip-flop network.
///
/// # Errors
///
/// Returns an error if the circuit is malformed, a generic logic node is
/// wider than the LUT size, or an unsupported width is requested.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
/// use nanomap_techmap::{expand, ExpandOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("add4");
/// let a = b.input("a", 4);
/// let c = b.input("b", 4);
/// let gnd = b.constant("gnd", 1, 0);
/// let add = b.comb("add", CombOp::Add { width: 4 });
/// b.connect(a, 0, add, 0)?;
/// b.connect(c, 0, add, 1)?;
/// b.connect(gnd, 0, add, 2)?;
/// let y = b.output("y", 4);
/// b.connect(add, 0, y, 0)?;
/// let circuit = b.finish()?;
///
/// let net = expand(&circuit, ExpandOptions::default())?;
/// // 4-bit ripple-carry adder: 2 LUTs per bit, depth 4 (paper, Section 3).
/// assert_eq!(net.num_luts(), 8);
/// assert_eq!(net.lut_depths()?.1, 4);
/// # Ok(())
/// # }
/// ```
pub fn expand(circuit: &RtlCircuit, options: ExpandOptions) -> Result<LutNetwork, TechmapError> {
    let mut span = nanomap_observe::span!("techmap-expand", lut_inputs = options.lut_inputs);
    if !(2..=6).contains(&options.lut_inputs) {
        return Err(TechmapError::BadLutSize(options.lut_inputs));
    }
    circuit.validate()?;
    let mut ctx = Expander {
        circuit,
        net: LutNetwork::new(circuit.name()),
        bits: HashMap::new(),
        m: options.lut_inputs,
        multiplier_style: options.multiplier,
        ff_of_register: HashMap::new(),
    };
    ctx.run()?;
    let mut net = ctx.net;
    finalize_module_depths(&mut net);
    span.attr("luts", net.num_luts() as u64);
    span.attr("ffs", net.num_ffs() as u64);
    Ok(net)
}

struct Expander<'a> {
    circuit: &'a RtlCircuit,
    net: LutNetwork,
    /// (node, output port) -> bit signals, LSB first.
    bits: HashMap<(NodeId, u32), Vec<SignalRef>>,
    m: u32,
    multiplier_style: MultiplierStyle,
    ff_of_register: HashMap<NodeId, Vec<FfId>>,
}

impl Expander<'_> {
    fn run(&mut self) -> Result<(), TechmapError> {
        // Primary inputs.
        for id in self.circuit.inputs() {
            let node = self.circuit.node(id);
            if let NodeKind::Input { width } = node.kind {
                let bits: Vec<SignalRef> = (0..width)
                    .map(|b| self.net.add_input(format!("{}[{b}]", node.name)))
                    .collect();
                self.bits.insert((id, 0), bits);
            }
        }
        // Registers: create FFs up front so feedback resolves; D wired later.
        for id in self.circuit.registers() {
            let node = self.circuit.node(id);
            if let NodeKind::Register { width } = node.kind {
                let bank = self.net.add_bank(node.name.clone());
                let ffs: Vec<FfId> = (0..width)
                    .map(|b| {
                        self.net.add_ff_in_bank(
                            SignalRef::Const(false),
                            Some(format!("{}[{b}]", node.name)),
                            Some(bank),
                        )
                    })
                    .collect();
                let bits = ffs.iter().map(|&f| SignalRef::Ff(f)).collect();
                self.ff_of_register.insert(id, ffs);
                self.bits.insert((id, 0), bits);
            }
        }
        // Combinational nodes in topological order.
        for id in self.circuit.topo_order_comb()? {
            self.expand_comb(id)?;
        }
        // Register D inputs.
        for (&id, ffs) in &self.ff_of_register {
            let d_bits = self.input_bits(id, 0);
            for (&ff, &d) in ffs.iter().zip(&d_bits) {
                self.net.set_ff_input(ff, d);
            }
        }
        // Primary outputs.
        for id in self.circuit.outputs() {
            let node = self.circuit.node(id);
            if let NodeKind::Output { width } = node.kind {
                let bits = self.input_bits(id, 0);
                for (b, &bit) in bits.iter().enumerate().take(width as usize) {
                    self.net.add_output(format!("{}[{b}]", node.name), bit);
                }
            }
        }
        Ok(())
    }

    /// Bits driving input port `port` of node `id`.
    // `expand` validates the circuit before running, which rejects
    // floating inputs; drivers precede their readers in topo order.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    fn input_bits(&self, id: NodeId, port: u32) -> Vec<SignalRef> {
        let driver = self.circuit.node(id).inputs[port as usize]
            .expect("validated circuit has no floating inputs");
        self.bits[&(driver.node, driver.port)].clone()
    }

    fn lut(
        &mut self,
        truth: TruthTable,
        inputs: Vec<SignalRef>,
        module: Option<ModuleId>,
    ) -> SignalRef {
        let origin = module.map(|m| LutOrigin {
            module: m,
            depth_in_module: 0, // fixed up by finalize_module_depths
        });
        self.net.add_lut_full(truth, inputs, origin, None)
    }

    fn multiplier(
        &mut self,
        a: &[SignalRef],
        b: &[SignalRef],
        width: u32,
        module: Option<ModuleId>,
    ) -> Vec<SignalRef> {
        match self.multiplier_style {
            MultiplierStyle::CarrySaveArray => self.array_multiplier(a, b, width, module),
            MultiplierStyle::Wallace => self.wallace_multiplier(a, b, width, module),
        }
    }

    /// Wallace-tree multiplier: per-column 3:2 compression of the partial
    /// products down to two rows, then a ripple vector merge.
    fn wallace_multiplier(
        &mut self,
        a: &[SignalRef],
        b: &[SignalRef],
        width: u32,
        module: Option<ModuleId>,
    ) -> Vec<SignalRef> {
        let w = width as usize;
        // Columns of addends at each product bit position.
        let mut columns: Vec<Vec<SignalRef>> = vec![Vec::new(); 2 * w];
        for i in 0..w {
            for j in 0..w {
                let pp = self.lut(TruthTable::and(2), vec![a[j], b[i]], module);
                columns[i + j].push(pp);
            }
        }
        // Compress until every column holds at most two bits.
        while columns.iter().any(|c| c.len() > 2) {
            let mut next: Vec<Vec<SignalRef>> = vec![Vec::new(); 2 * w];
            for (pos, column) in columns.iter().enumerate() {
                let mut chunk_iter = column.chunks(3);
                for chunk in chunk_iter.by_ref() {
                    match *chunk {
                        [x, y, z] => {
                            let (sum, carry) = self.fa_cell(x, y, z, module);
                            next[pos].push(sum);
                            if pos + 1 < 2 * w {
                                next[pos + 1].push(carry);
                            }
                        }
                        [x, y] => {
                            let (sum, carry) = self.fa_cell(x, y, SignalRef::Const(false), module);
                            next[pos].push(sum);
                            if pos + 1 < 2 * w {
                                next[pos + 1].push(carry);
                            }
                        }
                        [x] => next[pos].push(x),
                        _ => unreachable!("chunks(3)"),
                    }
                }
            }
            columns = next;
        }
        // Final vector merge: add the two remaining rows with a
        // logarithmic-depth parallel-prefix (Kogge-Stone) adder, keeping
        // the whole multiplier at O(log w) beyond the partial products.
        let xs: Vec<SignalRef> = columns
            .iter()
            .map(|c| c.first().copied().unwrap_or(SignalRef::Const(false)))
            .collect();
        let ys: Vec<SignalRef> = columns
            .iter()
            .map(|c| c.get(1).copied().unwrap_or(SignalRef::Const(false)))
            .collect();
        self.prefix_adder(&xs, &ys, module)
    }

    /// Kogge-Stone parallel-prefix adder: depth `O(log n)` in LUT levels.
    fn prefix_adder(
        &mut self,
        xs: &[SignalRef],
        ys: &[SignalRef],
        module: Option<ModuleId>,
    ) -> Vec<SignalRef> {
        let n = xs.len();
        // Generate/propagate per bit. Constant folding keeps the sparse
        // high columns cheap.
        let mut g: Vec<SignalRef> = Vec::with_capacity(n);
        let mut p: Vec<SignalRef> = Vec::with_capacity(n);
        for i in 0..n {
            let (sum, carry) = self.fa_cell(xs[i], ys[i], SignalRef::Const(false), module);
            p.push(sum); // a XOR b
            g.push(carry); // a AND b
        }
        let half_sum = p.clone();
        // Prefix combine: (g, p) <- (g | (p & g_prev), p & p_prev), with
        // 3-input LUT cells for the g update.
        let mut dist = 1;
        while dist < n {
            let mut ng = g.clone();
            let mut np = p.clone();
            for i in dist..n {
                let gi = self.lut3_or_fold(g[i], p[i], g[i - dist], module);
                ng[i] = gi;
                np[i] = self.and2_fold(p[i], p[i - dist], module);
            }
            g = ng;
            p = np;
            dist *= 2;
        }
        // sum[i] = half_sum[i] XOR carry_in[i], carry_in[i] = g[i-1].
        let mut result = Vec::with_capacity(n);
        for i in 0..n {
            let carry_in = if i == 0 {
                SignalRef::Const(false)
            } else {
                g[i - 1]
            };
            result.push(self.xor2_fold(half_sum[i], carry_in, module));
        }
        result
    }

    /// `a | (b & c)` with constant folding.
    fn lut3_or_fold(
        &mut self,
        a: SignalRef,
        b: SignalRef,
        c: SignalRef,
        module: Option<ModuleId>,
    ) -> SignalRef {
        match (a, b, c) {
            (SignalRef::Const(true), _, _) => SignalRef::Const(true),
            (SignalRef::Const(false), b, c) => self.and2_fold(b, c, module),
            (a, SignalRef::Const(false), _) | (a, _, SignalRef::Const(false)) => a,
            (a, SignalRef::Const(true), c) => self.or2_fold(a, c, module),
            (a, b, SignalRef::Const(true)) => self.or2_fold(a, b, module),
            (a, b, c) => self.lut(
                TruthTable::from_fn(3, |v| v[0] || (v[1] && v[2])),
                vec![a, b, c],
                module,
            ),
        }
    }

    fn and2_fold(&mut self, a: SignalRef, b: SignalRef, module: Option<ModuleId>) -> SignalRef {
        match (a, b) {
            (SignalRef::Const(false), _) | (_, SignalRef::Const(false)) => SignalRef::Const(false),
            (SignalRef::Const(true), x) | (x, SignalRef::Const(true)) => x,
            (a, b) if a == b => a,
            (a, b) => self.lut(TruthTable::and(2), vec![a, b], module),
        }
    }

    fn or2_fold(&mut self, a: SignalRef, b: SignalRef, module: Option<ModuleId>) -> SignalRef {
        match (a, b) {
            (SignalRef::Const(true), _) | (_, SignalRef::Const(true)) => SignalRef::Const(true),
            (SignalRef::Const(false), x) | (x, SignalRef::Const(false)) => x,
            (a, b) if a == b => a,
            (a, b) => self.lut(TruthTable::or(2), vec![a, b], module),
        }
    }

    fn xor2_fold(&mut self, a: SignalRef, b: SignalRef, module: Option<ModuleId>) -> SignalRef {
        match (a, b) {
            (SignalRef::Const(false), x) | (x, SignalRef::Const(false)) => x,
            (SignalRef::Const(true), x) | (x, SignalRef::Const(true)) => {
                self.lut(TruthTable::inverter(), vec![x], module)
            }
            (a, b) if a == b => SignalRef::Const(false),
            (a, b) => self.lut(TruthTable::xor(2), vec![a, b], module),
        }
    }

    fn expand_comb(&mut self, id: NodeId) -> Result<(), TechmapError> {
        let node = self.circuit.node(id);
        let op = match &node.kind {
            NodeKind::Comb(op) => op.clone(),
            _ => return Ok(()),
        };
        // Wiring ops carry no module identity; logic ops register one.
        let module = if op.is_wiring() {
            None
        } else {
            Some(self.net.add_module(node.name.clone()))
        };
        let name = node.name.clone();
        match op {
            CombOp::Add { width } => {
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let cin = self.input_bits(id, 2)[0];
                let (sum, cout) = self.ripple_adder(&a, &b, cin, width, module, false);
                self.bits.insert((id, 0), sum);
                self.bits.insert((id, 1), vec![cout]);
            }
            CombOp::Sub { width } => {
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let (diff, cout) =
                    self.ripple_adder(&a, &b, SignalRef::Const(true), width, module, true);
                // borrow = NOT carry-out
                let bout = self.lut(TruthTable::inverter(), vec![cout], module);
                self.bits.insert((id, 0), diff);
                self.bits.insert((id, 1), vec![bout]);
            }
            CombOp::Mul { width } => {
                if width > 32 {
                    return Err(TechmapError::UnsupportedWidth { node: name, width });
                }
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let prod = self.multiplier(&a, &b, width, module);
                self.bits.insert((id, 0), prod);
            }
            CombOp::Mux2 { width } => {
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let sel = self.input_bits(id, 2)[0];
                let y: Vec<SignalRef> = (0..width as usize)
                    .map(|i| self.lut(TruthTable::mux2(), vec![a[i], b[i], sel], module))
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::MuxN { width, n } => {
                if n == 0 {
                    return Err(TechmapError::DegenerateNode {
                        node: self.circuit.node(id).name.clone(),
                        detail: "mux with zero data inputs",
                    });
                }
                let sel = self.input_bits(id, n);
                let data: Vec<Vec<SignalRef>> = (0..n).map(|p| self.input_bits(id, p)).collect();
                let y = self.mux_tree(&data, &sel, width, module);
                self.bits.insert((id, 0), y);
            }
            CombOp::Eq { width } => {
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let xnors: Vec<SignalRef> = (0..width as usize)
                    .map(|i| self.lut(TruthTable::xor(2).complement(), vec![a[i], b[i]], module))
                    .collect();
                let y = self.reduce_tree(&xnors, TruthTable::and, module);
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::Lt { width } => {
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                // lt_i = (!a & b) | ((a XNOR b) & lt_{i-1}), ripple from LSB.
                let cell = TruthTable::from_fn(3, |v| {
                    let (ai, bi, lt) = (v[0], v[1], v[2]);
                    (!ai && bi) || ((ai == bi) && lt)
                });
                let mut lt = SignalRef::Const(false);
                for i in 0..width as usize {
                    lt = self.lut(cell, vec![a[i], b[i], lt], module);
                }
                self.bits.insert((id, 0), vec![lt]);
            }
            CombOp::And { width } | CombOp::Or { width } | CombOp::Xor { width } => {
                let table = match op {
                    CombOp::And { .. } => TruthTable::and(2),
                    CombOp::Or { .. } => TruthTable::or(2),
                    _ => TruthTable::xor(2),
                };
                let a = self.input_bits(id, 0);
                let b = self.input_bits(id, 1);
                let y: Vec<SignalRef> = (0..width as usize)
                    .map(|i| self.lut(table, vec![a[i], b[i]], module))
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::Not { width } => {
                let a = self.input_bits(id, 0);
                let y: Vec<SignalRef> = (0..width as usize)
                    .map(|i| self.lut(TruthTable::inverter(), vec![a[i]], module))
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::ReduceAnd { .. } => {
                let a = self.input_bits(id, 0);
                let y = self.reduce_tree(&a, TruthTable::and, module);
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::ReduceOr { .. } => {
                let a = self.input_bits(id, 0);
                let y = self.reduce_tree(&a, TruthTable::or, module);
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::ReduceXor { .. } => {
                let a = self.input_bits(id, 0);
                let y = self.reduce_tree(&a, TruthTable::xor, module);
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::Shl { width, amount } => {
                let a = self.input_bits(id, 0);
                let y: Vec<SignalRef> = (0..width)
                    .map(|i| {
                        if i >= amount {
                            a[(i - amount) as usize]
                        } else {
                            SignalRef::Const(false)
                        }
                    })
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::Shr { width, amount } => {
                let a = self.input_bits(id, 0);
                let y: Vec<SignalRef> = (0..width)
                    .map(|i| {
                        let src = i + amount;
                        if src < width {
                            a[src as usize]
                        } else {
                            SignalRef::Const(false)
                        }
                    })
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::Const { width, value } => {
                let y: Vec<SignalRef> = (0..width)
                    .map(|b| SignalRef::Const((value >> b) & 1 == 1))
                    .collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::Lut { truth } => {
                if truth.num_inputs() > self.m {
                    return Err(TechmapError::LogicTooWide {
                        node: name,
                        required: truth.num_inputs(),
                        available: self.m,
                    });
                }
                let inputs: Vec<SignalRef> = (0..truth.num_inputs())
                    .map(|p| self.input_bits(id, p)[0])
                    .collect();
                let y = self.lut(truth, inputs, module);
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::Gate { kind, n } => {
                let inputs: Vec<SignalRef> = (0..n).map(|p| self.input_bits(id, p)[0]).collect();
                let y = self.gate_tree(kind, &inputs, module, &name)?;
                self.bits.insert((id, 0), vec![y]);
            }
            CombOp::Slice { lo, out_width, .. } => {
                let a = self.input_bits(id, 0);
                let y: Vec<SignalRef> = (0..out_width).map(|i| a[(lo + i) as usize]).collect();
                self.bits.insert((id, 0), y);
            }
            CombOp::Concat { widths } => {
                let mut y = Vec::new();
                for (p, _) in widths.iter().enumerate() {
                    y.extend(self.input_bits(id, p as u32));
                }
                self.bits.insert((id, 0), y);
            }
        }
        Ok(())
    }

    /// Ripple-carry adder; `invert_b` folds `~b` into the cell functions
    /// (used by the subtractor). Returns (sum bits, carry out).
    fn ripple_adder(
        &mut self,
        a: &[SignalRef],
        b: &[SignalRef],
        cin: SignalRef,
        width: u32,
        module: Option<ModuleId>,
        invert_b: bool,
    ) -> (Vec<SignalRef>, SignalRef) {
        let sum_cell = if invert_b {
            TruthTable::from_fn(3, |v| v[0] ^ !v[1] ^ v[2])
        } else {
            TruthTable::full_adder_sum()
        };
        let carry_cell = if invert_b {
            #[allow(clippy::nonminimal_bool)] // majority reads clearest in full
            TruthTable::from_fn(3, |v| {
                let b = !v[1];
                (v[0] && b) || (v[0] && v[2]) || (b && v[2])
            })
        } else {
            TruthTable::full_adder_carry()
        };
        let mut carry = cin;
        let mut sum = Vec::with_capacity(width as usize);
        for i in 0..width as usize {
            let s = self.lut(sum_cell, vec![a[i], b[i], carry], module);
            let c = self.lut(carry_cell, vec![a[i], b[i], carry], module);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// A full-adder cell with constant folding. Returns `(sum, carry)`;
    /// constant or pass-through results emit no LUTs.
    fn fa_cell(
        &mut self,
        x: SignalRef,
        y: SignalRef,
        z: SignalRef,
        module: Option<ModuleId>,
    ) -> (SignalRef, SignalRef) {
        let mut signals = Vec::new();
        let mut ones = 0u32;
        for s in [x, y, z] {
            match s {
                SignalRef::Const(true) => ones += 1,
                SignalRef::Const(false) => {}
                other => signals.push(other),
            }
        }
        match (signals.len(), ones) {
            (0, n) => (SignalRef::Const(n % 2 == 1), SignalRef::Const(n >= 2)),
            (1, 0) => (signals[0], SignalRef::Const(false)),
            (1, 1) => (
                self.lut(TruthTable::inverter(), vec![signals[0]], module),
                signals[0],
            ),
            (1, 2) => (signals[0], SignalRef::Const(true)),
            (2, 0) => (
                self.lut(TruthTable::xor(2), signals.clone(), module),
                self.lut(TruthTable::and(2), signals, module),
            ),
            (2, 1) => (
                self.lut(TruthTable::xor(2).complement(), signals.clone(), module),
                self.lut(TruthTable::or(2), signals, module),
            ),
            (3, 0) => (
                self.lut(TruthTable::full_adder_sum(), signals.clone(), module),
                self.lut(TruthTable::full_adder_carry(), signals, module),
            ),
            _ => unreachable!("at most 3 inputs"),
        }
    }

    /// Unsigned carry-save array multiplier: a partial-product AND plane,
    /// one carry-save adder row per multiplier bit, and a final ripple
    /// (vector-merge) adder — the classic array structure whose critical
    /// path is about `2*width - 1` cells (paper: 38 LUTs / depth 7 at 4
    /// bits). Product has `2 * width` bits.
    fn array_multiplier(
        &mut self,
        a: &[SignalRef],
        b: &[SignalRef],
        width: u32,
        module: Option<ModuleId>,
    ) -> Vec<SignalRef> {
        let w = width as usize;
        // Partial products pp[i][j] = a[j] AND b[i] at bit position i + j.
        let pp: Vec<Vec<SignalRef>> = (0..w)
            .map(|i| {
                (0..w)
                    .map(|j| self.lut(TruthTable::and(2), vec![a[j], b[i]], module))
                    .collect()
            })
            .collect();
        // Carry-save rows: S and C vectors over 2w bit positions.
        let mut s = vec![SignalRef::Const(false); 2 * w];
        let mut c = vec![SignalRef::Const(false); 2 * w];
        s[..w].copy_from_slice(&pp[0]);
        for (i, row) in pp.iter().enumerate().skip(1) {
            let mut new_c = vec![SignalRef::Const(false); 2 * w];
            for pos in i..(i + w + 1).min(2 * w) {
                let addend = if pos >= i && pos < i + w {
                    row[pos - i]
                } else {
                    SignalRef::Const(false)
                };
                let (sum, carry) = self.fa_cell(s[pos], c[pos], addend, module);
                s[pos] = sum;
                if pos + 1 < 2 * w {
                    new_c[pos + 1] = carry;
                }
            }
            c = new_c;
        }
        // Vector merge: ripple-add the remaining carries into S.
        let mut ripple = SignalRef::Const(false);
        for pos in 0..2 * w {
            let (sum, carry) = self.fa_cell(s[pos], c[pos], ripple, module);
            s[pos] = sum;
            ripple = carry;
        }
        s
    }

    /// Binary 2:1-mux tree over `n` data buses using the select bits.
    // The `MuxN` expansion rejects `n == 0` before calling this, so
    // `data` (and thus the final level) is never empty.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    fn mux_tree(
        &mut self,
        data: &[Vec<SignalRef>],
        sel: &[SignalRef],
        width: u32,
        module: Option<ModuleId>,
    ) -> Vec<SignalRef> {
        let mut level: Vec<Vec<SignalRef>> = data.to_vec();
        let mut sel_idx = 0;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let s = sel[sel_idx.min(sel.len() - 1)];
            let mut iter = level.chunks(2);
            for pair in iter.by_ref() {
                if pair.len() == 2 {
                    let merged: Vec<SignalRef> = (0..width as usize)
                        .map(|bit| {
                            self.lut(
                                TruthTable::mux2(),
                                vec![pair[0][bit], pair[1][bit], s],
                                module,
                            )
                        })
                        .collect();
                    next.push(merged);
                } else {
                    next.push(pair[0].clone());
                }
            }
            level = next;
            sel_idx += 1;
        }
        level.pop().expect("at least one data input")
    }

    /// m-ary reduction tree with the given associative cell generator.
    fn reduce_tree(
        &mut self,
        bits: &[SignalRef],
        cell: fn(u32) -> TruthTable,
        module: Option<ModuleId>,
    ) -> SignalRef {
        if bits.is_empty() {
            // Empty AND is true, empty OR/XOR are false; AND(0) == const 1.
            return SignalRef::Const(cell(0).eval(&[]));
        }
        let mut level: Vec<SignalRef> = bits.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(self.m as usize));
            for chunk in level.chunks(self.m as usize) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.lut(cell(chunk.len() as u32), chunk.to_vec(), module));
                }
            }
            level = next;
        }
        level[0]
    }

    /// Expands a wide primitive gate into an m-ary tree (associative kinds)
    /// or a single LUT.
    fn gate_tree(
        &mut self,
        kind: nanomap_netlist::gate::GateKind,
        inputs: &[SignalRef],
        module: Option<ModuleId>,
        name: &str,
    ) -> Result<SignalRef, TechmapError> {
        use nanomap_netlist::gate::GateKind as G;
        let n = inputs.len() as u32;
        if n <= self.m {
            let table = TruthTable::from_fn(n, |bits| kind.eval(bits));
            return Ok(self.lut(table, inputs.to_vec(), module));
        }
        // Decompose: inner tree of the associative base op, outer inversion
        // for the negated kinds.
        let (base, invert): (fn(u32) -> TruthTable, bool) = match kind {
            G::And => (TruthTable::and, false),
            G::Nand => (TruthTable::and, true),
            G::Or => (TruthTable::or, false),
            G::Nor => (TruthTable::or, true),
            G::Xor => (TruthTable::xor, false),
            G::Xnor => (TruthTable::xor, true),
            G::Not | G::Buf => {
                return Err(TechmapError::LogicTooWide {
                    node: name.to_string(),
                    required: n,
                    available: self.m,
                })
            }
        };
        let reduced = self.reduce_tree(inputs, base, module);
        Ok(if invert {
            self.lut(TruthTable::inverter(), vec![reduced], module)
        } else {
            reduced
        })
    }
}

/// Recomputes `depth_in_module` for every LUT with an origin: 1 plus the
/// maximum depth of same-module LUT fanins.
// The expander only ever wires LUT inputs to already-emitted signals, so
// the network it produces cannot contain a combinational cycle.
#[cfg_attr(not(test), allow(clippy::expect_used))]
fn finalize_module_depths(net: &mut LutNetwork) {
    let order = net.topo_order().expect("expansion emits acyclic networks");
    let mut depth: Vec<u32> = vec![0; net.num_luts()];
    let mut updates: Vec<(usize, u32)> = Vec::new();
    for id in order {
        let lut = net.lut(id);
        let Some(origin) = lut.origin else { continue };
        let d = 1 + lut
            .inputs
            .iter()
            .filter_map(|s| match s {
                SignalRef::Lut(l)
                    if net.lut(*l).origin.map(|o| o.module) == Some(origin.module) =>
                {
                    Some(depth[l.index()])
                }
                _ => None,
            })
            .max()
            .unwrap_or(0);
        depth[id.index()] = d;
        updates.push((id.index(), d));
    }
    for (idx, d) in updates {
        // Safe: we only touch origin depth, never structure.
        set_origin_depth(net, idx, d);
    }
}

fn set_origin_depth(net: &mut LutNetwork, idx: usize, depth: u32) {
    // LutNetwork has no mutable accessor for origins by design; rebuild the
    // origin through a small internal helper.
    net.set_lut_origin_depth(nanomap_netlist::LutId::new(idx), depth);
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // bit loops mirror the hardware indexing
mod tests {
    use super::*;
    use nanomap_netlist::rtl::RtlBuilder;
    use nanomap_netlist::LutSimulator;

    #[test]
    fn zero_input_mux_is_rejected_not_panicked() {
        let mut b = RtlBuilder::new("degenerate");
        let s = b.input("s", 1);
        let mux = b.comb("m", CombOp::MuxN { width: 1, n: 0 });
        b.connect(s, 0, mux, 0).unwrap();
        let y = b.output("y", 1);
        b.connect(mux, 0, y, 0).unwrap();
        let circuit = b.finish().unwrap();
        let err = expand(&circuit, ExpandOptions::default()).unwrap_err();
        assert!(matches!(err, TechmapError::DegenerateNode { .. }), "{err}");
        assert!(err.to_string().contains("zero data inputs"), "{err}");
    }

    fn build_adder(width: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("adder");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let cin = b.input("cin", 1);
        let add = b.comb("add", CombOp::Add { width });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(bb, 0, add, 1).unwrap();
        b.connect(cin, 0, add, 2).unwrap();
        let sum = b.output("sum", width);
        let cout = b.output("cout", 1);
        b.connect(add, 0, sum, 0).unwrap();
        b.connect(add, 1, cout, 0).unwrap();
        b.finish().unwrap()
    }

    /// Exhaustive check: mapped adder equals RTL adder.
    #[test]
    fn adder_matches_reference() {
        let circuit = build_adder(4);
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in 0u64..2 {
                    let mut inputs = vec![false; net.num_inputs()];
                    // input order: a[0..4], b[0..4], cin
                    for bit in 0..4 {
                        inputs[bit] = (a >> bit) & 1 == 1;
                        inputs[4 + bit] = (b >> bit) & 1 == 1;
                    }
                    inputs[8] = cin == 1;
                    sim.set_inputs(&inputs);
                    sim.eval_comb();
                    let outs = sim.outputs();
                    let mut sum = 0u64;
                    for bit in 0..4 {
                        if outs[bit] {
                            sum |= 1 << bit;
                        }
                    }
                    let carry = outs[4];
                    let expected = a + b + cin;
                    assert_eq!(sum, expected & 0xF, "a={a} b={b} cin={cin}");
                    assert_eq!(carry, expected >> 4 == 1);
                }
            }
        }
    }

    /// Paper, Section 3: a 4-bit ripple-carry adder occupies 8 LUTs with
    /// logic depth 4.
    #[test]
    fn adder_matches_paper_footprint() {
        let net = expand(&build_adder(4), ExpandOptions::default()).unwrap();
        assert_eq!(net.num_luts(), 8);
        assert_eq!(net.lut_depths().unwrap().1, 4);
    }

    fn build_multiplier(width: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("mult");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let mul = b.comb("mul", CombOp::Mul { width });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(bb, 0, mul, 1).unwrap();
        let y = b.output("y", 2 * width);
        b.connect(mul, 0, y, 0).unwrap();
        b.finish().unwrap()
    }

    /// Exhaustive check for the 4-bit array multiplier.
    #[test]
    fn multiplier_matches_reference() {
        let circuit = build_multiplier(4);
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut inputs = vec![false; net.num_inputs()];
                for bit in 0..4 {
                    inputs[bit] = (a >> bit) & 1 == 1;
                    inputs[4 + bit] = (b >> bit) & 1 == 1;
                }
                sim.set_inputs(&inputs);
                sim.eval_comb();
                let outs = sim.outputs();
                let mut prod = 0u64;
                for (bit, &o) in outs.iter().enumerate() {
                    if o {
                        prod |= 1 << bit;
                    }
                }
                assert_eq!(prod, a * b, "a={a} b={b}");
            }
        }
    }

    /// Paper, Section 3: the 4-bit parallel multiplier is 38 LUTs, depth 7.
    /// Our array structure lands within a few LUTs and exactly on depth.
    #[test]
    fn multiplier_near_paper_footprint() {
        let net = expand(&build_multiplier(4), ExpandOptions::default()).unwrap();
        let luts = net.num_luts();
        assert!(
            (34..=46).contains(&luts),
            "4-bit multiplier should be close to the paper's 38 LUTs, got {luts}"
        );
        let depth = net.lut_depths().unwrap().1;
        assert!(
            (7..=9).contains(&depth),
            "depth should be close to the paper's 7, got {depth}"
        );
    }

    #[test]
    fn subtractor_matches_reference() {
        let mut b = RtlBuilder::new("sub");
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let sub = b.comb("sub", CombOp::Sub { width: 4 });
        b.connect(a, 0, sub, 0).unwrap();
        b.connect(bb, 0, sub, 1).unwrap();
        let diff = b.output("diff", 4);
        let bout = b.output("bout", 1);
        b.connect(sub, 0, diff, 0).unwrap();
        b.connect(sub, 1, bout, 0).unwrap();
        let circuit = b.finish().unwrap();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut inputs = vec![false; net.num_inputs()];
                for bit in 0..4 {
                    inputs[bit] = (a >> bit) & 1 == 1;
                    inputs[4 + bit] = (b >> bit) & 1 == 1;
                }
                sim.set_inputs(&inputs);
                sim.eval_comb();
                let outs = sim.outputs();
                let mut d = 0u64;
                for bit in 0..4 {
                    if outs[bit] {
                        d |= 1 << bit;
                    }
                }
                assert_eq!(d, a.wrapping_sub(b) & 0xF, "a={a} b={b}");
                assert_eq!(outs[4], a < b, "borrow a={a} b={b}");
            }
        }
    }

    #[test]
    fn comparators_match_reference() {
        let mut b = RtlBuilder::new("cmp");
        let a = b.input("a", 3);
        let bb = b.input("b", 3);
        let eq = b.comb("eq", CombOp::Eq { width: 3 });
        let lt = b.comb("lt", CombOp::Lt { width: 3 });
        b.connect(a, 0, eq, 0).unwrap();
        b.connect(bb, 0, eq, 1).unwrap();
        b.connect(a, 0, lt, 0).unwrap();
        b.connect(bb, 0, lt, 1).unwrap();
        let ye = b.output("ye", 1);
        let yl = b.output("yl", 1);
        b.connect(eq, 0, ye, 0).unwrap();
        b.connect(lt, 0, yl, 0).unwrap();
        let circuit = b.finish().unwrap();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut inputs = vec![false; 6];
                for bit in 0..3 {
                    inputs[bit] = (a >> bit) & 1 == 1;
                    inputs[3 + bit] = (b >> bit) & 1 == 1;
                }
                sim.set_inputs(&inputs);
                sim.eval_comb();
                let outs = sim.outputs();
                assert_eq!(outs[0], a == b);
                assert_eq!(outs[1], a < b);
            }
        }
    }

    #[test]
    fn muxn_matches_reference() {
        let mut b = RtlBuilder::new("m");
        let d0 = b.input("d0", 2);
        let d1 = b.input("d1", 2);
        let d2 = b.input("d2", 2);
        let sel = b.input("sel", 2);
        let mux = b.comb("mux", CombOp::MuxN { width: 2, n: 3 });
        b.connect(d0, 0, mux, 0).unwrap();
        b.connect(d1, 0, mux, 1).unwrap();
        b.connect(d2, 0, mux, 2).unwrap();
        b.connect(sel, 0, mux, 3).unwrap();
        let y = b.output("y", 2);
        b.connect(mux, 0, y, 0).unwrap();
        let circuit = b.finish().unwrap();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        // d0=1, d1=2, d2=3
        let base = [true, false, false, true, true, true];
        for s in 0u64..3 {
            let mut inputs = base.to_vec();
            inputs.push(s & 1 == 1);
            inputs.push(s >> 1 & 1 == 1);
            sim.set_inputs(&inputs);
            sim.eval_comb();
            let outs = sim.outputs();
            let y = u64::from(outs[0]) | (u64::from(outs[1]) << 1);
            assert_eq!(y, s + 1, "sel={s}");
        }
    }

    #[test]
    fn shifts_are_pure_wiring() {
        let mut b = RtlBuilder::new("s");
        let a = b.input("a", 4);
        let shl = b.comb(
            "shl",
            CombOp::Shl {
                width: 4,
                amount: 1,
            },
        );
        b.connect(a, 0, shl, 0).unwrap();
        let y = b.output("y", 4);
        b.connect(shl, 0, y, 0).unwrap();
        let circuit = b.finish().unwrap();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        assert_eq!(net.num_luts(), 0);
    }

    #[test]
    fn origins_record_module_and_depth() {
        let net = expand(&build_adder(4), ExpandOptions::default()).unwrap();
        assert_eq!(net.num_modules(), 1);
        let max_depth = net
            .luts()
            .filter_map(|(_, l)| l.origin.map(|o| o.depth_in_module))
            .max()
            .unwrap();
        assert_eq!(max_depth, 4);
        for (_, lut) in net.luts() {
            let o = lut.origin.expect("all adder LUTs have origins");
            assert!(o.depth_in_module >= 1);
            assert_eq!(net.module_name(o.module), "add");
        }
    }

    #[test]
    fn sequential_expansion_preserves_behaviour() {
        // 4-bit counter at RTL vs mapped network.
        let mut b = RtlBuilder::new("counter");
        let acc = b.register("acc", 4);
        let one = b.constant("one", 4, 1);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(acc, 0, add, 0).unwrap();
        b.connect(one, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        b.connect(add, 0, acc, 0).unwrap();
        let y = b.output("y", 4);
        b.connect(acc, 0, y, 0).unwrap();
        let circuit = b.finish().unwrap();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        assert_eq!(net.num_ffs(), 4);
        let mut sim = LutSimulator::new(&net).unwrap();
        for step in 0..20u64 {
            sim.eval_comb();
            let outs = sim.outputs();
            let mut y = 0u64;
            for bit in 0..4 {
                if outs[bit] {
                    y |= 1 << bit;
                }
            }
            assert_eq!(y, step % 16);
            sim.step();
        }
    }

    #[test]
    fn too_wide_logic_rejected() {
        let mut b = RtlBuilder::new("w");
        let inputs: Vec<_> = (0..5).map(|i| b.input(&format!("i{i}"), 1)).collect();
        let lut = b.lut("big", TruthTable::and(5));
        for (p, &i) in inputs.iter().enumerate() {
            b.connect(i, 0, lut, p as u32).unwrap();
        }
        let y = b.output("y", 1);
        b.connect(lut, 0, y, 0).unwrap();
        let circuit = b.finish().unwrap();
        let err = expand(&circuit, ExpandOptions::default()).unwrap_err();
        assert!(matches!(err, TechmapError::LogicTooWide { .. }));
        // ...but a 5-input LUT architecture accepts it.
        assert!(expand(
            &circuit,
            ExpandOptions {
                lut_inputs: 5,
                ..ExpandOptions::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn bad_lut_size_rejected() {
        let circuit = build_adder(2);
        assert!(matches!(
            expand(
                &circuit,
                ExpandOptions {
                    lut_inputs: 1,
                    ..ExpandOptions::default()
                }
            ),
            Err(TechmapError::BadLutSize(1))
        ));
        assert!(matches!(
            expand(
                &circuit,
                ExpandOptions {
                    lut_inputs: 7,
                    ..ExpandOptions::default()
                }
            ),
            Err(TechmapError::BadLutSize(7))
        ));
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // bit loops mirror the hardware indexing
mod wallace_tests {
    use super::*;
    use nanomap_netlist::rtl::RtlBuilder;
    use nanomap_netlist::LutSimulator;

    fn mult_circuit(width: u32) -> RtlCircuit {
        let mut b = RtlBuilder::new("m");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let mul = b.comb("mul", CombOp::Mul { width });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(bb, 0, mul, 1).unwrap();
        let y = b.output("y", 2 * width);
        b.connect(mul, 0, y, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn wallace_multiplier_matches_reference() {
        let circuit = mult_circuit(4);
        let net = expand(
            &circuit,
            ExpandOptions {
                multiplier: MultiplierStyle::Wallace,
                ..ExpandOptions::default()
            },
        )
        .unwrap();
        let mut sim = LutSimulator::new(&net).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut inputs = vec![false; net.num_inputs()];
                for bit in 0..4 {
                    inputs[bit] = (a >> bit) & 1 == 1;
                    inputs[4 + bit] = (b >> bit) & 1 == 1;
                }
                sim.set_inputs(&inputs);
                sim.eval_comb();
                let mut prod = 0u64;
                for (bit, &o) in sim.outputs().iter().enumerate() {
                    if o {
                        prod |= 1 << bit;
                    }
                }
                assert_eq!(prod, a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn wallace_is_shallower_at_width() {
        for width in [8u32, 12, 16] {
            let circuit = mult_circuit(width);
            let csa = expand(&circuit, ExpandOptions::default()).unwrap();
            let wallace = expand(
                &circuit,
                ExpandOptions {
                    multiplier: MultiplierStyle::Wallace,
                    ..ExpandOptions::default()
                },
            )
            .unwrap();
            let csa_depth = csa.lut_depths().unwrap().1;
            let wallace_depth = wallace.lut_depths().unwrap().1;
            assert!(
                wallace_depth < csa_depth,
                "w={width}: wallace {wallace_depth} !< csa {csa_depth}"
            );
            // LUT costs stay in the same ballpark.
            assert!(wallace.num_luts() < csa.num_luts() * 2);
        }
    }

    #[test]
    fn wallace_random_vectors_at_width8() {
        let circuit = mult_circuit(8);
        let net = expand(
            &circuit,
            ExpandOptions {
                multiplier: MultiplierStyle::Wallace,
                ..ExpandOptions::default()
            },
        )
        .unwrap();
        let report = crate::verify_equivalence(&circuit, &net, 200, 0xD1CE).expect("simulates");
        assert!(report.is_equivalent(), "{:?}", report.mismatch);
    }
}
