//! Technology mapping for the NanoMap flow.
//!
//! NanoMap's logic-mapping front end needs a mixed module/LUT network: RTL
//! modules expand into structured LUT sub-networks (recording their module
//! of origin for LUT-cluster partitioning), while gate-level logic maps
//! through [FlowMap](flowmap) — the depth-optimal k-LUT mapper the paper
//! cites as reference \[14\].
//!
//! * [`expand`] — RTL operators → LUT networks (ripple-carry adders, array
//!   multipliers, mux trees, comparators, reduction trees, …);
//! * [`flowmap`] — gate-level Boolean networks → depth-optimal k-LUTs;
//! * [`verify_equivalence`] — cycle-accurate co-simulation of an RTL
//!   circuit against its mapped network.
//!
//! # Examples
//!
//! ```
//! use nanomap_netlist::rtl::{CombOp, RtlBuilder};
//! use nanomap_techmap::{expand, ExpandOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RtlBuilder::new("mac");
//! let a = b.input("a", 4);
//! let x = b.input("x", 4);
//! let mul = b.comb("mul", CombOp::Mul { width: 4 });
//! b.connect(a, 0, mul, 0)?;
//! b.connect(x, 0, mul, 1)?;
//! let y = b.output("y", 8);
//! b.connect(mul, 0, y, 0)?;
//! let net = expand(&b.finish()?, ExpandOptions::default())?;
//! // The 4-bit parallel multiplier from the paper's example is ~38 LUTs.
//! assert!(net.num_luts() > 30);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod expand;
pub mod flowmap;
mod optimize;
mod verify;

pub use error::TechmapError;
pub use expand::{expand, ExpandOptions, MultiplierStyle};
pub use flowmap::{decompose, map_network, FlowMapOptions, FlowMapResult};
pub use optimize::{optimize, OptimizeStats};
pub use verify::{verify_equivalence, EquivalenceReport, Mismatch};
