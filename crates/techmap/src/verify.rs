//! Co-simulation equivalence checking between an RTL circuit and its
//! mapped LUT network.
//!
//! Expansion names mapped input/output bits `bus[i]`, so the checker can
//! drive both representations with the same stimulus and compare outputs
//! cycle by cycle. It is used throughout the test suite and by the flow's
//! optional self-check.

use nanomap_netlist::rtl::{NodeKind, RtlCircuit, RtlSimulator};
use nanomap_netlist::{LutNetwork, LutSimulator, NetlistError};

/// A single mismatch found during co-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Zero-based clock cycle of the divergence.
    pub cycle: usize,
    /// Name of the diverging output bit (`bus[i]` form).
    pub output: String,
    /// Value produced by the RTL reference.
    pub expected: bool,
    /// Value produced by the mapped network.
    pub actual: bool,
}

/// Result of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Number of cycles simulated.
    pub cycles: usize,
    /// Number of input vectors applied (== cycles).
    pub vectors: usize,
    /// The first mismatch, if any.
    pub mismatch: Option<Mismatch>,
}

impl EquivalenceReport {
    /// `true` when no divergence was observed.
    pub fn is_equivalent(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Deterministic xorshift generator so equivalence runs are reproducible.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Co-simulates `circuit` against `mapped` for `cycles` clock cycles with
/// pseudo-random inputs derived from `seed`.
///
/// # Errors
///
/// Returns an error if either representation fails validation.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
/// use nanomap_techmap::{expand, verify_equivalence, ExpandOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("inc");
/// let a = b.input("a", 8);
/// let one = b.constant("one", 8, 1);
/// let gnd = b.constant("gnd", 1, 0);
/// let add = b.comb("add", CombOp::Add { width: 8 });
/// b.connect(a, 0, add, 0)?;
/// b.connect(one, 0, add, 1)?;
/// b.connect(gnd, 0, add, 2)?;
/// let y = b.output("y", 8);
/// b.connect(add, 0, y, 0)?;
/// let circuit = b.finish()?;
/// let net = expand(&circuit, ExpandOptions::default())?;
/// let report = verify_equivalence(&circuit, &net, 256, 42)?;
/// assert!(report.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn verify_equivalence(
    circuit: &RtlCircuit,
    mapped: &LutNetwork,
    cycles: usize,
    seed: u64,
) -> Result<EquivalenceReport, NetlistError> {
    let mut rtl_sim = RtlSimulator::new(circuit)?;
    let mut lut_sim = LutSimulator::new(mapped)?;
    let mut rng = XorShift64(seed | 1);

    // Input buses of the RTL circuit, with widths.
    let input_buses: Vec<(String, u32)> = circuit
        .inputs()
        .iter()
        .map(|&id| {
            let node = circuit.node(id);
            let width = match node.kind {
                NodeKind::Input { width } => width,
                _ => unreachable!("inputs() returns only Input nodes"),
            };
            (node.name.clone(), width)
        })
        .collect();
    // Map mapped-network input bit index -> (bus, bit).
    let lut_input_names = mapped.input_names().to_vec();

    // Output buses of the RTL circuit.
    let output_buses: Vec<(String, u32)> = circuit
        .outputs()
        .iter()
        .map(|&id| {
            let node = circuit.node(id);
            let width = match node.kind {
                NodeKind::Output { width } => width,
                _ => unreachable!(),
            };
            (node.name.clone(), width)
        })
        .collect();

    for cycle in 0..cycles {
        // Random stimulus.
        let mut bit_values: std::collections::HashMap<String, bool> =
            std::collections::HashMap::new();
        for (bus, width) in &input_buses {
            let value = rng.next()
                & if *width >= 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
            rtl_sim.set_input(bus, value);
            for b in 0..*width {
                bit_values.insert(format!("{bus}[{b}]"), (value >> b) & 1 == 1);
            }
        }
        let lut_inputs: Vec<bool> = lut_input_names
            .iter()
            .map(|n| bit_values.get(n).copied().unwrap_or(false))
            .collect();
        lut_sim.set_inputs(&lut_inputs);

        rtl_sim.eval_comb();
        lut_sim.eval_comb();

        // Compare every output bit.
        let lut_outputs = lut_sim.outputs();
        for (bus, width) in &output_buses {
            let expected = rtl_sim.output(bus).expect("bus is an output");
            for b in 0..*width {
                let bit_name = format!("{bus}[{b}]");
                let pos = mapped
                    .outputs()
                    .iter()
                    .position(|(n, _)| *n == bit_name)
                    .unwrap_or_else(|| panic!("mapped network missing output `{bit_name}`"));
                let actual = lut_outputs[pos];
                let expected_bit = (expected >> b) & 1 == 1;
                if actual != expected_bit {
                    return Ok(EquivalenceReport {
                        cycles: cycle + 1,
                        vectors: cycle + 1,
                        mismatch: Some(Mismatch {
                            cycle,
                            output: bit_name,
                            expected: expected_bit,
                            actual,
                        }),
                    });
                }
            }
        }
        rtl_sim.step();
        lut_sim.step();
    }
    Ok(EquivalenceReport {
        cycles,
        vectors: cycles,
        mismatch: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand, ExpandOptions};
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};

    fn datapath() -> RtlCircuit {
        // acc <= sel ? acc + x : acc - x; y = acc
        let mut b = RtlBuilder::new("dp");
        let x = b.input("x", 6);
        let sel = b.input("sel", 1);
        let acc = b.register("acc", 6);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 6 });
        b.connect(acc, 0, add, 0).unwrap();
        b.connect(x, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let sub = b.comb("sub", CombOp::Sub { width: 6 });
        b.connect(acc, 0, sub, 0).unwrap();
        b.connect(x, 0, sub, 1).unwrap();
        let mux = b.comb("mux", CombOp::Mux2 { width: 6 });
        b.connect(sub, 0, mux, 0).unwrap();
        b.connect(add, 0, mux, 1).unwrap();
        b.connect(sel, 0, mux, 2).unwrap();
        b.connect(mux, 0, acc, 0).unwrap();
        let y = b.output("y", 6);
        b.connect(acc, 0, y, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn sequential_datapath_is_equivalent() {
        let circuit = datapath();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let report = verify_equivalence(&circuit, &net, 500, 7).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.mismatch);
        assert_eq!(report.cycles, 500);
    }

    #[test]
    fn divergent_network_is_detected() {
        // Map the datapath, then check it against a circuit that merely
        // forwards `x`: the checker must report a mismatch.
        let circuit = datapath();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let mut b = RtlBuilder::new("dp");
        let x = b.input("x", 6);
        let _sel = b.input("sel", 1);
        let y = b.output("y", 6);
        b.connect(x, 0, y, 0).unwrap();
        let other = b.finish().unwrap();
        let report = verify_equivalence(&other, &net, 200, 7).unwrap();
        assert!(!report.is_equivalent());
        let mismatch = report.mismatch.unwrap();
        assert!(mismatch.output.starts_with("y["));
    }

    #[test]
    fn deterministic_given_seed() {
        let circuit = datapath();
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let a = verify_equivalence(&circuit, &net, 50, 123).unwrap();
        let b = verify_equivalence(&circuit, &net, 50, 123).unwrap();
        assert_eq!(a, b);
    }
}
