//! Constructive temporal clustering (Section 4.3).
//!
//! Packs each temporal slice's LUTs into SMBs. Seeds are chosen as in
//! T-VPack (the LUT using the most inputs, preferring large clusters);
//! candidates join the SMB with the highest *attraction*, a mix of timing
//! criticality and pin sharing. Because folding makes several slices share
//! one physical SMB, attraction also counts connectivity in *other*
//! slices — the attraction of a LUT pair is the maximum over all cycles
//! (Fig. 6(a)).
//!
//! After LUT packing, stored LUT outputs (values crossing folding cycles)
//! and architectural flip-flops are placed into SMB flip-flop capacity,
//! preferring the producer's SMB so cross-cycle reads stay local.

use std::collections::{BTreeSet, HashMap};

use nanomap_arch::ArchParams;
use nanomap_netlist::{FfId, LutId, SignalRef};

use crate::design::{Slice, TemporalDesign};
use crate::error::PackError;

/// Tuning knobs for the packer.
#[derive(Debug, Clone, Copy)]
pub struct PackOptions {
    /// Weight of same-cycle direct connections.
    pub w_direct: f64,
    /// Weight of shared input signals.
    pub w_shared: f64,
    /// Weight of cross-cycle (temporal) connectivity.
    pub w_temporal: f64,
    /// Weight of timing criticality (inverse mobility).
    pub w_crit: f64,
    /// Disable the temporal term (for the ablation study).
    pub temporal_attraction: bool,
}

impl Default for PackOptions {
    fn default() -> Self {
        Self {
            w_direct: 2.0,
            w_shared: 1.0,
            w_temporal: 1.5,
            w_crit: 0.5,
            temporal_attraction: true,
        }
    }
}

/// The result of temporal clustering.
#[derive(Debug, Clone)]
pub struct Packing {
    /// Number of physical SMBs used.
    pub num_smbs: u32,
    /// Physical SMB of every LUT.
    pub lut_smb: HashMap<LutId, u32>,
    /// LE slot (within its SMB) of every LUT.
    pub lut_le: HashMap<LutId, u32>,
    /// SMB holding the stored output of a LUT whose value crosses folding
    /// cycles (key = producer LUT).
    pub stored_smb: HashMap<LutId, u32>,
    /// SMB of every architectural flip-flop.
    pub ff_smb: HashMap<FfId, u32>,
    /// LUT occupancy per SMB per slice.
    pub lut_occupancy: HashMap<(u32, Slice), u32>,
    /// Flip-flop bit occupancy per SMB per slice.
    pub ff_occupancy: HashMap<(u32, Slice), u32>,
}

impl Packing {
    /// Peak LE usage over slices: for each slice, every SMB needs
    /// `max(luts, ceil(ffs / ffs_per_le))` LEs.
    pub fn les_used(&self, arch: &ArchParams, design: &TemporalDesign<'_>) -> u32 {
        design
            .slices()
            .iter()
            .map(|&slice| {
                (0..self.num_smbs)
                    .map(|smb| {
                        let luts = self.lut_occupancy.get(&(smb, slice)).copied().unwrap_or(0);
                        let ffs = self.ff_occupancy.get(&(smb, slice)).copied().unwrap_or(0);
                        luts.max(ffs.div_ceil(arch.ffs_per_le))
                    })
                    .sum::<u32>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Per-SMB NRAM configuration sets the cluster actually exercises:
    /// the sorted [`TemporalDesign::set_index`] of every slice where the
    /// SMB holds a LUT, a stored value or a flip-flop bit. Stored values
    /// and architectural flip-flops are already expanded into
    /// [`Self::ff_occupancy`] over their full hold intervals, so the
    /// occupancy maps are a complete activity record.
    ///
    /// This is the *precise* legality view: the heuristic placer asks
    /// the defect map for the conservative prefix `0..num_slices`, while
    /// exact recovery asks only for these sets — a slot with a dead set
    /// outside an SMB's active list is still a legal home for it.
    pub fn required_sets(&self, design: &TemporalDesign<'_>) -> Vec<Vec<u32>> {
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); self.num_smbs as usize];
        for (&(smb, slice), &occ) in self.lut_occupancy.iter().chain(self.ff_occupancy.iter()) {
            if occ > 0 {
                sets[smb as usize].insert(design.set_index(slice));
            }
        }
        sets.into_iter().map(|s| s.into_iter().collect()).collect()
    }
}

/// Runs temporal clustering.
///
/// # Errors
///
/// Currently infallible for validated designs, but returns `Result` so
/// capacity policies can become strict later.
pub fn pack(
    design: &TemporalDesign<'_>,
    arch: &ArchParams,
    options: PackOptions,
) -> Result<Packing, PackError> {
    let attraction_ctr = nanomap_observe::counter("pack.attraction_evals");
    let smb_fill_hist = nanomap_observe::histogram("pack.smb_lut_fill");

    let cap_luts = arch.luts_per_smb();
    let cap_ffs = arch.ffs_per_smb();
    let net = design.net;
    let fanouts = net.fanouts();

    // LUT-level undirected adjacency + shared-input counting support.
    let lut_inputs: Vec<BTreeSet<SignalRef>> = net
        .luts()
        .map(|(_, l)| l.inputs.iter().copied().collect())
        .collect();
    let neighbors = |l: LutId| -> Vec<LutId> {
        let mut out: Vec<LutId> = fanouts.lut_to_luts[l.index()].clone();
        for input in &net.lut(l).inputs {
            if let SignalRef::Lut(u) = input {
                out.push(*u);
            }
        }
        out
    };

    // Mobility per LUT (criticality = 1 / (1 + mobility)).
    let mut mobility: HashMap<LutId, u32> = HashMap::new();
    for (p, g) in design.graphs.iter().enumerate() {
        // Item frames in the final schedule are singletons, so use the
        // unpinned frames for criticality.
        if let Ok(tf) =
            nanomap_sched::TimeFrames::compute(g, design.schedules[p].stages, &vec![None; g.len()])
        {
            for (i, item) in g.items.iter().enumerate() {
                for &l in &item.luts {
                    mobility.insert(l, tf.mobility(i));
                }
            }
        }
    }

    let mut packing = Packing {
        num_smbs: 0,
        lut_smb: HashMap::new(),
        lut_le: HashMap::new(),
        stored_smb: HashMap::new(),
        ff_smb: HashMap::new(),
        lut_occupancy: HashMap::new(),
        ff_occupancy: HashMap::new(),
    };

    // ---- Phase 1: LUT packing, slice by slice. ----
    let slices = design.slices();
    let total_slices = slices.len() as u64;
    for (slice_idx, slice) in slices.into_iter().enumerate() {
        let mut unassigned: Vec<LutId> = design.luts_in(slice);
        unassigned.sort();
        while !unassigned.is_empty() {
            // Seed: the LUT with the most inputs (T-VPack), ties by id.
            let seed_pos = unassigned
                .iter()
                .enumerate()
                .max_by_key(|(_, &l)| (net.lut(l).inputs.len(), std::cmp::Reverse(l.index())))
                .map(|(pos, _)| pos)
                .expect("non-empty");
            let seed = unassigned.swap_remove(seed_pos);

            // Target SMB: highest temporal attraction with free capacity,
            // else a fresh SMB.
            let target = (0..packing.num_smbs)
                .filter(|&smb| {
                    packing
                        .lut_occupancy
                        .get(&(smb, slice))
                        .copied()
                        .unwrap_or(0)
                        < cap_luts
                })
                .map(|smb| {
                    let affinity = if options.temporal_attraction {
                        temporal_affinity(&packing, &neighbors, seed, smb)
                    } else {
                        0.0
                    };
                    (smb, affinity)
                })
                .filter(|&(_, a)| a > 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(smb, _)| smb);
            // Without affinity, reuse the lowest-index SMB with free
            // capacity in this slice (temporal sharing is the point);
            // open a fresh SMB only when all are full.
            let smb = target
                .or_else(|| {
                    (0..packing.num_smbs).find(|&smb| {
                        packing
                            .lut_occupancy
                            .get(&(smb, slice))
                            .copied()
                            .unwrap_or(0)
                            < cap_luts
                    })
                })
                .unwrap_or_else(|| {
                    packing.num_smbs += 1;
                    packing.num_smbs - 1
                });
            assign_lut(&mut packing, seed, smb, slice);

            // Grow the SMB greedily by attraction.
            while packing
                .lut_occupancy
                .get(&(smb, slice))
                .copied()
                .unwrap_or(0)
                < cap_luts
                && !unassigned.is_empty()
            {
                let mut best: Option<(f64, usize)> = None;
                attraction_ctr.add(unassigned.len() as u64);
                for (pos, &cand) in unassigned.iter().enumerate() {
                    let a = attraction(
                        &packing,
                        design,
                        &lut_inputs,
                        &neighbors,
                        &mobility,
                        cand,
                        smb,
                        slice,
                        options,
                    );
                    match best {
                        Some((b, _)) if b >= a => {}
                        _ => best = Some((a, pos)),
                    }
                }
                let Some((score, pos)) = best else { break };
                if score <= 0.0 {
                    break;
                }
                let cand = unassigned.swap_remove(pos);
                assign_lut(&mut packing, cand, smb, slice);
            }
        }
        nanomap_observe::events::progress(
            "pack",
            slice_idx as u64 + 1,
            Some(total_slices),
            None,
            f64::from(packing.num_smbs),
        );
    }

    // Per-(SMB, slice) LUT fill levels feed the packing-density histogram.
    if nanomap_observe::enabled() {
        for &occ in packing.lut_occupancy.values() {
            smb_fill_hist.record(u64::from(occ));
        }
        nanomap_observe::incr("pack.smbs_opened", u64::from(packing.num_smbs));
    }

    // ---- Phase 2: stored LUT outputs. ----
    for (id, _) in net.luts() {
        let producer_slice = design.slice_of(id);
        let live_end = fanouts.lut_to_luts[id.index()]
            .iter()
            .filter_map(|&c| {
                let s = design.slice_of(c);
                (s.plane == producer_slice.plane && s.stage > producer_slice.stage)
                    .then_some(s.stage)
            })
            .max();
        let Some(end) = live_end else { continue };
        let live: Vec<Slice> = (producer_slice.stage..=end)
            .map(|stage| Slice {
                plane: producer_slice.plane,
                stage,
            })
            .collect();
        let home = packing.lut_smb[&id];
        let smb = find_ff_home(&packing, home, &live, cap_ffs, &mut || packing.num_smbs);
        if smb == packing.num_smbs {
            packing.num_smbs += 1;
        }
        for &s in &live {
            *packing.ff_occupancy.entry((smb, s)).or_insert(0) += 1;
        }
        packing.stored_smb.insert(id, smb);
    }

    // ---- Phase 3: architectural flip-flops (live in every slice). ----
    let all_slices = design.slices();
    for (fid, ff) in net.ffs() {
        let home = match ff.d {
            SignalRef::Lut(l) => packing.lut_smb.get(&l).copied().unwrap_or(0),
            _ => 0,
        };
        let smb = find_ff_home(&packing, home, &all_slices, cap_ffs, &mut || {
            packing.num_smbs
        });
        if smb == packing.num_smbs {
            packing.num_smbs += 1;
        }
        for &s in &all_slices {
            *packing.ff_occupancy.entry((smb, s)).or_insert(0) += 1;
        }
        packing.ff_smb.insert(fid, smb);
    }

    Ok(packing)
}

fn assign_lut(packing: &mut Packing, lut: LutId, smb: u32, slice: Slice) {
    let occupancy = packing.lut_occupancy.entry((smb, slice)).or_insert(0);
    packing.lut_le.insert(lut, *occupancy);
    *occupancy += 1;
    packing.lut_smb.insert(lut, smb);
}

/// Connectivity of `lut` to SMB members in *any* slice (the "max over all
/// the cycles" rule of Section 4.3; any-cycle connectivity as 0/1 per
/// neighbour).
fn temporal_affinity(
    packing: &Packing,
    neighbors: &impl Fn(LutId) -> Vec<LutId>,
    lut: LutId,
    smb: u32,
) -> f64 {
    neighbors(lut)
        .into_iter()
        .filter(|n| packing.lut_smb.get(n) == Some(&smb))
        .count() as f64
}

#[allow(clippy::too_many_arguments)]
fn attraction(
    packing: &Packing,
    design: &TemporalDesign<'_>,
    lut_inputs: &[BTreeSet<SignalRef>],
    neighbors: &impl Fn(LutId) -> Vec<LutId>,
    mobility: &HashMap<LutId, u32>,
    cand: LutId,
    smb: u32,
    slice: Slice,
    options: PackOptions,
) -> f64 {
    let mut direct = 0u32;
    let mut temporal = 0u32;
    for n in neighbors(cand) {
        if packing.lut_smb.get(&n) == Some(&smb) {
            if design.slice_of(n) == slice {
                direct += 1;
            } else {
                temporal += 1;
            }
        }
    }
    // Shared inputs with same-slice members of the SMB.
    let mut shared = 0u32;
    for (&other, &other_smb) in &packing.lut_smb {
        if other_smb == smb && design.slice_of(other) == slice && other != cand {
            shared += lut_inputs[cand.index()]
                .intersection(&lut_inputs[other.index()])
                .count() as u32;
        }
    }
    let crit = 1.0 / (1.0 + f64::from(mobility.get(&cand).copied().unwrap_or(0)));
    let temporal_term = if options.temporal_attraction {
        options.w_temporal * f64::from(temporal)
    } else {
        0.0
    };
    let base =
        options.w_direct * f64::from(direct) + options.w_shared * f64::from(shared) + temporal_term;
    if base > 0.0 {
        base + options.w_crit * crit
    } else {
        0.0
    }
}

/// Finds an SMB whose FF capacity admits a bit live in `live` slices:
/// prefer `home`, then the lowest-index SMB with room, else a fresh SMB
/// (returned as `next_fresh()`).
fn find_ff_home(
    packing: &Packing,
    home: u32,
    live: &[Slice],
    cap_ffs: u32,
    next_fresh: &mut impl FnMut() -> u32,
) -> u32 {
    let fits = |smb: u32| {
        live.iter()
            .all(|&s| packing.ff_occupancy.get(&(smb, s)).copied().unwrap_or(0) < cap_ffs)
    };
    if fits(home) {
        return home;
    }
    for smb in 0..packing.num_smbs {
        if fits(smb) {
            return smb;
        }
    }
    next_fresh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    fn packed_adder(p: u32) -> (nanomap_netlist::LutNetwork, u32, Packing, u32) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 8 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let r = b.register("r", 8);
        b.connect(add, 0, r, 0).unwrap();
        let y = b.output("y", 8);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = &planes.planes()[0];
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let slices = design.num_slices();
        let les = packing.les_used(&arch, &design);
        (net, slices, packing, les)
    }

    #[test]
    fn every_lut_assigned_within_capacity() {
        let (net, _, packing, _) = packed_adder(2);
        let arch = ArchParams::paper();
        assert_eq!(packing.lut_smb.len(), net.num_luts());
        for (&(_, _), &occ) in &packing.lut_occupancy {
            assert!(occ <= arch.luts_per_smb());
        }
        for (&(_, _), &occ) in &packing.ff_occupancy {
            assert!(occ <= arch.ffs_per_smb());
        }
    }

    #[test]
    fn le_slots_unique_within_slice() {
        let (net, _, packing, _) = packed_adder(2);
        let mut seen: std::collections::HashSet<(u32, u32, usize)> =
            std::collections::HashSet::new();
        for (id, _) in net.luts() {
            let smb = packing.lut_smb[&id];
            let le = packing.lut_le[&id];
            // slot key includes producer slice via stage... approximate by
            // (smb, le, lut-id-free) uniqueness check per slice done below.
            let _ = (smb, le);
        }
        // Stronger check: occupancy counters match assigned LE slots.
        for (id, _) in net.luts() {
            let smb = packing.lut_smb[&id];
            let le = packing.lut_le[&id];
            assert!(le < 16);
            seen.insert((smb, le, id.index()));
        }
        assert_eq!(seen.len(), net.num_luts());
    }

    #[test]
    fn deep_folding_uses_fewer_smbs() {
        let (_, _, p1, _) = packed_adder(1);
        let (_, _, p8, _) = packed_adder(8);
        assert!(
            p1.num_smbs <= p8.num_smbs + 1,
            "level-1 used {} SMBs, level-8 used {}",
            p1.num_smbs,
            p8.num_smbs
        );
    }

    #[test]
    fn registers_all_placed() {
        let (net, _, packing, _) = packed_adder(2);
        assert_eq!(packing.ff_smb.len(), net.num_ffs());
    }

    #[test]
    fn cross_cycle_values_get_storage() {
        // Level-1 folding of a depth-8 adder: every carry crosses a cycle.
        let (_, slices, packing, _) = packed_adder(1);
        assert!(slices >= 8);
        assert!(!packing.stored_smb.is_empty());
    }

    #[test]
    fn les_used_reasonable() {
        let (net, _, _, les) = packed_adder(2);
        // Never more LEs than LUTs + FFs, never zero.
        assert!(les > 0);
        assert!(les <= (net.num_luts() + net.num_ffs()) as u32);
    }

    #[test]
    fn packing_is_deterministic() {
        let (_, _, a, _) = packed_adder(2);
        let (_, _, b, _) = packed_adder(2);
        assert_eq!(a.lut_smb, b.lut_smb);
        assert_eq!(a.num_smbs, b.num_smbs);
    }

    #[test]
    fn required_sets_are_precise_and_sorted() {
        // Two planes of very different widths: the wide comparator in
        // plane 0 opens several SMBs, the single-LUT plane 1 touches
        // one — the others are idle across plane 1's slices, which is
        // the precision this helper captures over the placer's
        // conservative `0..num_slices` prefix.
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 64);
        let c = b.input("b", 64);
        let en = b.input("en", 1);
        let eq = b.comb("eq", CombOp::Eq { width: 64 });
        b.connect(a, 0, eq, 0).unwrap();
        b.connect(c, 0, eq, 1).unwrap();
        let r = b.register("r", 1);
        b.connect(eq, 0, r, 0).unwrap();
        let gate = b.comb("gate", CombOp::And { width: 1 });
        b.connect(r, 0, gate, 0).unwrap();
        b.connect(en, 0, gate, 1).unwrap();
        let y = b.output("y", 1);
        b.connect(gate, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let depth = planes.planes().iter().map(|p| p.depth).max().unwrap();
        let (graphs, schedules): (Vec<_>, Vec<_>) = planes
            .planes()
            .iter()
            .map(|plane| {
                let graph = ItemGraph::build(&net, plane, 1).unwrap();
                let schedule = schedule_fds(&net, &graph, depth, FdsOptions::default()).unwrap();
                (graph, schedule)
            })
            .unzip();
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).unwrap();
        let packing = pack(&design, &ArchParams::paper(), PackOptions::default()).unwrap();

        let sets = packing.required_sets(&design);
        assert_eq!(sets.len(), packing.num_smbs as usize);
        let total = design.num_slices();
        for (smb, list) in sets.iter().enumerate() {
            assert!(!list.is_empty(), "SMB {smb} has no active sets");
            assert!(list.windows(2).all(|w| w[0] < w[1]), "SMB {smb} unsorted");
            assert!(*list.last().unwrap() < total);
        }
        // The precise view must agree with the occupancy maps exactly.
        for (&(smb, slice), &occ) in packing.lut_occupancy.iter().chain(&packing.ff_occupancy) {
            if occ > 0 {
                assert!(sets[smb as usize].contains(&design.set_index(slice)));
            }
        }
        // Under deep folding at least one SMB is idle in some slice —
        // that gap is what exact recovery exploits over the placer's
        // conservative `num_slices` prefix.
        assert!(
            sets.iter().any(|l| (l.len() as u32) < total),
            "every SMB active in all {total} slices: no precision gap"
        );
    }
}
