//! The temporal design: all planes' schedules stitched together.

use std::collections::HashMap;

use nanomap_netlist::{LutId, LutNetwork, PlaneSet};
use nanomap_sched::{ItemGraph, Schedule};

use crate::error::PackError;

/// One temporal slice: a `(plane, folding stage)` pair. Slices execute in
/// lexicographic order and share the same physical hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slice {
    /// Plane index.
    pub plane: usize,
    /// Folding stage within the plane (0-based).
    pub stage: u32,
}

/// A fully scheduled multi-plane design, ready for temporal clustering.
#[derive(Debug)]
pub struct TemporalDesign<'a> {
    /// The mapped network.
    pub net: &'a LutNetwork,
    /// The plane decomposition.
    pub planes: &'a PlaneSet,
    /// Per-plane item graphs.
    pub graphs: Vec<ItemGraph>,
    /// Per-plane schedules (same stage count each).
    pub schedules: Vec<Schedule>,
    /// Folding stages per plane.
    pub stages: u32,
    /// Slice of every LUT.
    slice_of_lut: HashMap<LutId, Slice>,
}

impl<'a> TemporalDesign<'a> {
    /// Assembles and validates a temporal design.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of graphs/schedules does not match
    /// the planes, the stage counts disagree, or a schedule violates its
    /// item graph.
    pub fn new(
        net: &'a LutNetwork,
        planes: &'a PlaneSet,
        graphs: Vec<ItemGraph>,
        schedules: Vec<Schedule>,
    ) -> Result<Self, PackError> {
        if graphs.len() != planes.num_planes() || schedules.len() != planes.num_planes() {
            return Err(PackError::Inconsistent(format!(
                "{} planes but {} graphs / {} schedules",
                planes.num_planes(),
                graphs.len(),
                schedules.len()
            )));
        }
        let stages = schedules.first().map_or(1, |s| s.stages);
        for (p, (g, s)) in graphs.iter().zip(&schedules).enumerate() {
            if s.stages != stages {
                return Err(PackError::Inconsistent(format!(
                    "plane {p} has {} stages, expected {stages}",
                    s.stages
                )));
            }
            if !s.validate(g) {
                return Err(PackError::InvalidSchedule { plane: p });
            }
        }
        let mut slice_of_lut = HashMap::new();
        for (p, g) in graphs.iter().enumerate() {
            for (i, item) in g.items.iter().enumerate() {
                let stage = schedules[p].stage_of[i];
                for &lut in &item.luts {
                    slice_of_lut.insert(lut, Slice { plane: p, stage });
                }
            }
        }
        Ok(Self {
            net,
            planes,
            graphs,
            schedules,
            stages,
            slice_of_lut,
        })
    }

    /// The slice a LUT executes in.
    ///
    /// # Panics
    ///
    /// Panics if the LUT is not part of any plane (should not happen for
    /// validated designs).
    pub fn slice_of(&self, lut: LutId) -> Slice {
        self.slice_of_lut[&lut]
    }

    /// All slices in execution order.
    pub fn slices(&self) -> Vec<Slice> {
        let mut out = Vec::new();
        for plane in 0..self.planes.num_planes() {
            for stage in 0..self.stages {
                out.push(Slice { plane, stage });
            }
        }
        out
    }

    /// Total number of temporal slices (`num_planes * stages`) — the
    /// number of NRAM configuration sets the mapping consumes.
    pub fn num_slices(&self) -> u32 {
        self.planes.num_planes() as u32 * self.stages
    }

    /// NRAM configuration-set index of a slice: its position in
    /// execution order. Slot assignment uses this to ask the defect map
    /// about exactly the sets an SMB's occupants exercise.
    pub fn set_index(&self, slice: Slice) -> u32 {
        slice.plane as u32 * self.stages + slice.stage
    }

    /// LUTs of one slice.
    pub fn luts_in(&self, slice: Slice) -> Vec<LutId> {
        let g = &self.graphs[slice.plane];
        let s = &self.schedules[slice.plane];
        let mut out = Vec::new();
        for (i, item) in g.items.iter().enumerate() {
            if s.stage_of[i] == slice.stage {
                out.extend(item.luts.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_sched::{schedule_fds, FdsOptions};
    use nanomap_techmap::{expand, ExpandOptions};

    pub(crate) fn adder_design() -> (LutNetwork, PlaneSet) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let y = b.output("y", 4);
        b.connect(add, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        (net, planes)
    }

    #[test]
    fn assembles_single_plane_design() {
        let (net, planes) = adder_design();
        let graph = ItemGraph::build(&net, &planes.planes()[0], 2).unwrap();
        let schedule = schedule_fds(&net, &graph, 2, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        assert_eq!(design.num_slices(), 2);
        let all: usize = design
            .slices()
            .iter()
            .map(|&s| design.luts_in(s).len())
            .sum();
        assert_eq!(all, net.num_luts());
        for (id, _) in net.luts() {
            let slice = design.slice_of(id);
            assert!(design.luts_in(slice).contains(&id));
        }
    }

    #[test]
    fn mismatched_counts_rejected() {
        let (net, planes) = adder_design();
        let err = TemporalDesign::new(&net, &planes, vec![], vec![]).unwrap_err();
        assert!(matches!(err, PackError::Inconsistent(_)));
    }

    #[test]
    fn invalid_schedule_rejected() {
        let (net, planes) = adder_design();
        let graph = ItemGraph::build(&net, &planes.planes()[0], 1).unwrap();
        // Force an invalid schedule: everything in stage 0 despite chains.
        let bad = Schedule::new(vec![0; graph.len()], 4);
        let err = TemporalDesign::new(&net, &planes, vec![graph], vec![bad]).unwrap_err();
        assert_eq!(err, PackError::InvalidSchedule { plane: 0 });
    }
}
