//! Packing errors.

use std::error::Error;
use std::fmt;

/// Errors produced during temporal clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The per-plane inputs are inconsistent (graphs/schedules mismatch).
    Inconsistent(String),
    /// A schedule violates its item graph.
    InvalidSchedule {
        /// Plane index.
        plane: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Inconsistent(msg) => write!(f, "inconsistent temporal design: {msg}"),
            Self::InvalidSchedule { plane } => {
                write!(f, "schedule of plane {plane} violates precedence")
            }
        }
    }
}

impl Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_plane() {
        assert!(PackError::InvalidSchedule { plane: 2 }
            .to_string()
            .contains('2'));
    }
}
