//! Temporal clustering: packing LUTs into LEs, MBs and SMBs (Section 4.3).
//!
//! Clustering in NATURE differs from the classic FPGA problem: each
//! hardware resource is *temporally shared* by logic from different
//! folding stages, so intra-stage and inter-stage data dependencies are
//! considered jointly, and the attraction between two LUTs is the maximum
//! over all the folding cycles.
//!
//! * [`TemporalDesign`] — all planes' schedules stitched into temporal
//!   [`Slice`]s;
//! * [`pack`] — constructive attraction-based SMB packing with temporal
//!   affinity, plus placement of stored bits and flip-flops;
//! * [`extract_nets`] — the per-slice inter-SMB netlist consumed by
//!   placement and routing.

#![warn(missing_docs)]

mod design;
mod error;
mod nets;
mod occupancy;
mod packer;

pub use design::{Slice, TemporalDesign};
pub use error::PackError;
pub use nets::{extract_nets, SliceNet, SliceNets};
pub use occupancy::{OccupancyMap, SliceOccupancy};
pub use packer::{pack, PackOptions, Packing};
