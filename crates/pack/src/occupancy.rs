//! Per-SMB, per-folding-cycle occupancy maps.
//!
//! The packer's raw `HashMap<(smb, slice), count>` occupancy is awkward to
//! render; this module reorganizes it into dense per-slice vectors, adds
//! capacities so fills become fractions, and derives the per-stage NRAM
//! view: every folding cycle consumes one NRAM configuration set per
//! element, so "NRAM-set occupancy of stage `s`" is the fraction of the
//! fabric that actually holds a configuration in that set.

use std::collections::BTreeMap;

use nanomap_arch::ArchParams;

use crate::design::{Slice, TemporalDesign};
use crate::packer::Packing;

/// Dense per-SMB occupancy of one folding cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceOccupancy {
    /// LUTs packed into each SMB in this cycle (indexed by SMB id).
    pub luts: Vec<u32>,
    /// Flip-flop / stored-value bits held by each SMB in this cycle.
    pub ffs: Vec<u32>,
}

impl SliceOccupancy {
    /// LUTs across every SMB in this cycle.
    pub fn total_luts(&self) -> u32 {
        self.luts.iter().sum()
    }

    /// Flip-flop bits across every SMB in this cycle.
    pub fn total_ffs(&self) -> u32 {
        self.ffs.iter().sum()
    }
}

/// Per-SMB, per-slice resource occupancy with capacities attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyMap {
    /// Number of physical SMBs.
    pub num_smbs: u32,
    /// LUT capacity of one SMB.
    pub lut_capacity: u32,
    /// Flip-flop bit capacity of one SMB.
    pub ff_capacity: u32,
    /// NRAM configuration sets per element (`u32::MAX` = unbounded).
    pub nram_sets: u32,
    /// Occupancy of every folding cycle, in slice order.
    pub per_slice: BTreeMap<Slice, SliceOccupancy>,
}

impl OccupancyMap {
    /// Builds the dense occupancy map from a packing.
    pub fn build(design: &TemporalDesign<'_>, packing: &Packing, arch: &ArchParams) -> Self {
        let n = packing.num_smbs as usize;
        let mut per_slice = BTreeMap::new();
        for slice in design.slices() {
            let mut occ = SliceOccupancy {
                luts: vec![0; n],
                ffs: vec![0; n],
            };
            for smb in 0..packing.num_smbs {
                occ.luts[smb as usize] = packing
                    .lut_occupancy
                    .get(&(smb, slice))
                    .copied()
                    .unwrap_or(0);
                occ.ffs[smb as usize] = packing
                    .ff_occupancy
                    .get(&(smb, slice))
                    .copied()
                    .unwrap_or(0);
            }
            per_slice.insert(slice, occ);
        }
        Self {
            num_smbs: packing.num_smbs,
            lut_capacity: arch.luts_per_smb(),
            ff_capacity: arch.ffs_per_smb(),
            nram_sets: arch.num_reconf,
            per_slice,
        }
    }

    /// Worst single-SMB LUT fill over all cycles (1.0 = an SMB is full).
    pub fn peak_lut_fill(&self) -> f64 {
        let peak = self
            .per_slice
            .values()
            .flat_map(|o| o.luts.iter())
            .copied()
            .max()
            .unwrap_or(0);
        f64::from(peak) / f64::from(self.lut_capacity.max(1))
    }

    /// Worst single-SMB flip-flop fill over all cycles.
    pub fn peak_ff_fill(&self) -> f64 {
        let peak = self
            .per_slice
            .values()
            .flat_map(|o| o.ffs.iter())
            .copied()
            .max()
            .unwrap_or(0);
        f64::from(peak) / f64::from(self.ff_capacity.max(1))
    }

    /// NRAM configuration sets the mapping actually consumes (one per
    /// folding cycle).
    pub fn nram_sets_used(&self) -> u32 {
        self.per_slice.len() as u32
    }

    /// Per-stage NRAM-set occupancy: for each folding cycle, the fraction
    /// of the fabric's LUT slots whose configuration set is programmed.
    /// Returned in slice order.
    pub fn nram_stage_fill(&self) -> Vec<(Slice, f64)> {
        let capacity = f64::from(self.num_smbs * self.lut_capacity);
        self.per_slice
            .iter()
            .map(|(&slice, occ)| {
                let fill = if capacity == 0.0 {
                    0.0
                } else {
                    f64::from(occ.total_luts()) / capacity
                };
                (slice, fill)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn slice(stage: u32) -> Slice {
        Slice { plane: 0, stage }
    }

    #[test]
    fn fills_and_nram_view() {
        // Hand-built packing: 2 SMBs, 2 slices.
        let mut lut_occupancy = HashMap::new();
        lut_occupancy.insert((0, slice(0)), 16);
        lut_occupancy.insert((1, slice(0)), 4);
        lut_occupancy.insert((0, slice(1)), 8);
        let mut ff_occupancy = HashMap::new();
        ff_occupancy.insert((1, slice(1)), 3);
        let arch = ArchParams::paper();
        let mut per_slice = BTreeMap::new();
        for s in [slice(0), slice(1)] {
            let occ = SliceOccupancy {
                luts: (0..2)
                    .map(|smb| lut_occupancy.get(&(smb, s)).copied().unwrap_or(0))
                    .collect(),
                ffs: (0..2)
                    .map(|smb| ff_occupancy.get(&(smb, s)).copied().unwrap_or(0))
                    .collect(),
            };
            per_slice.insert(s, occ);
        }
        let map = OccupancyMap {
            num_smbs: 2,
            lut_capacity: arch.luts_per_smb(),
            ff_capacity: arch.ffs_per_smb(),
            nram_sets: arch.num_reconf,
            per_slice,
        };
        assert!((map.peak_lut_fill() - 1.0).abs() < 1e-12);
        assert!(map.peak_ff_fill() > 0.0);
        assert_eq!(map.nram_sets_used(), 2);
        let stages = map.nram_stage_fill();
        assert_eq!(stages.len(), 2);
        // Stage 0 programs 20 of 32 LUT slots; stage 1 programs 8.
        assert!((stages[0].1 - 20.0 / 32.0).abs() < 1e-12);
        assert!((stages[1].1 - 8.0 / 32.0).abs() < 1e-12);
    }
}
