//! Inter-SMB nets per temporal slice.
//!
//! Placement and routing operate on the connections that leave an SMB.
//! Because hardware is time-shared, each net belongs to the slice in which
//! it is alive: combinational nets in the producer's slice, storage reads
//! in the consumer's slice, and storage/flip-flop writes in the producer's
//! slice.

use std::collections::{BTreeMap, BTreeSet};

use nanomap_netlist::SignalRef;

use crate::design::{Slice, TemporalDesign};
use crate::packer::Packing;

/// A net between SMBs in one slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceNet {
    /// Driving SMB.
    pub driver: u32,
    /// Sink SMBs (deduplicated, excluding the driver).
    pub sinks: Vec<u32>,
    /// `true` when the net is on a register-to-register critical path
    /// (used by timing-driven placement weighting).
    pub critical: bool,
}

/// All inter-SMB nets, grouped by slice.
#[derive(Debug, Clone, Default)]
pub struct SliceNets {
    /// Nets per slice.
    pub nets: BTreeMap<Slice, Vec<SliceNet>>,
}

impl SliceNets {
    /// Total number of inter-SMB nets.
    pub fn total(&self) -> usize {
        self.nets.values().map(Vec::len).sum()
    }

    /// Nets of one slice (empty slice ⇒ empty slice of nets).
    pub fn of(&self, slice: Slice) -> &[SliceNet] {
        self.nets.get(&slice).map_or(&[], Vec::as_slice)
    }
}

/// Extracts the inter-SMB nets of a packed design.
pub fn extract_nets(design: &TemporalDesign<'_>, packing: &Packing) -> SliceNets {
    // (slice, driver) -> sink set.
    let mut acc: BTreeMap<(Slice, u32), BTreeSet<u32>> = BTreeMap::new();
    let net = design.net;
    let mut add = |slice: Slice, driver: u32, sink: u32| {
        if driver != sink {
            acc.entry((slice, driver)).or_default().insert(sink);
        }
    };

    for (id, lut) in net.luts() {
        let slice = design.slice_of(id);
        let my_smb = packing.lut_smb[&id];
        for input in &lut.inputs {
            match *input {
                SignalRef::Lut(u) => {
                    let u_slice = design.slice_of(u);
                    if u_slice == slice {
                        // Combinational connection within the slice.
                        add(slice, packing.lut_smb[&u], my_smb);
                    } else {
                        // Read of a stored value: the bit lives in the
                        // storage SMB (falling back to the producer's).
                        let store = packing
                            .stored_smb
                            .get(&u)
                            .or_else(|| packing.lut_smb.get(&u))
                            .copied()
                            .expect("packed producer");
                        add(slice, store, my_smb);
                    }
                }
                SignalRef::Ff(f) => {
                    add(slice, packing.ff_smb[&f], my_smb);
                }
                SignalRef::Input(_) | SignalRef::Const(_) => {}
            }
        }
    }
    // Storage writes: producer SMB -> storage SMB in the producer's slice.
    for (&lut, &store) in &packing.stored_smb {
        let slice = design.slice_of(lut);
        add(slice, packing.lut_smb[&lut], store);
    }
    // Flip-flop writes: driver SMB -> FF SMB in the driver's slice.
    for (fid, ff) in net.ffs() {
        if let SignalRef::Lut(u) = ff.d {
            let slice = design.slice_of(u);
            add(slice, packing.lut_smb[&u], packing.ff_smb[&fid]);
        }
    }

    // Criticality: mark nets whose driver slice sits on the longest stage
    // (simple heuristic: last stage of each plane).
    let mut out = SliceNets::default();
    for ((slice, driver), sinks) in acc {
        let critical = slice.stage + 1 == design.stages;
        out.nets.entry(slice).or_default().push(SliceNet {
            driver,
            sinks: sinks.into_iter().collect(),
            critical,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::TemporalDesign;
    use crate::packer::{pack, PackOptions};
    use nanomap_arch::ArchParams;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn nets_reference_valid_smbs_and_slices() {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let mul = b.comb("mul", CombOp::Mul { width: 8 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let r = b.register("r", 16);
        b.connect(mul, 0, r, 0).unwrap();
        let y = b.output("y", 16);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = &planes.planes()[0];
        let p = 3;
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        for (slice, slice_nets) in &nets.nets {
            assert!(slice.stage < design.stages);
            for n in slice_nets {
                assert!(n.driver < packing.num_smbs);
                for &s in &n.sinks {
                    assert!(s < packing.num_smbs);
                    assert_ne!(s, n.driver);
                }
            }
        }
        // A multi-SMB design must produce some nets (unless everything
        // landed in a single SMB).
        if packing.num_smbs > 1 {
            assert!(nets.total() > 0);
        }
    }
}
