//! Benches for the flow's algorithmic kernels, backing the paper's
//! complexity discussion (Section 4.5: FDS is O(n²), placement O(n^4/3),
//! the whole flow O(mn²)) and its "CPU times were less than a minute for
//! all the benchmarks" claim.
//!
//! Zero-dependency harness: each bench runs a warmup pass then `SAMPLES`
//! timed iterations and reports min/median/max wall-clock per iteration.
//! Run with `cargo bench -p nanomap-bench`; pass a substring argument to
//! filter benches by name.

use std::time::Instant;

use nanomap::{NanoMap, Objective};
use nanomap_arch::{ArchParams, ChannelConfig, Grid, RrGraph, SmbPos, TimingModel};
use nanomap_bench::circuits::{c5315_gates, ex1};
use nanomap_netlist::PlaneSet;
use nanomap_observe::rng::XorShift64Star;
use nanomap_pack::{extract_nets, pack, PackOptions, SliceNet, TemporalDesign};
use nanomap_place::{anneal, flatten_nets, AnnealSchedule, CostWeights};
use nanomap_route::{route_slice, RouteOptions};
use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
use nanomap_techmap::{expand, map_network, ExpandOptions, FlowMapOptions};

const SAMPLES: usize = 10;

/// Times `f` over `SAMPLES` iterations (after one warmup) and prints a
/// `name: min/median/max` line. A `black_box`-style sink keeps the result
/// alive so the optimizer cannot elide the work.
fn bench<T>(filter: &str, name: &str, mut f: impl FnMut() -> T) {
    if !name.contains(filter) {
        return;
    }
    std::hint::black_box(f()); // warmup
    let mut samples_us: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "{name:<40} min {:>10.1} us  median {:>10.1} us  max {:>10.1} us",
        samples_us[0],
        samples_us[SAMPLES / 2],
        samples_us[SAMPLES - 1]
    );
}

/// FDS runtime scaling with circuit size (Section 4.5: O(n²)).
fn bench_fds(filter: &str) {
    for width in [4u32, 8, 12] {
        let net = expand(&ex1(width), ExpandOptions::default()).expect("expands");
        let planes = PlaneSet::extract(&net).expect("extracts");
        let plane = planes.planes()[0].clone();
        let level = 2;
        let stages = plane.depth.div_ceil(level);
        let graph = ItemGraph::build(&net, &plane, level).expect("builds");
        let name = format!("fds/ex1_level2/{}", net.num_luts());
        bench(filter, &name, || {
            schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("schedules")
        });
    }
}

/// FlowMap on the c5315-class gate network.
fn bench_flowmap(filter: &str) {
    let gates = c5315_gates();
    let name = format!("flowmap/c5315_like/{}", gates.num_gates());
    bench(filter, &name, || {
        map_network(&gates, FlowMapOptions::default()).expect("maps")
    });
}

/// Simulated-annealing placement scaling (Section 4.5: O(n^4/3)).
fn bench_placement(filter: &str) {
    for n in [16usize, 36, 64] {
        let side = (n as f64).sqrt() as u16;
        let grid = Grid::new(side, side);
        let nets: Vec<nanomap_place::FlatNet> = (0..n as u32 * 2)
            .map(|i| nanomap_place::FlatNet {
                pins: vec![i % n as u32, (i * 7 + 3) % n as u32],
                weight: 1.0,
            })
            .collect();
        let name = format!("placement/anneal/{n}");
        bench(filter, &name, || {
            let mut pos: Vec<SmbPos> = (0..n).map(|i| grid.pos(i)).collect();
            let mut rng = XorShift64Star::new(7);
            anneal(grid, &nets, &mut pos, AnnealSchedule::fast(), &mut rng)
        });
    }
}

/// PathFinder routing one congested slice.
fn bench_routing(filter: &str) {
    let grid = Grid::new(6, 6);
    let graph = RrGraph::build(grid, &ChannelConfig::nature());
    let pos: Vec<SmbPos> = grid.iter().collect();
    let nets: Vec<SliceNet> = (0..48u32)
        .map(|i| SliceNet {
            driver: i % 36,
            sinks: vec![(i * 5 + 7) % 36, (i * 11 + 1) % 36],
            critical: false,
        })
        .map(|mut n| {
            n.sinks.retain(|&s| s != n.driver);
            n
        })
        .collect();
    bench(filter, "routing/pathfinder_6x6_48nets", || {
        route_slice(&graph, &nets, &pos, RouteOptions::default()).expect("routes")
    });
}

/// Temporal clustering.
fn bench_packing(filter: &str) {
    let net = expand(&ex1(8), ExpandOptions::default()).expect("expands");
    let planes = PlaneSet::extract(&net).expect("extracts");
    let plane = planes.planes()[0].clone();
    let level = 2;
    let stages = plane.depth.div_ceil(level);
    let graph = ItemGraph::build(&net, &plane, level).expect("builds");
    let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("schedules");
    let arch = ArchParams::paper_unbounded();
    bench(filter, "packing/ex1_8bit_level2", || {
        let design =
            TemporalDesign::new(&net, &planes, vec![graph.clone()], vec![schedule.clone()])
                .expect("valid");
        let packing = pack(&design, &arch, PackOptions::default()).expect("packs");
        let nets = extract_nets(&design, &packing);
        flatten_nets(&nets, CostWeights::default()).len()
    });
}

/// The whole flow (logic mapping only, and with physical design), backing
/// the paper's "< 1 minute" CPU-time claim.
fn bench_full_flow(filter: &str) {
    let net = expand(&ex1(8), ExpandOptions::default()).expect("expands");
    let logic_only = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    bench(filter, "full_flow/ex1_8bit_logic_only", || {
        logic_only
            .map(&net, Objective::MinAreaDelayProduct)
            .expect("maps")
    });
    let physical = NanoMap::new(ArchParams::paper_unbounded());
    bench(filter, "full_flow/ex1_8bit_with_physical", || {
        physical
            .map(&net, Objective::MinAreaDelayProduct)
            .expect("maps")
    });
    let _ = TimingModel::nature_100nm();
}

fn main() {
    // `cargo bench -- <filter>` narrows to benches whose name contains
    // the substring; `--bench` style flags from cargo are ignored.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_fds(&filter);
    bench_flowmap(&filter);
    bench_placement(&filter);
    bench_routing(&filter);
    bench_packing(&filter);
    bench_full_flow(&filter);
}
