//! Criterion benches for the flow's algorithmic kernels, backing the
//! paper's complexity discussion (Section 4.5: FDS is O(n²), placement
//! O(n^4/3), the whole flow O(mn²)) and its "CPU times were less than a
//! minute for all the benchmarks" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nanomap::{NanoMap, Objective};
use nanomap_arch::{ArchParams, ChannelConfig, Grid, RrGraph, SmbPos, TimingModel};
use nanomap_bench::circuits::{c5315_gates, ex1};
use nanomap_netlist::PlaneSet;
use nanomap_pack::{extract_nets, pack, PackOptions, SliceNet, TemporalDesign};
use nanomap_place::{anneal, flatten_nets, AnnealSchedule, CostWeights};
use nanomap_route::{route_slice, RouteOptions};
use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
use nanomap_techmap::{expand, map_network, ExpandOptions, FlowMapOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FDS runtime scaling with circuit size (Section 4.5: O(n²)).
fn bench_fds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fds");
    group.sample_size(10);
    for width in [4u32, 8, 12] {
        let net = expand(&ex1(width), ExpandOptions::default()).expect("expands");
        let planes = PlaneSet::extract(&net).expect("extracts");
        let plane = planes.planes()[0].clone();
        let level = 2;
        let stages = plane.depth.div_ceil(level);
        let graph = ItemGraph::build(&net, &plane, level).expect("builds");
        group.bench_with_input(
            BenchmarkId::new("ex1_level2", net.num_luts()),
            &graph,
            |b, graph| {
                b.iter(|| {
                    schedule_fds(&net, graph, stages, FdsOptions::default()).expect("schedules")
                })
            },
        );
    }
    group.finish();
}

/// FlowMap on the c5315-class gate network.
fn bench_flowmap(c: &mut Criterion) {
    let gates = c5315_gates();
    let mut group = c.benchmark_group("flowmap");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("c5315_like", gates.num_gates()), |b| {
        b.iter(|| map_network(&gates, FlowMapOptions::default()).expect("maps"))
    });
    group.finish();
}

/// Simulated-annealing placement scaling (Section 4.5: O(n^4/3)).
fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for n in [16usize, 36, 64] {
        let side = (n as f64).sqrt() as u16;
        let grid = Grid::new(side, side);
        let nets: Vec<nanomap_place::FlatNet> = (0..n as u32 * 2)
            .map(|i| nanomap_place::FlatNet {
                pins: vec![i % n as u32, (i * 7 + 3) % n as u32],
                weight: 1.0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("anneal", n), &nets, |b, nets| {
            b.iter(|| {
                let mut pos: Vec<SmbPos> = (0..n).map(|i| grid.pos(i)).collect();
                let mut rng = StdRng::seed_from_u64(7);
                anneal(grid, nets, &mut pos, AnnealSchedule::fast(), &mut rng)
            })
        });
    }
    group.finish();
}

/// PathFinder routing one congested slice.
fn bench_routing(c: &mut Criterion) {
    let grid = Grid::new(6, 6);
    let graph = RrGraph::build(grid, &ChannelConfig::nature());
    let pos: Vec<SmbPos> = grid.iter().collect();
    let nets: Vec<SliceNet> = (0..48u32)
        .map(|i| SliceNet {
            driver: i % 36,
            sinks: vec![(i * 5 + 7) % 36, (i * 11 + 1) % 36],
            critical: false,
        })
        .map(|mut n| {
            n.sinks.retain(|&s| s != n.driver);
            n
        })
        .collect();
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    group.bench_function("pathfinder_6x6_48nets", |b| {
        b.iter(|| route_slice(&graph, &nets, &pos, RouteOptions::default()).expect("routes"))
    });
    group.finish();
}

/// Temporal clustering.
fn bench_packing(c: &mut Criterion) {
    let net = expand(&ex1(8), ExpandOptions::default()).expect("expands");
    let planes = PlaneSet::extract(&net).expect("extracts");
    let plane = planes.planes()[0].clone();
    let level = 2;
    let stages = plane.depth.div_ceil(level);
    let graph = ItemGraph::build(&net, &plane, level).expect("builds");
    let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("schedules");
    let arch = ArchParams::paper_unbounded();
    let mut group = c.benchmark_group("packing");
    group.sample_size(10);
    group.bench_function("ex1_8bit_level2", |b| {
        b.iter(|| {
            let design =
                TemporalDesign::new(&net, &planes, vec![graph.clone()], vec![schedule.clone()])
                    .expect("valid");
            let packing = pack(&design, &arch, PackOptions::default()).expect("packs");
            let nets = extract_nets(&design, &packing);
            flatten_nets(&nets, CostWeights::default()).len()
        })
    });
    group.finish();
}

/// The whole flow (logic mapping only, and with physical design), backing
/// the paper's "< 1 minute" CPU-time claim.
fn bench_full_flow(c: &mut Criterion) {
    let net = expand(&ex1(8), ExpandOptions::default()).expect("expands");
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    group.bench_function("ex1_8bit_logic_only", |b| {
        let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
        b.iter(|| {
            flow.map(&net, Objective::MinAreaDelayProduct)
                .expect("maps")
        })
    });
    group.bench_function("ex1_8bit_with_physical", |b| {
        let flow = NanoMap::new(ArchParams::paper_unbounded());
        b.iter(|| {
            flow.map(&net, Objective::MinAreaDelayProduct)
                .expect("maps")
        })
    });
    let _ = TimingModel::nature_100nm();
    group.finish();
}

criterion_group!(
    benches,
    bench_fds,
    bench_flowmap,
    bench_placement,
    bench_routing,
    bench_packing,
    bench_full_flow
);
criterion_main!(benches);
