//! Shared building blocks for the benchmark circuit generators.

use nanomap_netlist::rtl::{CombOp, RtlBuilder};
use nanomap_netlist::NodeId;

/// A single-ended signal: output port `port` of node `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sig {
    /// Driving node.
    pub node: NodeId,
    /// Output port index.
    pub port: u32,
}

impl Sig {
    /// Wraps port 0 of a node.
    pub fn new(node: NodeId) -> Self {
        Self { node, port: 0 }
    }
}

/// Connects `sig` to input `port` of `to`, panicking on impossible wiring
/// (generators construct well-typed circuits by design).
pub fn wire(b: &mut RtlBuilder, sig: Sig, to: NodeId, port: u32) {
    b.connect(sig.node, sig.port, to, port)
        .expect("generator wiring is width-correct");
}

/// A ripple-carry adder `a + b` (carry-in 0), returning the sum.
pub fn adder(b: &mut RtlBuilder, name: &str, a: Sig, rhs: Sig, width: u32) -> Sig {
    let gnd = b.constant(&format!("{name}_gnd"), 1, 0);
    let add = b.comb(name, CombOp::Add { width });
    wire(b, a, add, 0);
    wire(b, rhs, add, 1);
    wire(b, Sig::new(gnd), add, 2);
    Sig::new(add)
}

/// A subtractor `a - b`, returning the difference.
pub fn subtractor(b: &mut RtlBuilder, name: &str, a: Sig, rhs: Sig, width: u32) -> Sig {
    let sub = b.comb(name, CombOp::Sub { width });
    wire(b, a, sub, 0);
    wire(b, rhs, sub, 1);
    Sig::new(sub)
}

/// A parallel multiplier, returning the full double-width product.
pub fn multiplier(b: &mut RtlBuilder, name: &str, a: Sig, rhs: Sig, width: u32) -> Sig {
    let mul = b.comb(name, CombOp::Mul { width });
    wire(b, a, mul, 0);
    wire(b, rhs, mul, 1);
    Sig::new(mul)
}

/// A 2:1 mux `sel ? hi : lo`.
pub fn mux2(b: &mut RtlBuilder, name: &str, lo: Sig, hi: Sig, sel: Sig, width: u32) -> Sig {
    let mux = b.comb(name, CombOp::Mux2 { width });
    wire(b, lo, mux, 0);
    wire(b, hi, mux, 1);
    wire(b, sel, mux, 2);
    Sig::new(mux)
}

/// Extracts bits `lo .. lo + out_width` of a bus.
pub fn slice(b: &mut RtlBuilder, name: &str, a: Sig, width: u32, lo: u32, out_width: u32) -> Sig {
    let s = b.comb(
        name,
        CombOp::Slice {
            width,
            lo,
            out_width,
        },
    );
    wire(b, a, s, 0);
    Sig::new(s)
}

/// Zero-extends a bus to `out_width` bits.
pub fn zext(b: &mut RtlBuilder, name: &str, a: Sig, width: u32, out_width: u32) -> Sig {
    assert!(out_width >= width);
    if out_width == width {
        return a;
    }
    let zeros = b.constant(&format!("{name}_z"), out_width - width, 0);
    let cat = b.comb(
        name,
        CombOp::Concat {
            widths: vec![width, out_width - width],
        },
    );
    wire(b, a, cat, 0);
    wire(b, Sig::new(zeros), cat, 1);
    Sig::new(cat)
}

/// Multiplies by a small constant via shift-and-add over the set bits,
/// returning an `out_width`-bit product (a constant-coefficient
/// multiplier in the FIR-filter sense).
pub fn const_multiplier(
    b: &mut RtlBuilder,
    name: &str,
    a: Sig,
    width: u32,
    coefficient: u32,
    out_width: u32,
) -> Sig {
    let wide = zext(b, &format!("{name}_in"), a, width, out_width);
    let mut acc: Option<Sig> = None;
    for bit in 0..32 {
        if (coefficient >> bit) & 1 == 0 {
            continue;
        }
        let shifted = if bit == 0 {
            wide
        } else {
            let shl = b.comb(
                &format!("{name}_shl{bit}"),
                CombOp::Shl {
                    width: out_width,
                    amount: bit,
                },
            );
            wire(b, wide, shl, 0);
            Sig::new(shl)
        };
        acc = Some(match acc {
            None => shifted,
            Some(prev) => adder(b, &format!("{name}_add{bit}"), prev, shifted, out_width),
        });
    }
    acc.unwrap_or_else(|| Sig::new(b.constant(&format!("{name}_zero"), out_width, 0)))
}

/// Sums a list of equal-width signals with a balanced adder tree.
pub fn adder_tree(b: &mut RtlBuilder, name: &str, terms: &[Sig], width: u32) -> Sig {
    assert!(!terms.is_empty());
    let mut level: Vec<Sig> = terms.to_vec();
    let mut round = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for (i, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(adder(
                    b,
                    &format!("{name}_t{round}_{i}"),
                    pair[0],
                    pair[1],
                    width,
                ));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        round += 1;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::RtlSimulator;

    #[test]
    fn const_multiplier_matches_reference() {
        for coefficient in [0u32, 1, 2, 3, 5, 10, 21] {
            let mut b = RtlBuilder::new("cm");
            let a = b.input("a", 6);
            let y = b.output("y", 12);
            let prod = const_multiplier(&mut b, "cm0", Sig::new(a), 6, coefficient, 12);
            wire(&mut b, prod, y, 0);
            let circuit = b.finish().unwrap();
            let mut sim = RtlSimulator::new(&circuit).unwrap();
            for value in [0u64, 1, 7, 33, 63] {
                sim.set_input("a", value);
                sim.eval_comb();
                assert_eq!(
                    sim.output("y"),
                    Some((value * u64::from(coefficient)) & 0xFFF),
                    "coefficient {coefficient}, value {value}"
                );
            }
        }
    }

    #[test]
    fn adder_tree_sums() {
        let mut b = RtlBuilder::new("tree");
        let inputs: Vec<Sig> = (0..5)
            .map(|i| Sig::new(b.input(&format!("i{i}"), 8)))
            .collect();
        let sum = adder_tree(&mut b, "sum", &inputs, 8);
        let y = b.output("y", 8);
        wire(&mut b, sum, y, 0);
        let circuit = b.finish().unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        for (i, v) in [3u64, 9, 27, 81, 11].iter().enumerate() {
            sim.set_input(&format!("i{i}"), *v);
        }
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some((3 + 9 + 27 + 81 + 11) & 0xFF));
    }

    #[test]
    fn zext_pads_high_bits() {
        let mut b = RtlBuilder::new("z");
        let a = b.input("a", 3);
        let wide = zext(&mut b, "w", Sig::new(a), 3, 8);
        let y = b.output("y", 8);
        wire(&mut b, wide, y, 0);
        let circuit = b.finish().unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.set_input("a", 0b101);
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(0b101));
    }
}
