//! `ex2`: a three-plane pipelined controller-datapath (after the RTL
//! test-generation benchmark of Lingappan et al., reference \[19\]).
//!
//! Stage 1 conditions the operands, stage 2 multiplies and accumulates,
//! stage 3 post-processes; registers between the stages levelize into
//! three planes.

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::{CombOp, RtlCircuit};

use super::util::{adder, multiplier, mux2, slice, subtractor, wire, zext, Sig};

/// Datapath width.
pub const EX2_WIDTH: u32 = 10;

/// Builds the ex2 benchmark.
pub fn ex2() -> RtlCircuit {
    let w = EX2_WIDTH;
    let mut b = RtlBuilder::new("ex2");
    let a_in = Sig::new(b.input("a", w));
    let b_in = Sig::new(b.input("b", w));
    let mode = Sig::new(b.input("mode", 1));

    // ---- Plane 1: operand conditioning into the stage-1 registers. ----
    let sum1 = adder(&mut b, "pre_add", a_in, b_in, w);
    let dif1 = subtractor(&mut b, "pre_sub", a_in, b_in, w);
    let opa = mux2(&mut b, "opa_mux", sum1, dif1, mode, w);
    let opb = mux2(&mut b, "opb_mux", b_in, sum1, mode, w);
    let ra = b.register("ra", w);
    let rb = b.register("rb", w);
    let rmode = b.register("rmode", 1);
    // Carry a sideband of conditioned flags.
    let flags1 = b.comb("flags1", CombOp::Xor { width: w });
    wire(&mut b, sum1, flags1, 0);
    wire(&mut b, dif1, flags1, 1);
    let rflags = b.register("rflags", w);
    wire(&mut b, Sig::new(flags1), rflags, 0);
    let rflags2 = b.register("rflags2", w);
    wire(&mut b, dif1, rflags2, 0);
    wire(&mut b, opa, ra, 0);
    wire(&mut b, opb, rb, 0);
    wire(&mut b, mode, rmode, 0);

    // ---- Plane 2: multiply-accumulate into stage-2 registers. ----
    let prod = multiplier(&mut b, "mul", Sig::new(ra), Sig::new(rb), w);
    let flags_wide = zext(&mut b, "flags_w", Sig::new(rflags), w, 2 * w);
    let macc = adder(&mut b, "mac_add", prod, flags_wide, 2 * w);
    let rp = b.register("rp", 2 * w);
    wire(&mut b, macc, rp, 0);
    let rmode2 = b.register("rmode2", 1);
    wire(&mut b, Sig::new(rmode), rmode2, 0);
    let rsave = b.register("rsave", w);
    wire(&mut b, Sig::new(ra), rsave, 0);
    let rsave2 = b.register("rsave2", w);
    wire(&mut b, Sig::new(rb), rsave2, 0);
    let flags_mac = adder(&mut b, "flag_mac", Sig::new(rflags), Sig::new(rflags2), w);
    let rp2 = b.register("rp2", w);
    wire(&mut b, flags_mac, rp2, 0);

    // ---- Plane 3: post-processing into the output registers. ----
    let hi = slice(&mut b, "hi", Sig::new(rp), 2 * w, w, w);
    let lo = slice(&mut b, "lo", Sig::new(rp), 2 * w, 0, w);
    let post_sum = adder(&mut b, "post_add", hi, Sig::new(rsave), w);
    let post_dif = subtractor(&mut b, "post_sub", lo, Sig::new(rsave), w);
    let save_lo = slice(&mut b, "save_lo", Sig::new(rsave), w, 0, 8);
    let save2_lo = slice(&mut b, "save2_lo", Sig::new(rsave2), w, 0, 8);
    let aux_prod = multiplier(&mut b, "post_mul", save_lo, save2_lo, 8);
    let aux_prod_lo = slice(&mut b, "aux_prod_lo", aux_prod, 16, 0, w);
    let post_aux = adder(&mut b, "post_aux", aux_prod_lo, Sig::new(rp2), w);
    let raux = b.register("raux", w);
    wire(&mut b, post_aux, raux, 0);
    let raux2 = b.register("raux2", 7);
    let aux_lo = slice(&mut b, "aux_lo", post_aux, w, 0, 7);
    wire(&mut b, aux_lo, raux2, 0);
    let eq = b.comb("post_eq", CombOp::Eq { width: w });
    wire(&mut b, hi, eq, 0);
    wire(&mut b, lo, eq, 1);
    let picked = mux2(&mut b, "post_mux", post_sum, post_dif, Sig::new(rmode2), w);
    let ry = b.register("ry", w);
    let rz = b.register("rz", w);
    let req = b.register("req", 1);
    wire(&mut b, picked, ry, 0);
    wire(&mut b, post_dif, rz, 0);
    b.connect(eq, 0, req, 0).expect("1-bit wire");

    let y = b.output("y", w);
    wire(&mut b, Sig::new(ry), y, 0);
    let z = b.output("z", w);
    wire(&mut b, Sig::new(rz), z, 0);
    let q = b.output("q", 1);
    wire(&mut b, Sig::new(req), q, 0);
    let aux_out = b.output("aux", w);
    wire(&mut b, Sig::new(raux), aux_out, 0);
    let aux2_out = b.output("aux2", 7);
    wire(&mut b, Sig::new(raux2), aux2_out, 0);
    b.finish().expect("ex2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn ex2_matches_paper_parameters() {
        let net = expand(&ex2(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 3 planes, 694 LUTs, 130 flip-flops, depth 22.
        assert_eq!(planes.num_planes(), 3, "pipeline must levelize to 3 planes");
        assert_eq!(net.num_ffs(), 130, "calibrated to the paper's 130 FFs");
        assert!(
            (400..=900).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (15..=30).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }
}
