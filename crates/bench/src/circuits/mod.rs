//! The seven benchmark circuits of the paper's Table 1.
//!
//! Each generator targets the circuit-parameter columns of Table 1
//! (planes, max plane depth, LUTs, flip-flops); see `EXPERIMENTS.md` at
//! the repository root for the paper-vs-ours comparison. `c5315` is the
//! only gate-level circuit (mapped through FlowMap); the rest are RTL.

mod aspp4;
mod biquad;
mod c5315;
mod ex1;
mod ex2;
mod fir;
mod paulin;
pub mod util;

pub use aspp4::{aspp4, ASPP4_WIDTH};
pub use biquad::{biquad, BIQUAD_WIDTH};
pub use c5315::{c5315_gates, c5315_like, C5315_CHANNELS, C5315_WIDTH};
pub use ex1::ex1;
pub use ex2::{ex2, EX2_WIDTH};
pub use fir::{fir, FIR_COEFFS, FIR_TAPS, FIR_WIDTH};
pub use paulin::{paulin, PAULIN_WIDTH};

use nanomap_netlist::LutNetwork;
use nanomap_techmap::{expand, ExpandOptions};

/// Paper-reported circuit parameters (Table 1, columns 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperParams {
    /// `#Planes`.
    pub planes: u32,
    /// `Max plane depth`.
    pub depth: u32,
    /// `#LUTs`.
    pub luts: u32,
    /// `#Flip-flops`.
    pub ffs: u32,
}

/// A benchmark: name, mapped network, and the paper's reference numbers.
#[derive(Debug)]
pub struct Benchmark {
    /// Circuit name as it appears in the paper.
    pub name: &'static str,
    /// The mapped LUT network.
    pub network: LutNetwork,
    /// Paper Table 1 circuit parameters.
    pub paper: PaperParams,
    /// Paper Table 1 AT-optimization results:
    /// (no-fold LEs, no-fold delay, k∞ level, k∞ LEs, k∞ delay,
    ///  k16 level, k16 LEs, k16 delay).
    pub paper_at: PaperAt,
}

/// Paper Table 1 AT-product results for one circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAt {
    /// `#LEs` without folding.
    pub nofold_les: u32,
    /// Delay (ns) without folding.
    pub nofold_delay: f64,
    /// Folding level with unbounded k.
    pub kinf_level: u32,
    /// `#LEs` with unbounded k.
    pub kinf_les: u32,
    /// Delay (ns) with unbounded k.
    pub kinf_delay: f64,
    /// Folding level with k = 16.
    pub k16_level: u32,
    /// `#LEs` with k = 16.
    pub k16_les: u32,
    /// Delay (ns) with k = 16.
    pub k16_delay: f64,
}

/// Builds all seven benchmarks, mapped to 4-LUTs.
///
/// # Panics
///
/// Panics only if a generator is internally inconsistent.
pub fn paper_benchmarks() -> Vec<Benchmark> {
    let opts = ExpandOptions {
        lut_inputs: 4,
        ..ExpandOptions::default()
    };
    let rtl = |c: &nanomap_netlist::rtl::RtlCircuit| {
        expand(c, opts).expect("benchmark circuits expand cleanly")
    };
    vec![
        Benchmark {
            name: "ex1",
            network: rtl(&ex1(16)),
            paper: PaperParams {
                planes: 1,
                depth: 24,
                luts: 644,
                ffs: 50,
            },
            paper_at: PaperAt {
                nofold_les: 644,
                nofold_delay: 12.90,
                kinf_level: 1,
                kinf_les: 34,
                kinf_delay: 17.02,
                k16_level: 2,
                k16_les: 68,
                k16_delay: 15.60,
            },
        },
        Benchmark {
            name: "FIR",
            network: rtl(&fir()),
            paper: PaperParams {
                planes: 1,
                depth: 25,
                luts: 678,
                ffs: 112,
            },
            paper_at: PaperAt {
                nofold_les: 678,
                nofold_delay: 14.20,
                kinf_level: 1,
                kinf_les: 56,
                kinf_delay: 18.50,
                k16_level: 2,
                k16_les: 72,
                k16_delay: 16.90,
            },
        },
        Benchmark {
            name: "ex2",
            network: rtl(&ex2()),
            paper: PaperParams {
                planes: 3,
                depth: 22,
                luts: 694,
                ffs: 130,
            },
            paper_at: PaperAt {
                nofold_les: 694,
                nofold_delay: 38.76,
                kinf_level: 1,
                kinf_les: 67,
                kinf_delay: 48.84,
                k16_level: 2,
                k16_les: 88,
                k16_delay: 42.90,
            },
        },
        Benchmark {
            name: "c5315",
            network: c5315_like(),
            paper: PaperParams {
                planes: 1,
                depth: 14,
                luts: 792,
                ffs: 0,
            },
            paper_at: PaperAt {
                nofold_les: 792,
                nofold_delay: 7.86,
                kinf_level: 1,
                kinf_les: 144,
                kinf_delay: 10.36,
                k16_level: 1,
                k16_les: 144,
                k16_delay: 10.36,
            },
        },
        Benchmark {
            name: "Biquad",
            network: rtl(&biquad()),
            paper: PaperParams {
                planes: 1,
                depth: 22,
                luts: 1376,
                ffs: 64,
            },
            paper_at: PaperAt {
                nofold_les: 1376,
                nofold_delay: 12.34,
                kinf_level: 1,
                kinf_les: 68,
                kinf_delay: 16.28,
                k16_level: 2,
                k16_les: 136,
                k16_delay: 14.30,
            },
        },
        Benchmark {
            name: "Paulin",
            network: rtl(&paulin()),
            paper: PaperParams {
                planes: 2,
                depth: 24,
                luts: 1468,
                ffs: 147,
            },
            paper_at: PaperAt {
                nofold_les: 1468,
                nofold_delay: 26.74,
                kinf_level: 1,
                kinf_les: 106,
                kinf_delay: 35.52,
                k16_level: 2,
                k16_les: 136,
                k16_delay: 31.20,
            },
        },
        Benchmark {
            name: "ASPP4",
            network: rtl(&aspp4()),
            paper: PaperParams {
                planes: 2,
                depth: 24,
                luts: 2240,
                ffs: 160,
            },
            paper_at: PaperAt {
                nofold_les: 2240,
                nofold_delay: 26.80,
                kinf_level: 1,
                kinf_les: 100,
                kinf_delay: 36.96,
                k16_level: 2,
                k16_les: 200,
                k16_delay: 32.40,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for bench in paper_benchmarks() {
            bench.network.validate().unwrap_or_else(|e| {
                panic!("{} failed validation: {e}", bench.name);
            });
            let planes = PlaneSet::extract(&bench.network).unwrap();
            assert_eq!(
                planes.num_planes() as u32,
                bench.paper.planes,
                "{}: plane count",
                bench.name
            );
        }
    }
}
