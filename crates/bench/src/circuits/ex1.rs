//! `ex1`: the paper's Fig. 1 controller-datapath, parameterized by width.
//!
//! A four-LUT / two-state-bit controller steering a datapath of three
//! registers, a ripple-carry adder and a parallel multiplier, with status
//! feedback from the datapath into the controller (so the whole circuit
//! is a single plane). The paper evaluates the 4-bit variant in Section 3
//! and the 16-bit variant (`ex1`) in Table 1; at 16 bits the register
//! count matches the paper's 50 flip-flops exactly.

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::RtlCircuit;
use nanomap_netlist::TruthTable;

use super::util::{adder, multiplier, mux2, slice, wire, Sig};

/// Builds `ex1` at the given datapath width (the paper's Fig. 1 uses 4,
/// Table 1 uses 16).
pub fn ex1(width: u32) -> RtlCircuit {
    let w = width;
    let mut b = RtlBuilder::new(if w == 4 { "fig1" } else { "ex1" });
    let x = Sig::new(b.input("x", w));
    let reg1 = b.register("reg1", w);
    let reg2 = b.register("reg2", w);
    let reg3 = b.register("reg3", w);

    // Datapath: the adder and the multiplier operate in parallel on the
    // registers (Fig. 1(a): total logic depth is the multiplier's plus
    // the result mux).
    let sum = adder(&mut b, "add", Sig::new(reg1), Sig::new(reg2), w);
    let prod = multiplier(&mut b, "mul", Sig::new(reg1), Sig::new(reg3), w);
    let prod_lo = slice(&mut b, "mul_lo", prod, 2 * w, 0, w);

    // Controller: two state flip-flops, four LUTs, datapath status flag.
    let s0 = b.register("s0", 1);
    let s1 = b.register("s1", 1);
    let flag = slice(&mut b, "flag", Sig::new(reg3), w, w - 1, 1);
    let lut1 = b.lut("lut1", TruthTable::xor(2));
    wire(&mut b, Sig::new(s0), lut1, 0);
    wire(&mut b, Sig::new(s1), lut1, 1);
    let lut2 = b.lut("lut2", TruthTable::and(2));
    wire(&mut b, Sig::new(s0), lut2, 0);
    wire(&mut b, flag, lut2, 1);
    let lut3 = b.lut("lut3", TruthTable::or(2));
    wire(&mut b, Sig::new(s1), lut3, 0);
    wire(&mut b, flag, lut3, 1);
    let lut4 = b.lut("lut4", TruthTable::mux2());
    wire(&mut b, Sig::new(s0), lut4, 0);
    wire(&mut b, Sig::new(s1), lut4, 1);
    wire(&mut b, flag, lut4, 2);
    b.connect(lut1, 0, s0, 0).expect("1-bit wire");
    b.connect(lut2, 0, s1, 0).expect("1-bit wire");

    // Register updates steered by the controller.
    let m1 = mux2(&mut b, "mux1", x, prod_lo, Sig::new(lut1), w);
    wire(&mut b, m1, reg1, 0);
    let m2 = mux2(&mut b, "mux2", x, sum, Sig::new(lut3), w);
    wire(&mut b, m2, reg2, 0);
    let m3 = mux2(&mut b, "mux3", x, sum, Sig::new(lut4), w);
    wire(&mut b, m3, reg3, 0);

    let y = b.output("y", w);
    wire(&mut b, Sig::new(reg3), y, 0);
    b.finish().expect("ex1 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn ex1_16_matches_paper_parameters() {
        let circuit = ex1(16);
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 1 plane, 50 flip-flops.
        assert_eq!(planes.num_planes(), 1);
        assert_eq!(net.num_ffs(), 50);
        // Paper: 644 LUTs, depth 24; our multiplier is slightly larger
        // (see EXPERIMENTS.md).
        assert!((500..=1100).contains(&net.num_luts()), "{}", net.num_luts());
        assert!(
            (20..=36).contains(&planes.depth_max()),
            "{}",
            planes.depth_max()
        );
    }

    #[test]
    fn fig1_variant_matches_section3() {
        let circuit = ex1(4);
        let net = expand(&circuit, ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        assert_eq!(planes.num_planes(), 1);
        // Section 3: ~50 LUTs and 14 flip-flops at 4 bits.
        assert_eq!(net.num_ffs(), 14);
        assert!((40..=90).contains(&net.num_luts()));
    }
}
