//! `Paulin`: the classic differential-equation solver of Paulin and
//! Knight (the HLS benchmark the paper takes from reference \[19\]),
//! arranged as a two-plane pipeline.
//!
//! One Euler step of `y'' + 3xy' + 3y = 0`:
//! `x1 = x + dx; u1 = u - 3·x·u·dx - 3·y·dx; y1 = y + u·dx`.
//! Plane 1 loads/conditions the state, plane 2 computes the step into the
//! output registers (which drive the primary outputs directly).

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::RtlCircuit;

use super::util::{adder, const_multiplier, multiplier, mux2, slice, subtractor, wire, Sig};

/// State width.
pub const PAULIN_WIDTH: u32 = 10;

/// Builds the Paulin benchmark.
pub fn paulin() -> RtlCircuit {
    let w = PAULIN_WIDTH;
    let mut b = RtlBuilder::new("paulin");
    let x_in = Sig::new(b.input("x_in", w));
    let y_in = Sig::new(b.input("y_in", w));
    let u_in = Sig::new(b.input("u_in", w));
    let dx_in = Sig::new(b.input("dx_in", w));
    let load = Sig::new(b.input("load", 1));

    // ---- Plane 1: state registers with load/hold muxing (the hold path
    // is a self-loop, keeping all state registers at level 1). ----
    let rx = b.register("rx", w);
    let ry = b.register("ry", w);
    let ru = b.register("ru", w);
    let rdx = b.register("rdx", w);
    let rctl = b.register("rctl", 7);
    let ctl_in = Sig::new(b.input("ctl", 7));
    wire(&mut b, ctl_in, rctl, 0);
    let mx = mux2(&mut b, "mx", Sig::new(rx), x_in, load, w);
    let my = mux2(&mut b, "my", Sig::new(ry), y_in, load, w);
    let mu = mux2(&mut b, "mu", Sig::new(ru), u_in, load, w);
    let mdx = mux2(&mut b, "mdx", Sig::new(rdx), dx_in, load, w);
    wire(&mut b, mx, rx, 0);
    wire(&mut b, my, ry, 0);
    wire(&mut b, mu, ru, 0);
    wire(&mut b, mdx, rdx, 0);

    // ---- Plane 2: the Euler step. ----
    // t1 = x * u; t2 = t1 * dx (truncated); t3 = y * dx; u' = u - 3*t2 - 3*t3.
    let t1_full = multiplier(&mut b, "mul_xu", Sig::new(rx), Sig::new(ru), w);
    let t1 = slice(&mut b, "t1", t1_full, 2 * w, 0, w);
    let t2_full = multiplier(&mut b, "mul_t1dx", t1, Sig::new(rdx), w);
    let t2 = slice(&mut b, "t2", t2_full, 2 * w, 0, w);
    let t3_full = multiplier(&mut b, "mul_ydx", Sig::new(ry), Sig::new(rdx), w);
    let t3 = slice(&mut b, "t3", t3_full, 2 * w, 0, w);
    let t4_full = multiplier(&mut b, "mul_udx", Sig::new(ru), Sig::new(rdx), w);
    let t4 = slice(&mut b, "t4", t4_full, 2 * w, 0, w);
    let three_t2 = const_multiplier(&mut b, "c3_t2", t2, w, 3, w);
    let three_t3 = const_multiplier(&mut b, "c3_t3", t3, w, 3, w);
    let rx_lo = slice(&mut b, "rx_lo", Sig::new(rx), w, 0, 8);
    let ry_lo = slice(&mut b, "ry_lo", Sig::new(ry), w, 0, 8);
    let t5_full = multiplier(&mut b, "mul_xy", rx_lo, ry_lo, 8);
    let t5 = slice(&mut b, "t5", t5_full, 16, 0, w);
    let u_m1 = subtractor(&mut b, "u_m1", Sig::new(ru), three_t2, w);
    let u_next = subtractor(&mut b, "u_m2", u_m1, three_t3, w);
    let x_next = adder(&mut b, "x_step", Sig::new(rx), Sig::new(rdx), w);
    let y_next = adder(&mut b, "y_step", Sig::new(ry), t4, w);

    let ox = b.register("ox", w);
    let oy = b.register("oy", w);
    let ou = b.register("ou", w);
    let ot = b.register("ot", 2 * w);
    let os1 = b.register("os1", 2 * w);
    let os2 = b.register("os2", 2 * w);
    let ostat = b.register("ostat", w);
    wire(&mut b, x_next, ox, 0);
    wire(&mut b, y_next, oy, 0);
    wire(&mut b, u_next, ou, 0);
    wire(&mut b, t1_full, ot, 0);
    wire(&mut b, t2_full, os1, 0);
    wire(&mut b, t3_full, os2, 0);
    let stat_sum = adder(&mut b, "stat_sum", u_m1, t5, w);
    wire(&mut b, stat_sum, ostat, 0);

    for (name, reg) in [("x_out", ox), ("y_out", oy), ("u_out", ou)] {
        let o = b.output(name, w);
        wire(&mut b, Sig::new(reg), o, 0);
    }
    for (name, reg) in [("t_out", ot), ("s1_out", os1), ("s2_out", os2)] {
        let o = b.output(name, 2 * w);
        wire(&mut b, Sig::new(reg), o, 0);
    }
    let stat_out = b.output("stat_out", w);
    wire(&mut b, Sig::new(ostat), stat_out, 0);
    b.finish().expect("paulin is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn paulin_matches_paper_parameters() {
        let net = expand(&paulin(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 2 planes, 1468 LUTs, 147 flip-flops, depth 24.
        assert_eq!(planes.num_planes(), 2);
        assert_eq!(net.num_ffs(), 147, "calibrated to the paper's 147 FFs");
        assert!(
            (1100..=2000).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (18..=34).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }
}
