//! `Biquad`: a direct-form-I biquad IIR filter with general-coefficient
//! multipliers.
//!
//! `y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2`, with coefficients as
//! primary inputs (hence five full parallel multipliers — the paper's
//! Biquad is its LUT-heaviest single-plane benchmark). The delay
//! registers hold conditionally (overflow feedback from the output),
//! which keeps the filter one plane.

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::RtlCircuit;

use super::util::{adder, multiplier, mux2, slice, subtractor, wire, Sig};

/// Data/coefficient width.
pub const BIQUAD_WIDTH: u32 = 10;

/// Builds the Biquad benchmark.
pub fn biquad() -> RtlCircuit {
    let w = BIQUAD_WIDTH;
    let mut b = RtlBuilder::new("biquad");
    let x = Sig::new(b.input("x", w));
    let coeffs: Vec<Sig> = ["b0", "b1", "b2", "a1", "a2"]
        .iter()
        .map(|n| Sig::new(b.input(n, w)))
        .collect();

    let x1 = b.register("x1", w);
    let x2 = b.register("x2", w);
    let y1 = b.register("y1", w);
    let y2 = b.register("y2", w);
    let yout = b.register("yout", 2 * w);

    // Overflow feedback: the output's top bit gates the delay-line
    // updates (hold on overflow), folding everything into one plane.
    let ovf = slice(&mut b, "ovf", Sig::new(yout), 2 * w, 2 * w - 1, 1);

    // Five general products.
    let p0 = multiplier(&mut b, "m_b0", x, coeffs[0], w);
    let p1 = multiplier(&mut b, "m_b1", Sig::new(x1), coeffs[1], w);
    let p2 = multiplier(&mut b, "m_b2", Sig::new(x2), coeffs[2], w);
    let p3 = multiplier(&mut b, "m_a1", Sig::new(y1), coeffs[3], w);
    let p4 = multiplier(&mut b, "m_a2", Sig::new(y2), coeffs[4], w);

    // y = (p0 + p1 + p2) - (p3 + p4), at full 2w precision.
    let f1 = adder(&mut b, "acc1", p0, p1, 2 * w);
    let f2 = adder(&mut b, "acc2", f1, p2, 2 * w);
    let f3 = adder(&mut b, "acc3", p3, p4, 2 * w);
    let y_full = subtractor(&mut b, "acc4", f2, f3, 2 * w);
    wire(&mut b, y_full, yout, 0);

    // Delay-line updates with hold-on-overflow.
    let x1_next = mux2(&mut b, "x1_mux", x, Sig::new(x1), ovf, w);
    wire(&mut b, x1_next, x1, 0);
    let x2_next = mux2(&mut b, "x2_mux", Sig::new(x1), Sig::new(x2), ovf, w);
    wire(&mut b, x2_next, x2, 0);
    let y_trunc = slice(&mut b, "y_trunc", y_full, 2 * w, w, w);
    let y1_next = mux2(&mut b, "y1_mux", y_trunc, Sig::new(y1), ovf, w);
    wire(&mut b, y1_next, y1, 0);
    let rstat = b.register("rstat", 4);
    let stat_bits = slice(&mut b, "stat_bits", y_full, 2 * w, 2 * w - 4, 4);
    wire(&mut b, stat_bits, rstat, 0);
    let ovf2 = slice(&mut b, "ovf2", Sig::new(rstat), 4, 3, 1);
    let y2_next = mux2(&mut b, "y2_mux", Sig::new(y1), Sig::new(y2), ovf2, w);
    wire(&mut b, y2_next, y2, 0);

    let y = b.output("y", 2 * w);
    wire(&mut b, Sig::new(yout), y, 0);
    b.finish().expect("biquad is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn biquad_matches_paper_parameters() {
        let net = expand(&biquad(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 1 plane, 1376 LUTs, 64 flip-flops, depth 22.
        assert_eq!(planes.num_planes(), 1);
        assert_eq!(net.num_ffs(), 64);
        assert!(
            (1100..=1900).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (18..=34).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }
}
