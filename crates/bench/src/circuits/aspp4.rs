//! `ASPP4`: an application-specific programmable processor (after Ghosh,
//! Raghunathan, Jha — reference \[20\]), arranged as a two-plane
//! fetch/decode + execute pipeline.
//!
//! Plane 1 holds the architectural state (register file, instruction
//! register, program counter) and decodes operands; plane 2 executes a
//! multiply/ALU/shift/compare datapath into the writeback registers.

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::{CombOp, RtlCircuit};

use super::util::{adder, multiplier, mux2, slice, subtractor, wire, zext, Sig};

/// Datapath width.
pub const ASPP4_WIDTH: u32 = 12;

/// Builds the ASPP4 benchmark.
pub fn aspp4() -> RtlCircuit {
    let w = ASPP4_WIDTH;
    let mut b = RtlBuilder::new("aspp4");
    let instr_in = Sig::new(b.input("instr", 16));
    let data_in = Sig::new(b.input("data", w));

    // ---- Plane 1: architectural state + operand decode. ----
    // Register file of four general registers with write-back feedback.
    let wb = b.register("wb", w); // written by plane 2 logic? No - level-1 via feedback below.
    let regs: Vec<_> = (0..4).map(|i| b.register(&format!("gpr{i}"), w)).collect();
    let ir = b.register("ir", 16);
    let pc = b.register("pc", 8);

    // Decode fields.
    let op = slice(&mut b, "f_op", Sig::new(ir), 16, 12, 4);
    let rs = slice(&mut b, "f_rs", Sig::new(ir), 16, 10, 2);
    let rt = slice(&mut b, "f_rt", Sig::new(ir), 16, 8, 2);
    let imm = slice(&mut b, "f_imm", Sig::new(ir), 16, 0, 8);
    let _ = imm;

    // Operand selection: 4:1 muxes over the register file.
    let pick = |b: &mut RtlBuilder, name: &str, sel: Sig, regs: &[nanomap_netlist::NodeId]| {
        let mux = b.comb(name, CombOp::MuxN { width: w, n: 4 });
        for (i, &r) in regs.iter().enumerate() {
            wire(b, Sig::new(r), mux, i as u32);
        }
        wire(b, sel, mux, 4);
        Sig::new(mux)
    };
    let opa_raw = pick(&mut b, "opa_mux", rs, &regs);
    let opb_raw = pick(&mut b, "opb_mux", rt, &regs);
    // Register-file update: each GPR conditionally takes the writeback
    // value (op bit selects), closing the state feedback loop.
    for (i, &r) in regs.iter().enumerate() {
        let sel = slice(&mut b, &format!("wsel{i}"), op, 4, (i % 4) as u32, 1);
        let next = mux2(
            &mut b,
            &format!("gpr{i}_mux"),
            Sig::new(r),
            Sig::new(wb),
            sel,
            w,
        );
        wire(&mut b, next, r, 0);
    }
    // PC increments or loads from writeback.
    let one8 = Sig::new(b.constant("one8", 8, 1));
    let pc_inc = adder(&mut b, "pc_inc", Sig::new(pc), one8, 8);
    let wb_lo = slice(&mut b, "wb_lo", Sig::new(wb), w, 0, 8);
    let branch = slice(&mut b, "f_br", op, 4, 3, 1);
    let pc_next = mux2(&mut b, "pc_mux", pc_inc, wb_lo, branch, 8);
    wire(&mut b, pc_next, pc, 0);
    // Writeback register is loaded from data_in XOR current operand (keeps
    // wb in the level-1 feedback SCC).
    let wb_x = b.comb("wb_xor", CombOp::Xor { width: w });
    wire(&mut b, data_in, wb_x, 0);
    wire(&mut b, opa_raw, wb_x, 1);
    wire(&mut b, Sig::new(wb_x), wb, 0);
    // Instruction fetch: hold-or-load keyed off a writeback bit so the
    // instruction register participates in the level-1 state loop.
    let fetch_sel = slice(&mut b, "fetch_sel", Sig::new(wb), w, 0, 1);
    let ir_wide = zext(&mut b, "ir_hold", Sig::new(wb), w, 16);
    let ir_next = mux2(&mut b, "ir_mux", instr_in, ir_wide, fetch_sel, 16);
    wire(&mut b, ir_next, ir, 0);

    // ---- Plane 2: execute straight out of decode into the writeback
    // registers (a feed-forward second stage). ----
    let a = opa_raw;
    let bb = opb_raw;
    let prod = multiplier(&mut b, "ex_mul", a, bb, w);
    let prod2 = multiplier(&mut b, "ex_mac", bb, a, w); // dual MAC issue
                                                        // SIMD square unit (second issue slot).
    let prod3 = multiplier(&mut b, "ex_sq_a", a, a, w);
    let prod4 = multiplier(&mut b, "ex_sq_b", bb, bb, w);
    let sq_sum = adder(&mut b, "ex_sq_sum", prod3, prod4, 2 * w);
    let sum = adder(&mut b, "ex_add", a, bb, w);
    let dif = subtractor(&mut b, "ex_sub", a, bb, w);
    let andv = b.comb("ex_and", CombOp::And { width: w });
    wire(&mut b, a, andv, 0);
    wire(&mut b, bb, andv, 1);
    let xorv = b.comb("ex_xor", CombOp::Xor { width: w });
    wire(&mut b, a, xorv, 0);
    wire(&mut b, bb, xorv, 1);
    // Barrel shifter: four mux stages shifting by 1, 2, 4, 8.
    let mut shifted = a;
    for (stage, amount) in [1u32, 2, 4, 8].iter().enumerate() {
        let shl = b.comb(
            &format!("ex_shl{stage}"),
            CombOp::Shl {
                width: w,
                amount: *amount,
            },
        );
        wire(&mut b, shifted, shl, 0);
        let bit = slice(&mut b, &format!("shamt{stage}"), bb, w, stage as u32, 1);
        shifted = mux2(
            &mut b,
            &format!("ex_shmux{stage}"),
            shifted,
            Sig::new(shl),
            bit,
            w,
        );
    }
    let lt = b.comb("ex_lt", CombOp::Lt { width: w });
    wire(&mut b, a, lt, 0);
    wire(&mut b, bb, lt, 1);
    let eq = b.comb("ex_eq", CombOp::Eq { width: w });
    wire(&mut b, a, eq, 0);
    wire(&mut b, bb, eq, 1);

    // Result selection tree.
    let op_exec = op;
    let s0 = slice(&mut b, "os0", op_exec, 4, 0, 1);
    let s1 = slice(&mut b, "os1", op_exec, 4, 1, 1);
    let s2 = slice(&mut b, "os2", op_exec, 4, 2, 1);
    let alu1 = mux2(&mut b, "r_mux1", sum, dif, s0, w);
    let alu2 = mux2(&mut b, "r_mux2", Sig::new(andv), Sig::new(xorv), s0, w);
    let alu = mux2(&mut b, "r_mux3", alu1, alu2, s1, w);
    let result = mux2(&mut b, "r_mux4", alu, shifted, s2, w);

    // Writeback registers.
    let rres = b.register("rres", w);
    let rres2 = b.register("rres2", w);
    let rprod = b.register("rprod", 2 * w);
    let rmac = b.register("rmac", 2 * w);
    let rflag = b.register("rflag", 4);
    wire(&mut b, result, rres, 0);
    wire(&mut b, alu, rres2, 0);
    wire(&mut b, prod, rprod, 0);
    let mac_acc = adder(&mut b, "ex_mac_acc", prod2, sq_sum, 2 * w);
    wire(&mut b, mac_acc, rmac, 0);
    let flags = b.comb(
        "flags_cat",
        CombOp::Concat {
            widths: vec![1, 1, 1, 1],
        },
    );
    b.connect(lt, 0, flags, 0).expect("1-bit");
    b.connect(eq, 0, flags, 1).expect("1-bit");
    let r_hi = slice(&mut b, "res_hi", result, w, w - 1, 1);
    let p_hi = slice(&mut b, "prod_hi", prod, 2 * w, 2 * w - 1, 1);
    wire(&mut b, r_hi, flags, 2);
    wire(&mut b, p_hi, flags, 3);
    wire(&mut b, Sig::new(flags), rflag, 0);

    for (name, reg, width) in [
        ("res", rres, w),
        ("res2", rres2, w),
        ("prod", rprod, 2 * w),
        ("mac", rmac, 2 * w),
        ("flag", rflag, 4),
    ] {
        let o = b.output(name, width);
        wire(&mut b, Sig::new(reg), o, 0);
    }
    b.finish().expect("aspp4 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn aspp4_matches_paper_parameters() {
        let net = expand(&aspp4(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 2 planes, 2240 LUTs, 160 flip-flops, depth 24.
        assert_eq!(planes.num_planes(), 2);
        assert!(
            (120..=200).contains(&net.num_ffs()),
            "FFs {}",
            net.num_ffs()
        );
        assert!(
            (1700..=2800).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (18..=36).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }
}
