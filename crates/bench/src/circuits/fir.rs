//! `FIR`: a 13-tap constant-coefficient FIR filter with automatic gain
//! control.
//!
//! The delay line recirculates through an AGC mux controlled by the
//! output register's sign bit, which (as in the paper's benchmark) keeps
//! the whole filter a single plane: every register participates in one
//! feedback strongly-connected component. Coefficients are small
//! constants realized as shift-and-add multipliers.

use nanomap_netlist::rtl::RtlBuilder;
use nanomap_netlist::rtl::RtlCircuit;

use super::util::{adder_tree, const_multiplier, mux2, slice, wire, Sig};

/// Data width of the filter.
pub const FIR_WIDTH: u32 = 8;
/// Number of taps.
pub const FIR_TAPS: usize = 13;
/// Tap coefficients (mixed one- and two-bit weights).
pub const FIR_COEFFS: [u32; FIR_TAPS] = [1, 2, 7, 8, 13, 16, 20, 16, 13, 8, 7, 2, 1];

/// Accumulator width of the MAC tree.
const ACC_WIDTH: u32 = 14;

/// Builds the FIR benchmark.
pub fn fir() -> RtlCircuit {
    let w = FIR_WIDTH;
    let mut b = RtlBuilder::new("fir");
    let x = Sig::new(b.input("x", w));

    // Output register first so the AGC bit exists for the delay line.
    let out_reg = b.register("out", w);
    let agc = slice(&mut b, "agc", Sig::new(out_reg), w, w - 1, 1);

    // Delay line with AGC recirculation: tap0 <- agc ? tap12 : x, then
    // tap[i] <- tap[i-1].
    let mut taps = Vec::with_capacity(FIR_TAPS);
    for i in 0..FIR_TAPS {
        taps.push(b.register(&format!("tap{i}"), w));
    }
    let recirc = mux2(&mut b, "recirc", x, Sig::new(taps[FIR_TAPS - 1]), agc, w);
    wire(&mut b, recirc, taps[0], 0);
    for i in 1..FIR_TAPS {
        wire(&mut b, Sig::new(taps[i - 1]), taps[i], 0);
    }

    // MAC: constant multipliers and a balanced adder tree.
    let products: Vec<Sig> = FIR_COEFFS
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            const_multiplier(
                &mut b,
                &format!("cmul{i}"),
                Sig::new(taps[i]),
                w,
                c,
                ACC_WIDTH,
            )
        })
        .collect();
    let sum = adder_tree(&mut b, "mac", &products, ACC_WIDTH);
    let truncated = slice(&mut b, "trunc", sum, ACC_WIDTH, ACC_WIDTH - w, w);
    wire(&mut b, truncated, out_reg, 0);

    let y = b.output("y", w);
    wire(&mut b, Sig::new(out_reg), y, 0);
    b.finish().expect("fir is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    #[test]
    fn fir_matches_paper_parameters() {
        let net = expand(&fir(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 1 plane, 678 LUTs, 112 flip-flops, depth 25.
        assert_eq!(planes.num_planes(), 1, "AGC loop must fold the planes");
        assert_eq!(net.num_ffs(), 112);
        assert!(
            (450..=950).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (15..=32).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }
}
