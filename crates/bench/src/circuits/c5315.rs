//! `c5315`-class circuit: a gate-level 9-bit ALU.
//!
//! The original ISCAS'85 c5315 netlist (a 9-bit ALU with 178 inputs and
//! 2307 gates) is not redistributable here; this generator synthesizes a
//! gate-level ALU of the same class and calibrates it so the
//! FlowMap-mapped footprint matches the paper's Table 1 row: one plane,
//! ~792 4-LUTs, depth ~14, zero flip-flops. Only those aggregate
//! parameters influence NanoMap's decisions, so the flow exercises
//! identical code paths.

use nanomap_netlist::gate::{GateKind, GateNetwork, GateSignal};
use nanomap_netlist::LutNetwork;
use nanomap_techmap::{map_network, FlowMapOptions};

/// Number of replicated ALU channels (calibration knob).
pub const C5315_CHANNELS: usize = 9;
/// Operand width per channel.
pub const C5315_WIDTH: usize = 9;

/// Builds the gate-level network.
pub fn c5315_gates() -> GateNetwork {
    let mut net = GateNetwork::new("c5315_like");
    for ch in 0..C5315_CHANNELS {
        let a: Vec<GateSignal> = (0..C5315_WIDTH)
            .map(|i| net.add_input(format!("a{ch}_{i}")))
            .collect();
        let b: Vec<GateSignal> = (0..C5315_WIDTH)
            .map(|i| net.add_input(format!("b{ch}_{i}")))
            .collect();
        let m: Vec<GateSignal> = (0..2)
            .map(|i| net.add_input(format!("m{ch}_{i}")))
            .collect();
        let cin = net.add_input(format!("cin{ch}"));

        // Ripple-carry add/subtract unit (b conditionally inverted by m0).
        let mut carry = cin;
        let mut sum_bits = Vec::with_capacity(C5315_WIDTH);
        for i in 0..C5315_WIDTH {
            let bx = net.add_gate(GateKind::Xor, vec![b[i], m[0]]);
            let s = net.add_gate(GateKind::Xor, vec![a[i], bx, carry]);
            let c1 = net.add_gate(GateKind::And, vec![a[i], bx]);
            let c2 = net.add_gate(GateKind::And, vec![a[i], carry]);
            let c3 = net.add_gate(GateKind::And, vec![bx, carry]);
            carry = net.add_gate(GateKind::Or, vec![c1, c2, c3]);
            sum_bits.push(s);
        }

        // Logic unit: AND / OR / XOR / NOR of the operands.
        let logic: Vec<[GateSignal; 4]> = (0..C5315_WIDTH)
            .map(|i| {
                [
                    net.add_gate(GateKind::And, vec![a[i], b[i]]),
                    net.add_gate(GateKind::Or, vec![a[i], b[i]]),
                    net.add_gate(GateKind::Xor, vec![a[i], b[i]]),
                    net.add_gate(GateKind::Nor, vec![a[i], b[i]]),
                ]
            })
            .collect();

        // Function select: 4:1 gate-level mux per bit over
        // {sum, and, or, xor}, plus a nor-tap output.
        let not_m0 = net.add_gate(GateKind::Not, vec![m[0]]);
        let not_m1 = net.add_gate(GateKind::Not, vec![m[1]]);
        for i in 0..C5315_WIDTH {
            let t0 = net.add_gate(GateKind::And, vec![sum_bits[i], not_m0, not_m1]);
            let t1 = net.add_gate(GateKind::And, vec![logic[i][0], m[0], not_m1]);
            let t2 = net.add_gate(GateKind::And, vec![logic[i][1], not_m0, m[1]]);
            let t3 = net.add_gate(GateKind::And, vec![logic[i][2], m[0], m[1]]);
            let y = net.add_gate(GateKind::Or, vec![t0, t1, t2, t3]);
            net.add_output(format!("y{ch}_{i}"), y);
            net.add_output(format!("n{ch}_{i}"), logic[i][3]);
        }

        // Status: zero detect over the mux output? Use the sum bits plus
        // parity over the operands.
        let zero = net.add_gate(GateKind::Nor, sum_bits.clone());
        net.add_output(format!("z{ch}"), zero);
        let mut parity_in = a.clone();
        parity_in.extend(b.iter().copied());
        let parity = net.add_gate(GateKind::Xor, parity_in);
        net.add_output(format!("p{ch}"), parity);
        net.add_output(format!("cout{ch}"), carry);
    }
    net
}

/// Builds and FlowMaps the circuit to a LUT network.
///
/// # Panics
///
/// Panics only if the internal generator is inconsistent.
pub fn c5315_like() -> LutNetwork {
    let gates = c5315_gates();
    map_network(&gates, FlowMapOptions::default())
        .expect("generator emits a valid network")
        .network
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::PlaneSet;

    #[test]
    fn c5315_matches_paper_parameters() {
        let net = c5315_like();
        let planes = PlaneSet::extract(&net).unwrap();
        // Paper Table 1: 1 plane, 792 LUTs, depth 14, 0 flip-flops.
        assert_eq!(planes.num_planes(), 1);
        assert_eq!(net.num_ffs(), 0);
        assert!(
            (500..=1100).contains(&net.num_luts()),
            "LUTs {}",
            net.num_luts()
        );
        assert!(
            (8..=20).contains(&planes.depth_max()),
            "depth {}",
            planes.depth_max()
        );
    }

    #[test]
    fn gate_network_is_valid_and_combinational() {
        let gates = c5315_gates();
        gates.validate().unwrap();
        assert!(gates.num_gates() > 400);
    }
}
