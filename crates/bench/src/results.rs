//! Machine-readable companions to the `results/*.txt` artifacts.
//!
//! Every reproduction binary renders a plain-text table for humans and,
//! via [`write_results_json`], a JSON document with the same numbers for
//! tooling (plotting, regression diffing, the CI QoR gate). Documents are
//! emitted with the observe crate's serde-free emitter and carry a
//! `generator` tag naming the binary that produced them.

use std::path::{Path, PathBuf};

use nanomap_observe::JsonValue;

/// The repository's `results/` directory (resolved relative to this
/// crate, so it works from any working directory).
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Wraps `body` with the generator tag and writes it to
/// `results/<name>.json`, returning the path written.
///
/// # Panics
///
/// Panics when the file cannot be written — the reproduction binaries
/// treat their artifacts as mandatory output.
pub fn write_results_json(name: &str, body: JsonValue) -> PathBuf {
    let doc = JsonValue::object()
        .with("generator", name)
        .with("data", body);
    let path = results_dir().join(format!("{name}.json"));
    nanomap::atomic_write_text(&path, &doc.to_pretty_string()).unwrap_or_else(|e| panic!("{e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_in_repo() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn write_and_parse_round_trip() {
        let body = JsonValue::object().with("answer", 42u32);
        let path = write_results_json("test_artifact", body);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = nanomap_observe::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("generator").and_then(JsonValue::as_str),
            Some("test_artifact")
        );
        assert_eq!(
            parsed
                .get("data")
                .and_then(|d| d.get("answer"))
                .and_then(JsonValue::as_int),
            Some(42)
        );
        std::fs::remove_file(path).unwrap();
    }
}
