//! Benchmark circuits and reproduction harness for the NanoMap paper.
//!
//! * [`circuits`] — generators for the seven Table 1 benchmarks (ex1,
//!   FIR, ex2, c5315-class ALU, Biquad, Paulin, ASPP4);
//! * binaries (`table1`, `table2`, `interconnect`, `motivational`,
//!   `fds_example`, `tradeoff`, `ablation`) — regenerate every table,
//!   figure and claim of the paper's evaluation;
//! * Criterion benches — algorithm performance (FDS, FlowMap, placement,
//!   routing, full flow).

#![warn(missing_docs)]

pub mod circuits;
pub mod results;
pub mod table;
