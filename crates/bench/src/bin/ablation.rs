//! Ablation study of NanoMap's design choices (DESIGN.md §"Design choices
//! worth ablating"):
//!
//! 1. **FDS vs. ASAP vs. load-balancing list scheduling** — does force
//!    balancing reduce peak LE usage?
//! 2. **Storage-weight estimate** — the paper's `weight_i` vs. exact
//!    boundary outputs in the FDS distribution graphs.
//! 3. **Flip-flops per LE** — 1 vs. 2 (Section 5 argues registers become
//!    the bottleneck under deep folding).
//! 4. **Inter-folding-stage placement cost** — on vs. off (Fig. 6(b)).
//!
//! Run: `cargo run -p nanomap-bench --release --bin ablation`

use nanomap_arch::{ArchParams, ChannelConfig, TimingModel};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_netlist::PlaneSet;
use nanomap_observe::JsonValue;
use nanomap_pack::{extract_nets, pack, PackOptions, TemporalDesign};
use nanomap_place::{place, CostWeights, PlaceOptions};
use nanomap_sched::{
    schedule_asap, schedule_fds, schedule_list, FdsOptions, ItemGraph, LeShape, StorageWeightMode,
};

fn main() {
    let benches = paper_benchmarks();
    let level = 2u32;
    let mut json_schedulers = Vec::new();
    let mut json_ffs = Vec::new();
    let mut json_inter_stage = Vec::new();

    // ---- 1 & 2: scheduler and storage-mode comparison. ----
    println!("Ablation 1/2: peak LE usage per scheduler (level-{level} folding)\n");
    let mut rows = Vec::new();
    for bench in &benches {
        let net = &bench.network;
        let planes = PlaneSet::extract(net).expect("extracts");
        let shape = LeShape { luts: 1, ffs: 2 };
        let regs = net.num_ffs() as u32;
        let mut peaks = [0u32; 4]; // asap, list, fds(paper weights), fds(boundary)
        let mut ok = true;
        for plane in planes.planes() {
            let stages = planes.depth_max().div_ceil(level);
            let graph = match ItemGraph::build(net, plane, level) {
                Ok(g) => g,
                Err(_) => {
                    ok = false;
                    break;
                }
            };
            #[allow(unused_mut)]
            let mut eval = |schedule: Result<nanomap_sched::Schedule, _>, slot: usize| {
                if let Ok(s) = schedule {
                    let usage = s.le_usage_exact(net, &graph, regs, shape);
                    peaks[slot] = peaks[slot].max(usage.peak);
                } else {
                    ok = false;
                }
            };
            eval(schedule_asap(&graph, stages), 0);
            eval(schedule_list(&graph, stages), 1);
            eval(
                schedule_fds(
                    net,
                    &graph,
                    stages,
                    FdsOptions {
                        shape,
                        storage_mode: StorageWeightMode::ItemWeight,
                    },
                ),
                2,
            );
            eval(
                schedule_fds(
                    net,
                    &graph,
                    stages,
                    FdsOptions {
                        shape,
                        storage_mode: StorageWeightMode::BoundaryOutputs,
                    },
                ),
                3,
            );
        }
        if !ok {
            continue;
        }
        rows.push(vec![
            bench.name.to_string(),
            peaks[0].to_string(),
            peaks[1].to_string(),
            peaks[2].to_string(),
            peaks[3].to_string(),
            format!("{:.2}x", f64::from(peaks[0]) / f64::from(peaks[2])),
        ]);
        json_schedulers.push(
            JsonValue::object()
                .with("circuit", bench.name)
                .with("asap_peak_les", peaks[0])
                .with("list_peak_les", peaks[1])
                .with("fds_paper_peak_les", peaks[2])
                .with("fds_boundary_peak_les", peaks[3]),
        );
    }
    println!(
        "{}",
        render(
            &[
                "Circuit",
                "ASAP",
                "List",
                "FDS (paper)",
                "FDS (boundary)",
                "ASAP/FDS"
            ],
            &rows
        )
    );

    // ---- 3: flip-flops per LE. ----
    println!("\nAblation 3: peak LEs at level-1 folding, 1 vs 2 flip-flops per LE\n");
    let mut rows = Vec::new();
    for bench in &benches {
        let net = &bench.network;
        let planes = PlaneSet::extract(net).expect("extracts");
        let regs = net.num_ffs() as u32;
        let mut peaks = [0u32; 2];
        let mut ok = true;
        for plane in planes.planes() {
            let stages = planes.depth_max();
            let graph = match ItemGraph::build(net, plane, 1) {
                Ok(g) => g,
                Err(_) => {
                    ok = false;
                    break;
                }
            };
            for (slot, ffs) in [(0u32, 1u32), (1, 2)] {
                let shape = LeShape { luts: 1, ffs };
                match schedule_fds(
                    net,
                    &graph,
                    stages,
                    FdsOptions {
                        shape,
                        storage_mode: StorageWeightMode::ItemWeight,
                    },
                ) {
                    Ok(s) => {
                        let usage = s.le_usage_exact(net, &graph, regs, shape);
                        peaks[slot as usize] = peaks[slot as usize].max(usage.peak);
                    }
                    Err(_) => ok = false,
                }
            }
        }
        if !ok {
            continue;
        }
        rows.push(vec![
            bench.name.to_string(),
            peaks[0].to_string(),
            peaks[1].to_string(),
            format!("{:.2}x", f64::from(peaks[0]) / f64::from(peaks[1].max(1))),
        ]);
        json_ffs.push(
            JsonValue::object()
                .with("circuit", bench.name)
                .with("one_ff_peak_les", peaks[0])
                .with("two_ff_peak_les", peaks[1]),
        );
    }
    println!(
        "{}",
        render(&["Circuit", "1 FF/LE", "2 FF/LE", "reduction"], &rows)
    );
    println!("Section 5: the second flip-flop more than pays for its 1.5x SMB area.");

    // ---- 4: inter-folding-stage placement cost (Fig. 6(b)). ----
    println!("\nAblation 4: placement wirelength with/without the inter-stage cost");
    println!("(level-2 folding; cost = total weighted HPWL over all cycles)\n");
    let mut rows = Vec::new();
    for bench in benches.iter().take(3) {
        let net = &bench.network;
        let planes = PlaneSet::extract(net).expect("extracts");
        let arch = ArchParams::paper_unbounded();
        let stages = planes.depth_max().div_ceil(level);
        let mut graphs = Vec::new();
        let mut schedules = Vec::new();
        let mut ok = true;
        for plane in planes.planes() {
            match ItemGraph::build(net, plane, level)
                .and_then(|g| schedule_fds(net, &g, stages, FdsOptions::default()).map(|s| (g, s)))
            {
                Ok((g, s)) => {
                    graphs.push(g);
                    schedules.push(s);
                }
                Err(_) => ok = false,
            }
        }
        if !ok {
            continue;
        }
        let design = TemporalDesign::new(net, &planes, graphs, schedules).expect("valid");
        let packing = pack(&design, &arch, PackOptions::default()).expect("packs");
        let nets = extract_nets(&design, &packing);
        let channels = ChannelConfig::nature();
        let timing = TimingModel::nature_100nm();
        let run = |inter_stage: f64| {
            let options = PlaceOptions {
                weights: CostWeights {
                    inter_stage,
                    ..CostWeights::default()
                },
                ..PlaceOptions::default()
            };
            let placement =
                place(&design, &packing, &nets, &channels, &timing, options).expect("places");
            // Evaluate the TRUE joint cost regardless of what was optimized.
            let full = nanomap_place::flatten_nets(&nets, CostWeights::default());
            nanomap_place::total_cost(&full, &placement.pos_of)
        };
        let with = run(1.0);
        let without = run(0.0);
        rows.push(vec![
            bench.name.to_string(),
            format!("{with:.0}"),
            format!("{without:.0}"),
            format!("{:.1}%", 100.0 * (without - with) / without.max(1.0)),
        ]);
        json_inter_stage.push(
            JsonValue::object()
                .with("circuit", bench.name)
                .with("joint_cost_on", with)
                .with("joint_cost_off", without),
        );
    }
    println!(
        "{}",
        render(
            &[
                "Circuit",
                "joint cost (on)",
                "joint cost (off)",
                "improvement"
            ],
            &rows
        )
    );

    let body = JsonValue::object()
        .with("folding_level", level)
        .with("schedulers", JsonValue::Array(json_schedulers))
        .with("ffs_per_le", JsonValue::Array(json_ffs))
        .with("inter_stage_cost", JsonValue::Array(json_inter_stage));
    write_results_json("ablation", body);
    println!("\njson: -> results/ablation.json");
}
