//! QoR snapshot generator: runs the full physical flow (AT-product
//! optimization, k = 16) over every paper benchmark and emits one
//! `nanomap-qor-v1` document for the regression gate.
//!
//! Run: `cargo run -p nanomap-bench --release --bin qor -- [--out PATH]`
//!
//! Compare against the committed baseline with
//! `nanomap qor-diff results/qor/bench.json <PATH>` (see `scripts/qor.sh`).

use nanomap::qor::{QorDocument, QorReport};
use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;

fn main() {
    let mut out = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out = iter.next(),
            other => {
                eprintln!("usage: qor [--out PATH]  (unexpected `{other}`)");
                std::process::exit(2);
            }
        }
    }

    let flow = NanoMap::new(ArchParams::paper());
    let mut reports = Vec::new();
    for bench in paper_benchmarks() {
        // Each circuit gets its own collector epoch so series and spans
        // don't bleed across benchmarks.
        nanomap_observe::reset();
        nanomap_observe::set_enabled(true);
        let report = flow
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let snapshot = nanomap_observe::snapshot();
        let mut qor = QorReport::from_mapping(&report, &flow.channels, &snapshot);
        // Key by the paper's circuit name, not the generator's netlist name.
        qor.circuit = bench.name.to_string();
        eprintln!(
            "{}: {} LEs, {} SMBs, {:.2} ns routed",
            bench.name,
            report.num_les,
            report.physical.as_ref().map_or(0, |p| p.num_smbs),
            report
                .physical
                .as_ref()
                .map_or(f64::NAN, |p| p.routed_delay_ns),
        );
        reports.push(qor);
    }
    let text = QorDocument::new(reports).to_json().to_pretty_string();
    match out {
        Some(path) => {
            std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("qor document -> {path}");
        }
        None => println!("{text}"),
    }
}
