//! QoR snapshot generator: runs the full physical flow (AT-product
//! optimization, k = 16) over every paper benchmark and emits one
//! `nanomap-qor-v1` document for the regression gate.
//!
//! Run: `cargo run -p nanomap-bench --release --bin qor -- [--out PATH]
//! [--explain-dir DIR] [--ledger PATH]`
//!
//! With `--explain-dir`, one `nanomap-explain-v1` attribution artifact
//! per benchmark lands in DIR as `<circuit>.explain.json`, next to the
//! QoR numbers it explains. With `--ledger`, every benchmark mapping
//! appends a flight-recorder line to the cross-run ledger at PATH
//! (query with `nanomap runs`).
//!
//! Compare against the committed baseline with
//! `nanomap qor-diff results/qor/bench.json <PATH>` (see `scripts/qor.sh`).

use nanomap::qor::{QorDocument, QorReport};
use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;

fn main() {
    let mut out = None;
    let mut explain_dir: Option<String> = None;
    let mut ledger: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out = iter.next(),
            "--explain-dir" => explain_dir = iter.next(),
            "--ledger" => ledger = iter.next(),
            other => {
                eprintln!(
                    "usage: qor [--out PATH] [--explain-dir DIR] [--ledger PATH]  (unexpected `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &explain_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    }

    let mut flow = NanoMap::new(ArchParams::paper());
    if explain_dir.is_some() {
        flow = flow.with_explain();
    }
    let mut reports = Vec::new();
    for bench in paper_benchmarks() {
        // Each circuit gets its own collector epoch so series and spans
        // don't bleed across benchmarks.
        nanomap_observe::reset();
        nanomap_observe::set_enabled(true);
        let report = flow
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        if let (Some(dir), Some(explain)) = (&explain_dir, &report.explain) {
            explain
                .validate()
                .unwrap_or_else(|e| panic!("{}: explain invariant violated: {e}", bench.name));
            let path = format!("{dir}/{}.explain.json", bench.name);
            nanomap::atomic_write_text(
                std::path::Path::new(&path),
                &explain.to_json().to_pretty_string(),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
        let snapshot = nanomap_observe::snapshot();
        let mut qor = QorReport::from_mapping(&report, &flow.channels, &snapshot);
        // Key by the paper's circuit name, not the generator's netlist name.
        qor.circuit = bench.name.to_string();
        if let Some(path) = &ledger {
            let run_id = flow.run_id(&bench.network, Objective::MinAreaDelayProduct);
            let mut record = nanomap::RunRecord::from_report(&report, run_id, 0);
            record.circuit = bench.name.to_string();
            record.objective = Objective::MinAreaDelayProduct.key();
            record.place_seed = flow.place_options.seed;
            record.route_seed = flow.route_options.seed;
            nanomap::append_run(std::path::Path::new(path), &record)
                .unwrap_or_else(|e| panic!("{}: ledger: {e}", bench.name));
        }
        eprintln!(
            "{}: {} LEs, {} SMBs, {:.2} ns routed",
            bench.name,
            report.num_les,
            report.physical.as_ref().map_or(0, |p| p.num_smbs),
            report
                .physical
                .as_ref()
                .map_or(f64::NAN, |p| p.routed_delay_ns),
        );
        reports.push(qor);
    }
    let text = QorDocument::new(reports).to_json().to_pretty_string();
    match out {
        Some(path) => {
            nanomap::atomic_write_text(std::path::Path::new(&path), &text)
                .unwrap_or_else(|e| panic!("{e}"));
            eprintln!("qor document -> {path}");
        }
        None => println!("{text}"),
    }
}
