//! Reproduces the **motivational example of Section 3 / Fig. 1**: the
//! 4-bit controller-datapath mapped under a 32-LE area constraint with
//! delay minimization, showing the folding-level iteration and the
//! per-folding-cycle LE usage (the paper reports 12 / 32 / 12 LEs over
//! three cycles at level-4 folding).
//!
//! Run: `cargo run -p nanomap-bench --release --bin motivational`

use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::ex1;
use nanomap_netlist::PlaneSet;
use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph, LeShape};
use nanomap_techmap::{expand, ExpandOptions};

fn main() {
    let circuit = ex1(4);
    let net = expand(&circuit, ExpandOptions::default()).expect("expands");
    let planes = PlaneSet::extract(&net).expect("extracts");
    println!("Motivational example (Fig. 1, 4-bit controller-datapath)");
    println!(
        "planes={} total LUTs={} flip-flops={} max depth={}",
        planes.num_planes(),
        net.num_luts(),
        net.num_ffs(),
        planes.depth_max()
    );
    println!("(paper: 1 plane, 50 LUTs, 14 flip-flops, depth 9)\n");

    // The paper's iteration: area constraint 32 LEs, minimize delay.
    let constraint = 32;
    println!("-- folding-level iteration under a {constraint}-LE constraint --");
    let init_stages = nanomap::min_folding_stages(net.num_luts(), constraint);
    let init_level = nanomap::folding_level_for_stages(planes.depth_max(), init_stages);
    println!(
        "Eq. (1): #folding_stages = ceil({} / {constraint}) = {init_stages}",
        net.num_luts()
    );
    println!(
        "Eq. (2): folding_level = ceil({} / {init_stages}) = {init_level}",
        planes.depth_max()
    );

    let plane = &planes.planes()[0];
    let shape = LeShape { luts: 1, ffs: 2 };
    for level in (1..=init_level).rev() {
        let stages = plane.depth.div_ceil(level);
        let graph = ItemGraph::build(&net, plane, level).expect("items build");
        let schedule = match schedule_fds(&net, &graph, stages, FdsOptions::default()) {
            Ok(s) => s,
            Err(e) => {
                println!("level {level}: {e}");
                continue;
            }
        };
        let usage = schedule.le_usage_exact(&net, &graph, net.num_ffs() as u32, shape);
        let verdict = if usage.peak <= constraint {
            "FITS"
        } else {
            "exceeds"
        };
        println!(
            "level {level}: {stages} folding cycles, LEs per cycle {:?} (peak {}) -> {verdict}",
            usage.per_stage, usage.peak
        );
        if usage.peak <= constraint {
            break;
        }
    }

    // The integrated flow's answer.
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    match flow.map(
        &net,
        Objective::MinDelay {
            max_les: Some(constraint),
        },
    ) {
        Ok(report) => {
            println!(
                "\nNanoMap selects level {:?} / {} stages: {} LEs, {:.2} ns",
                report.folding_level, report.stages, report.num_les, report.delay_ns
            );
            println!("(paper: level 4, 3 folding cycles of 12 / 32 / 12 LEs -> 32 LEs)");
        }
        Err(e) => println!("\nflow failed: {e}"),
    }
}
