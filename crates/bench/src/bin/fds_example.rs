//! Reproduces **Figs. 3–5**: the ASAP/ALAP schedules, storage lifetimes
//! and distribution graphs of the force-directed-scheduling example.
//!
//! The item graph mirrors the paper's figure: four single LUTs and three
//! LUT clusters over three folding cycles, with LUT2's storage
//! transferring a value to LUT3 and LUT4 (Fig. 4's storage `S`).
//!
//! Run: `cargo run -p nanomap-bench --release --bin fds_example`

use nanomap_netlist::{LutId, LutNetwork};
use nanomap_sched::{
    schedule_fds, storage_ops, DistributionGraphs, FdsOptions, Item, ItemEdge, ItemGraph, ItemKind,
    StorageOp, StorageWeightMode, TimeFrames,
};

fn example_graph() -> ItemGraph {
    let mk = |i: usize, w: u32, name: &str| Item {
        kind: ItemKind::Lut(LutId::new(i)),
        luts: vec![LutId::new(i)],
        weight: w,
        window: 1,
        name: name.into(),
    };
    // 0..=3: LUT1..LUT4; 4..=6: clus1..clus3.
    let items = vec![
        mk(0, 1, "LUT1"),
        mk(1, 1, "LUT2"),
        mk(2, 1, "LUT3"),
        mk(3, 1, "LUT4"),
        mk(4, 12, "clus1"),
        mk(5, 12, "clus2"),
        mk(6, 12, "clus3"),
    ];
    let edges = vec![
        ItemEdge {
            from: 4,
            to: 5,
            latency: 1,
        },
        ItemEdge {
            from: 5,
            to: 6,
            latency: 1,
        },
        ItemEdge {
            from: 0,
            to: 2,
            latency: 1,
        },
        ItemEdge {
            from: 1,
            to: 2,
            latency: 1,
        },
        ItemEdge {
            from: 1,
            to: 3,
            latency: 1,
        },
    ];
    let mut succs = vec![Vec::new(); items.len()];
    let mut preds = vec![Vec::new(); items.len()];
    for e in &edges {
        succs[e.from].push((e.to, e.latency));
        preds[e.to].push((e.from, e.latency));
    }
    ItemGraph {
        items,
        edges,
        succs,
        preds,
        item_of_lut: Default::default(),
        folding_level: 1,
    }
}

fn main() {
    let graph = example_graph();
    let stages = 3;
    let frames =
        TimeFrames::compute(&graph, stages, &vec![None; graph.len()]).expect("example is feasible");

    println!("Fig. 3: ASAP/ALAP time frames (folding cycles are 1-based)");
    for (i, item) in graph.items.iter().enumerate() {
        let (a, b) = frames.frame(i);
        println!(
            "  {:<6} weight {:>2}: time frame [{}, {}]  (mobility {})",
            item.name,
            item.weight,
            a + 1,
            b + 1,
            frames.mobility(i)
        );
    }

    // Fig. 4: the storage lifetimes of S = LUT2 -> {LUT3, LUT4}.
    let op = StorageOp {
        src: 1,
        dests: vec![2, 3],
        weight: 1,
    };
    let (s_asap, s_alap) = frames.frame(1);
    let d_asap = frames.frame(2).0.max(frames.frame(3).0);
    let d_alap = frames.frame(2).1.max(frames.frame(3).1);
    println!("\nFig. 4: storage S (LUT2 -> LUT3, LUT4)");
    println!(
        "  ASAP life [{}, {}], ALAP life [{}, {}], max life [{}, {}]",
        s_asap + 1,
        d_asap + 1,
        s_alap + 1,
        d_alap + 1,
        s_asap + 1,
        d_alap + 1
    );

    println!("\nFig. 5: distribution graphs");
    let net = LutNetwork::new("example");
    let ops = storage_ops(&net, &graph, StorageWeightMode::ItemWeight);
    let dgs = DistributionGraphs::build(&graph, &frames, &ops);
    let bar = |v: f64| "#".repeat((v * 2.0).round() as usize);
    for j in 0..stages as usize {
        println!(
            "  cycle {}: LUT_DG = {:>6.3} {}",
            j + 1,
            dgs.lut[j],
            bar(dgs.lut[j] / 4.0)
        );
    }
    for j in 0..stages as usize {
        println!(
            "  cycle {}: storage_DG = {:>6.3} {}",
            j + 1,
            dgs.storage[j],
            bar(dgs.storage[j])
        );
    }
    let s_dist = DistributionGraphs::storage_distribution_of(&graph, &frames, &op, None);
    println!("  storage S distribution per cycle: {s_dist:.3?}");

    println!("\nAlgorithm 1: force-directed schedule");
    let schedule =
        schedule_fds(&net, &graph, stages, FdsOptions::default()).expect("example schedules");
    for (i, item) in graph.items.iter().enumerate() {
        println!(
            "  {:<6} -> folding cycle {}",
            item.name,
            schedule.stage_of[i] + 1
        );
    }
    let counts = schedule.lut_counts(&graph);
    println!(
        "  LUT weight per cycle: {counts:?} (balanced peak {})",
        counts.iter().max().expect("non-empty")
    );
}
