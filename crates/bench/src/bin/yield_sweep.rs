//! Fault-injection **yield sweep**: maps every paper benchmark across a
//! range of uniform fabric-defect rates and reports, per (circuit, rate),
//! whether the mapping succeeded, how hard the recovery ladder had to
//! work (failed attempts, rung escalations, candidate fallbacks, the
//! winning remedy) and the QoR price paid relative to the defect-free
//! run. The exact SAT rung is enabled, so every outcome is attributed:
//! mapped by a heuristic rung, rescued by `exact-assign`, *proven*
//! unmappable (typed UNSAT), or failed otherwise. The aggregate
//! per-rate yield — fraction of benchmarks that still map — lands in
//! `results/yield.json` alongside the per-run detail.
//!
//! Run: `cargo run -p nanomap-bench --release --bin yield`
//!      `[-- --rates 0,0.05,0.1,0.2,0.3] [--seed 1] [--circuit NAME]`
//!      `[--no-exact] [--sat-conflicts N]`
//!
//! Each SAT solve is bounded by a conflict budget (default 200k,
//! `--sat-conflicts`, 0 = unbounded) so the sweep's wall time stays
//! finite even on adversarial near-pigeonhole instances; an interrupted
//! solve records a plain failure, never a fake UNSAT.

use nanomap::{MappingReport, NanoMap, Objective};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_observe::JsonValue;

const DEFAULT_RATES: [f64; 8] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// Default per-solve SAT conflict budget. The sweep is a harness, not a
/// prover of last resort: a hard near-pigeonhole instance must cost
/// seconds, not hours. Interrupted solves count as plain failures — an
/// UNSAT row is still only ever a *completed* proof.
const DEFAULT_SAT_CONFLICTS: u64 = 200_000;

struct Cli {
    rates: Vec<f64>,
    seed: u64,
    circuit: Option<String>,
    exact: bool,
    sat_conflicts: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        rates: DEFAULT_RATES.to_vec(),
        seed: 1,
        circuit: None,
        exact: true,
        sat_conflicts: DEFAULT_SAT_CONFLICTS,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--rates" => {
                cli.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if cli.rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
                    return Err("--rates: every rate must be in 0..1".into());
                }
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--circuit" => cli.circuit = Some(value("--circuit")?),
            "--no-exact" => cli.exact = false,
            "--sat-conflicts" => {
                cli.sat_conflicts = value("--sat-conflicts")?
                    .parse()
                    .map_err(|e| format!("--sat-conflicts: {e}"))?
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cli)
}

/// One benchmark mapped at one defect rate.
fn map_at_rate(
    network: &nanomap_netlist::LutNetwork,
    rate: f64,
    seed: u64,
    exact: bool,
    sat_conflicts: u64,
) -> MappingResult {
    let mut flow = NanoMap::new(ArchParams::paper());
    if rate > 0.0 {
        flow = flow.with_defects(DefectMap::uniform(rate, seed));
    }
    if exact {
        flow = flow.with_exact_recovery();
        if sat_conflicts > 0 {
            flow = flow.with_sat_conflict_budget(sat_conflicts);
        }
    }
    match flow.map(network, Objective::MinAreaDelayProduct) {
        Ok(report) => MappingResult::Mapped(Box::new(report)),
        Err(e) => {
            let attempts = e.recovery_log().map_or(0, |l| l.total_attempts());
            MappingResult::Failed {
                attempts,
                unsat: matches!(e, nanomap::FlowError::ExactAssignUnsat { .. }),
                error: e.to_string(),
            }
        }
    }
}

enum MappingResult {
    Mapped(Box<MappingReport>),
    Failed {
        attempts: u32,
        /// The exact rung *proved* the fabric unmappable.
        unsat: bool,
        error: String,
    },
}

/// Per-rate outcome attribution.
#[derive(Default)]
struct RateTally {
    /// Mapped via a heuristic ladder rung (or no recovery at all).
    heuristic: u32,
    /// Rescued by the exact SAT rung after every heuristic rung failed.
    exact: u32,
    /// Proven infeasible (typed UNSAT).
    unsat: u32,
    /// Benchmarks attempted.
    total: u32,
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: yield [--rates 0,0.02,0.05,0.1] [--seed N] [--circuit NAME] \
                 [--no-exact] [--sat-conflicts N]"
            );
            std::process::exit(1);
        }
    };
    let benches: Vec<_> = paper_benchmarks()
        .into_iter()
        .filter(|b| cli.circuit.as_deref().is_none_or(|c| c == b.name))
        .collect();
    if benches.is_empty() {
        eprintln!("error: no benchmark matches --circuit");
        std::process::exit(1);
    }

    println!(
        "Yield sweep: {} benchmark(s) x defect rates {:?} (seed {})\n",
        benches.len(),
        cli.rates,
        cli.seed
    );

    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    // Outcome attribution per rate, in rate order.
    let mut per_rate: Vec<RateTally> = cli.rates.iter().map(|_| RateTally::default()).collect();

    for bench in &benches {
        // The defect-free run anchors the QoR deltas.
        let clean = match map_at_rate(&bench.network, 0.0, cli.seed, cli.exact, cli.sat_conflicts) {
            MappingResult::Mapped(r) => r,
            MappingResult::Failed { error, .. } => {
                panic!(
                    "{name} fails on a defect-free fabric: {error}",
                    name = bench.name
                )
            }
        };
        let clean_delay = clean.physical.as_ref().map_or(0.0, |p| p.routed_delay_ns);
        for (slot, &rate) in cli.rates.iter().enumerate() {
            per_rate[slot].total += 1;
            let result = map_at_rate(&bench.network, rate, cli.seed, cli.exact, cli.sat_conflicts);
            // Live progress on stderr: stdout is the (buffered) report.
            eprintln!(
                "  {} @ {:>4.1}%: {}",
                bench.name,
                rate * 100.0,
                match &result {
                    MappingResult::Mapped(r)
                        if r.recovery.succeeded_with == Some(nanomap::Remedy::ExactAssign) =>
                        "rescued by exact-assign",
                    MappingResult::Mapped(_) => "ok",
                    MappingResult::Failed { unsat: true, .. } => "proven UNSAT",
                    MappingResult::Failed { .. } => "failed",
                }
            );
            let mut json = JsonValue::object()
                .with("circuit", bench.name)
                .with("rate", rate)
                .with("seed", cli.seed);
            match result {
                MappingResult::Mapped(r) => {
                    if r.recovery.succeeded_with == Some(nanomap::Remedy::ExactAssign) {
                        per_rate[slot].exact += 1;
                    } else {
                        per_rate[slot].heuristic += 1;
                    }
                    let delay = r.physical.as_ref().map_or(0.0, |p| p.routed_delay_ns);
                    let delay_overhead = if clean_delay > 0.0 {
                        delay / clean_delay - 1.0
                    } else {
                        0.0
                    };
                    let les_overhead = f64::from(r.num_les) / f64::from(clean.num_les.max(1)) - 1.0;
                    let remedy = r.recovery.succeeded_with.map_or("baseline", |m| m.as_str());
                    json = json
                        .with("success", true)
                        .with("attempts", r.recovery.total_attempts())
                        .with("escalations", r.recovery.escalations)
                        .with("candidate_fallbacks", r.recovery.candidate_fallbacks)
                        .with("succeeded_with", remedy)
                        .with("recovery_ms", r.recovery.wall_ms())
                        .with("num_les", r.num_les)
                        .with("routed_delay_ns", delay)
                        .with("delay_overhead", delay_overhead)
                        .with("les_overhead", les_overhead);
                    rows.push(vec![
                        bench.name.to_string(),
                        format!("{:.0}%", rate * 100.0),
                        "ok".into(),
                        r.recovery.total_attempts().to_string(),
                        r.recovery.escalations.to_string(),
                        r.recovery.candidate_fallbacks.to_string(),
                        remedy.to_string(),
                        r.num_les.to_string(),
                        format!("{delay:.2}"),
                        format!("{:+.1}%", delay_overhead * 100.0),
                    ]);
                }
                MappingResult::Failed {
                    attempts,
                    unsat,
                    error,
                } => {
                    if unsat {
                        per_rate[slot].unsat += 1;
                    }
                    json = json
                        .with("success", false)
                        .with("unsat", unsat)
                        .with("attempts", attempts)
                        .with("error", error.as_str());
                    rows.push(vec![
                        bench.name.to_string(),
                        format!("{:.0}%", rate * 100.0),
                        if unsat { "UNSAT" } else { "FAIL" }.into(),
                        attempts.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
            json_runs.push(json);
        }
    }

    let header = [
        "Circuit",
        "Defects",
        "Result",
        "Attempts",
        "Escal.",
        "Fallbacks",
        "Remedy",
        "#LEs",
        "Delay (ns)",
        "dDelay",
    ];
    println!("{}", render(&header, &rows));

    println!("Yield per defect rate (heuristic rungs / exact-assign rescues / proven UNSAT):");
    let json_rates: Vec<JsonValue> = cli
        .rates
        .iter()
        .zip(&per_rate)
        .map(|(&rate, tally)| {
            let mapped = tally.heuristic + tally.exact;
            let y = f64::from(mapped) / f64::from(tally.total.max(1));
            println!(
                "  {:>5.1}%: {mapped}/{} mapped ({:.0}% yield) — {} heuristic, {} exact-assign, {} UNSAT",
                rate * 100.0,
                tally.total,
                y * 100.0,
                tally.heuristic,
                tally.exact,
                tally.unsat,
            );
            JsonValue::object()
                .with("rate", rate)
                .with("mapped", mapped)
                .with("heuristic", tally.heuristic)
                .with("exact_assign", tally.exact)
                .with("unsat", tally.unsat)
                .with("total", tally.total)
                .with("yield", y)
        })
        .collect();

    write_results_json(
        "yield",
        JsonValue::object()
            .with("seed", cli.seed)
            .with("exact_recovery", cli.exact)
            .with("rates", JsonValue::Array(json_rates))
            .with("runs", JsonValue::Array(json_runs)),
    );
    println!("\njson: -> results/yield.json");
}
