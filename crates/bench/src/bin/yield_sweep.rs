//! Fault-injection **yield sweep**: maps every paper benchmark across a
//! range of uniform fabric-defect rates and reports, per (circuit, rate),
//! whether the mapping succeeded, how hard the recovery ladder had to
//! work (failed attempts, rung escalations, candidate fallbacks, the
//! winning remedy) and the QoR price paid relative to the defect-free
//! run. The aggregate per-rate yield — fraction of benchmarks that still
//! map — lands in `results/yield.json` alongside the per-run detail.
//!
//! Run: `cargo run -p nanomap-bench --release --bin yield`
//!      `[-- --rates 0,0.02,0.05,0.1] [--seed 1] [--circuit NAME]`

use nanomap::{MappingReport, NanoMap, Objective};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_observe::JsonValue;

const DEFAULT_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

struct Cli {
    rates: Vec<f64>,
    seed: u64,
    circuit: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        rates: DEFAULT_RATES.to_vec(),
        seed: 1,
        circuit: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--rates" => {
                cli.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if cli.rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
                    return Err("--rates: every rate must be in 0..1".into());
                }
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--circuit" => cli.circuit = Some(value("--circuit")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cli)
}

/// One benchmark mapped at one defect rate.
fn map_at_rate(network: &nanomap_netlist::LutNetwork, rate: f64, seed: u64) -> MappingResult {
    let mut flow = NanoMap::new(ArchParams::paper());
    if rate > 0.0 {
        flow = flow.with_defects(DefectMap::uniform(rate, seed));
    }
    match flow.map(network, Objective::MinAreaDelayProduct) {
        Ok(report) => MappingResult::Mapped(Box::new(report)),
        Err(e) => {
            let attempts = e.recovery_log().map_or(0, |l| l.total_attempts());
            MappingResult::Failed {
                attempts,
                error: e.to_string(),
            }
        }
    }
}

enum MappingResult {
    Mapped(Box<MappingReport>),
    Failed { attempts: u32, error: String },
}

fn main() {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: yield [--rates 0,0.02,0.05,0.1] [--seed N] [--circuit NAME]");
            std::process::exit(1);
        }
    };
    let benches: Vec<_> = paper_benchmarks()
        .into_iter()
        .filter(|b| cli.circuit.as_deref().is_none_or(|c| c == b.name))
        .collect();
    if benches.is_empty() {
        eprintln!("error: no benchmark matches --circuit");
        std::process::exit(1);
    }

    println!(
        "Yield sweep: {} benchmark(s) x defect rates {:?} (seed {})\n",
        benches.len(),
        cli.rates,
        cli.seed
    );

    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    // mapped/total per rate, in rate order.
    let mut per_rate: Vec<(f64, u32, u32)> = cli.rates.iter().map(|&r| (r, 0, 0)).collect();

    for bench in &benches {
        // The defect-free run anchors the QoR deltas.
        let clean = match map_at_rate(&bench.network, 0.0, cli.seed) {
            MappingResult::Mapped(r) => r,
            MappingResult::Failed { error, .. } => {
                panic!(
                    "{name} fails on a defect-free fabric: {error}",
                    name = bench.name
                )
            }
        };
        let clean_delay = clean.physical.as_ref().map_or(0.0, |p| p.routed_delay_ns);
        for (slot, &rate) in cli.rates.iter().enumerate() {
            per_rate[slot].2 += 1;
            let result = map_at_rate(&bench.network, rate, cli.seed);
            let mut json = JsonValue::object()
                .with("circuit", bench.name)
                .with("rate", rate)
                .with("seed", cli.seed);
            match result {
                MappingResult::Mapped(r) => {
                    per_rate[slot].1 += 1;
                    let delay = r.physical.as_ref().map_or(0.0, |p| p.routed_delay_ns);
                    let delay_overhead = if clean_delay > 0.0 {
                        delay / clean_delay - 1.0
                    } else {
                        0.0
                    };
                    let les_overhead = f64::from(r.num_les) / f64::from(clean.num_les.max(1)) - 1.0;
                    let remedy = r.recovery.succeeded_with.map_or("baseline", |m| m.as_str());
                    json = json
                        .with("success", true)
                        .with("attempts", r.recovery.total_attempts())
                        .with("escalations", r.recovery.escalations)
                        .with("candidate_fallbacks", r.recovery.candidate_fallbacks)
                        .with("succeeded_with", remedy)
                        .with("num_les", r.num_les)
                        .with("routed_delay_ns", delay)
                        .with("delay_overhead", delay_overhead)
                        .with("les_overhead", les_overhead);
                    rows.push(vec![
                        bench.name.to_string(),
                        format!("{:.0}%", rate * 100.0),
                        "ok".into(),
                        r.recovery.total_attempts().to_string(),
                        r.recovery.escalations.to_string(),
                        r.recovery.candidate_fallbacks.to_string(),
                        remedy.to_string(),
                        r.num_les.to_string(),
                        format!("{delay:.2}"),
                        format!("{:+.1}%", delay_overhead * 100.0),
                    ]);
                }
                MappingResult::Failed { attempts, error } => {
                    json = json
                        .with("success", false)
                        .with("attempts", attempts)
                        .with("error", error.as_str());
                    rows.push(vec![
                        bench.name.to_string(),
                        format!("{:.0}%", rate * 100.0),
                        "FAIL".into(),
                        attempts.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
            json_runs.push(json);
        }
    }

    let header = [
        "Circuit",
        "Defects",
        "Result",
        "Attempts",
        "Escal.",
        "Fallbacks",
        "Remedy",
        "#LEs",
        "Delay (ns)",
        "dDelay",
    ];
    println!("{}", render(&header, &rows));

    println!("Yield per defect rate:");
    let json_rates: Vec<JsonValue> = per_rate
        .iter()
        .map(|&(rate, mapped, total)| {
            let y = f64::from(mapped) / f64::from(total.max(1));
            println!(
                "  {:>5.1}%: {mapped}/{total} mapped ({:.0}% yield)",
                rate * 100.0,
                y * 100.0
            );
            JsonValue::object()
                .with("rate", rate)
                .with("mapped", mapped)
                .with("total", total)
                .with("yield", y)
        })
        .collect();

    write_results_json(
        "yield",
        JsonValue::object()
            .with("seed", cli.seed)
            .with("rates", JsonValue::Array(json_rates))
            .with("runs", JsonValue::Array(json_runs)),
    );
    println!("\njson: -> results/yield.json");
}
