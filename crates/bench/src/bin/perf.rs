//! Perf snapshot generator: runs the full physical flow over every
//! paper benchmark N times and emits one `nanomap-perf-v1` document —
//! median/p95 wall-clock per phase plus peak memory — for the
//! `nanomap perf-diff` regression gate.
//!
//! Run: `cargo run -p nanomap-bench --release --bin perf --
//!   [--out PATH] [--runs N] [--circuit NAME] [--sample-hz N]
//!   [--profile-dir DIR]`
//!
//! Defaults: 5 runs per circuit, output to `BENCH_perf.json` at the repo
//! root (the committed perf trajectory point). `--circuit` restricts the
//! sweep (CI's perf-smoke leg measures one benchmark against the
//! full-suite baseline — `perf-diff` treats absent circuits as
//! informational). `--profile-dir` additionally samples the final run of
//! each circuit and writes `<circuit>.profile.json` + collapsed stacks.
//!
//! Every run is checked for `phase_times` self-consistency
//! ([`nanomap::PhaseTimes::reconcile`]): the per-phase sum may undershoot
//! the total (unitemized inter-phase work) but never overshoot it beyond
//! tolerance — a sum above the total means a phase was double-counted.

use std::collections::BTreeMap;
use std::path::Path;

use nanomap::perf::{PerfDocument, PerfReport};
use nanomap::{NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;

/// The allocation metrics need the counting wrapper installed in this
/// binary; it costs one relaxed load per heap call until tracking is on.
#[global_allocator]
static ALLOC: nanomap_observe::CountingAllocator = nanomap_observe::CountingAllocator::system();

/// Tolerance for the phase-times reconciliation: generous, because it
/// guards against double-counting, not against timer noise.
const RECONCILE_TOL_FRAC: f64 = 0.10;
const RECONCILE_SLACK_MS: f64 = 5.0;

fn repo_root_default_out() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_perf.json")
        .display()
        .to_string()
}

fn main() {
    let mut out = repo_root_default_out();
    let mut runs: u32 = 5;
    let mut only_circuit: Option<String> = None;
    let mut sample_hz: u32 = 0;
    let mut profile_dir: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = take("--out"),
            "--runs" => {
                runs = take("--runs")
                    .parse()
                    .unwrap_or_else(|e| panic!("--runs: {e}"));
                assert!(runs > 0, "--runs must be positive");
            }
            "--circuit" => only_circuit = Some(take("--circuit")),
            "--sample-hz" => {
                sample_hz = take("--sample-hz")
                    .parse()
                    .unwrap_or_else(|e| panic!("--sample-hz: {e}"));
            }
            "--profile-dir" => profile_dir = Some(take("--profile-dir")),
            other => {
                eprintln!(
                    "usage: perf [--out PATH] [--runs N] [--circuit NAME] [--sample-hz N] \
                     [--profile-dir DIR]  (unexpected `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &profile_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    }

    let flow = NanoMap::new(ArchParams::paper());
    let mut reports = Vec::new();
    let mut measured = 0usize;
    for bench in paper_benchmarks() {
        if only_circuit.as_deref().is_some_and(|c| c != bench.name) {
            continue;
        }
        measured += 1;
        let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut peak_rss_kb: u64 = 0;
        let mut peak_live_bytes: u64 = 0;
        let mut alloc_bytes: u64 = 0;
        for run in 0..runs {
            // Fresh collector epoch and memory window per run; the
            // profiler only rides on the last run so sampling overhead
            // never contaminates the timing medians.
            nanomap_observe::reset();
            nanomap_observe::set_enabled(true);
            nanomap_observe::reset_memory();
            nanomap_observe::set_memory_tracking(true);
            let profiling = profile_dir.is_some() && run + 1 == runs;
            if profiling && !nanomap_observe::start_sampler(sample_hz) {
                eprintln!("warning: {}: profiler unavailable", bench.name);
            }
            let report = flow
                .map(&bench.network, Objective::MinAreaDelayProduct)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            if profiling {
                if let Some(profile) = nanomap_observe::stop_sampler() {
                    if let Some(dir) = &profile_dir {
                        let json_path = format!("{dir}/{}.profile.json", bench.name);
                        nanomap::atomic_write_text(
                            Path::new(&json_path),
                            &profile.to_json().to_pretty_string(),
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                        nanomap::atomic_write_text(
                            Path::new(&format!("{dir}/{}.collapsed", bench.name)),
                            &profile.collapsed(),
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                        eprintln!(
                            "{}: profile {} samples ({:.2}% overhead) -> {json_path}",
                            bench.name,
                            profile.total_samples,
                            profile.overhead_fraction() * 100.0
                        );
                    }
                }
            }
            nanomap_observe::set_memory_tracking(false);
            let t = report.phase_times;
            t.reconcile(RECONCILE_TOL_FRAC, RECONCILE_SLACK_MS)
                .unwrap_or_else(|e| panic!("{} run {run}: {e}", bench.name));
            for (name, value) in [
                ("folding_select_ms", t.folding_select_ms),
                ("fds_ms", t.fds_ms),
                ("pack_ms", t.pack_ms),
                ("place_ms", t.place_ms),
                ("route_ms", t.route_ms),
                ("bitmap_ms", t.bitmap_ms),
                ("verify_ms", t.verify_ms),
                ("total_ms", t.total_ms),
            ] {
                samples.entry(name.to_string()).or_default().push(value);
            }
            if let Some(memory) = &report.memory {
                peak_live_bytes = peak_live_bytes.max(memory.peak_live_bytes);
                alloc_bytes = alloc_bytes.max(memory.alloc_bytes);
                if let Some(kb) = memory.peak_rss_kb {
                    peak_rss_kb = peak_rss_kb.max(kb);
                }
            }
        }
        let mut perf = PerfReport::from_samples(bench.name, runs, &samples);
        perf.set("peak_live_bytes", peak_live_bytes as f64);
        perf.set("alloc_bytes", alloc_bytes as f64);
        if peak_rss_kb > 0 {
            perf.set("peak_rss_kb", peak_rss_kb as f64);
        }
        eprintln!(
            "{}: median total {:.1} ms over {} runs, peak live {:.1} MiB",
            bench.name,
            perf.metrics.get("total.median_ms").copied().unwrap_or(0.0),
            runs,
            peak_live_bytes as f64 / (1024.0 * 1024.0),
        );
        reports.push(perf);
    }
    assert!(measured > 0, "no circuit matched the --circuit filter");
    let text = PerfDocument::new(reports).to_json().to_pretty_string();
    nanomap::atomic_write_text(Path::new(&out), &text).unwrap_or_else(|e| panic!("{e}"));
    eprintln!("perf document -> {out}");
}
