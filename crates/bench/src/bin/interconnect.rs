//! Reproduces the **Section 5 interconnect claim**: "global interconnect
//! usage went down by more than 50% when using level-1 folding as opposed
//! to no-folding" — cycle-by-cycle reconfiguration keeps LE utilization
//! high, so each configuration needs far less interconnect.
//!
//! Runs the full physical flow (clustering, placement, routing) at
//! no-folding and at level-1 folding and compares the per-configuration
//! interconnect usage.
//!
//! Run: `cargo run -p nanomap-bench --release --bin interconnect [circuits...]`

use nanomap_arch::{ArchParams, ChannelConfig, TimingModel};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::table::render;
use nanomap_netlist::{LutNetwork, PlaneSet};
use nanomap_pack::{extract_nets, pack, PackOptions, TemporalDesign};
use nanomap_place::{place, PlaceOptions};
use nanomap_route::{route_design, RouteOptions};
use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph, Schedule};

struct PhysicalRun {
    global_per_cfg: f64,
    total_per_cfg: f64,
    smbs: u32,
}

fn run_physical(net: &LutNetwork, level: Option<u32>) -> Result<PhysicalRun, String> {
    let planes = PlaneSet::extract(net).map_err(|e| e.to_string())?;
    let arch = ArchParams::paper_unbounded();
    let mut graphs = Vec::new();
    let mut schedules = Vec::new();
    for plane in planes.planes() {
        match level {
            None => {
                let graph = ItemGraph::build(net, plane, planes.depth_max().max(1))
                    .map_err(|e| e.to_string())?;
                let n = graph.len();
                graphs.push(graph);
                schedules.push(Schedule::new(vec![0; n], 1));
            }
            Some(p) => {
                let stages = planes.depth_max().div_ceil(p);
                let graph = ItemGraph::build(net, plane, p).map_err(|e| e.to_string())?;
                let schedule = schedule_fds(net, &graph, stages, FdsOptions::default())
                    .map_err(|e| e.to_string())?;
                graphs.push(graph);
                schedules.push(schedule);
            }
        }
    }
    let design = TemporalDesign::new(net, &planes, graphs, schedules).map_err(|e| e.to_string())?;
    let packing = pack(&design, &arch, PackOptions::default()).map_err(|e| e.to_string())?;
    let nets = extract_nets(&design, &packing);
    let channels = ChannelConfig::nature();
    let timing = TimingModel::nature_100nm();
    let placement = place(
        &design,
        &packing,
        &nets,
        &channels,
        &timing,
        PlaceOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let routed = route_design(
        &design,
        &packing,
        &nets,
        &placement,
        &channels,
        &timing,
        &arch,
        RouteOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let slices = f64::from(design.num_slices());
    Ok(PhysicalRun {
        global_per_cfg: routed.usage.global as f64 / slices,
        total_per_cfg: routed.usage.total() as f64 / slices,
        smbs: packing.num_smbs,
    })
}

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let default = ["ex1", "FIR", "ex2"];
    let names: Vec<String> = if requested.is_empty() {
        default.iter().map(|s| s.to_string()).collect()
    } else {
        requested
    };
    println!("Section 5 interconnect experiment: per-configuration interconnect");
    println!("usage, no-folding vs level-1 temporal folding\n");

    let benches = paper_benchmarks();
    let mut rows = Vec::new();
    for name in &names {
        let bench = benches
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| panic!("unknown circuit `{name}`"));
        eprintln!("routing {} (no-folding)...", bench.name);
        let nofold = match run_physical(&bench.network, None) {
            Ok(r) => r,
            Err(e) => {
                rows.push(vec![
                    bench.name.into(),
                    format!("no-fold failed: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        eprintln!("routing {} (level-1 folding)...", bench.name);
        let folded = match run_physical(&bench.network, Some(1)) {
            Ok(r) => r,
            Err(e) => {
                rows.push(vec![
                    bench.name.into(),
                    format!("level-1 failed: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let reduction = |a: f64, b: f64| {
            if a == 0.0 {
                "n/a".to_string()
            } else {
                format!("{:.0}%", 100.0 * (1.0 - b / a))
            }
        };
        rows.push(vec![
            bench.name.into(),
            format!("{} -> {}", nofold.smbs, folded.smbs),
            format!("{:.1}", nofold.global_per_cfg),
            format!("{:.1}", folded.global_per_cfg),
            reduction(nofold.global_per_cfg, folded.global_per_cfg),
            format!("{:.1} -> {:.1}", nofold.total_per_cfg, folded.total_per_cfg),
            reduction(nofold.total_per_cfg, folded.total_per_cfg),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "Circuit",
                "SMBs (nf->l1)",
                "global/cfg nf",
                "global/cfg l1",
                "global reduction",
                "total/cfg",
                "total reduction",
            ],
            &rows
        )
    );
    println!("Paper: global interconnect usage down by more than 50% at level-1.");
}
