//! Reproduces **Table 2**: circuit mapping results for per-circuit
//! optimization objectives with user constraints.
//!
//! Area and delay constraints are taken from the paper and scaled so
//! they bind at the same relative point on our substrate (see
//! EXPERIMENTS.md): delay budgets by each circuit's
//! `our-no-folding-delay / paper-no-folding-delay` ratio, area budgets by
//! `our-minimum-LEs / paper-minimum-LEs` (the paper's minimum being its
//! level-1 result).
//!
//! Run: `cargo run -p nanomap-bench --release --bin table2`

use nanomap::{FlowError, MappingReport, NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_observe::JsonValue;

struct Row {
    circuit: &'static str,
    objective: &'static str,
    area_constraint: Option<u32>,
    delay_constraint: Option<f64>,
    paper_level: &'static str,
    paper_les: u32,
    paper_delay: f64,
}

fn main() {
    // Paper Table 2 rows (constraints as printed).
    let spec = [
        Row {
            circuit: "ex1",
            objective: "Delay",
            area_constraint: None,
            delay_constraint: None,
            paper_level: "1",
            paper_les: 34,
            paper_delay: 17.02,
        },
        Row {
            circuit: "FIR",
            objective: "Delay",
            area_constraint: Some(110),
            delay_constraint: None,
            paper_level: "3",
            paper_les: 108,
            paper_delay: 16.74,
        },
        Row {
            circuit: "ex2",
            objective: "Area",
            area_constraint: None,
            delay_constraint: Some(40.0),
            paper_level: "11",
            paper_les: 352,
            paper_delay: 38.04,
        },
        Row {
            circuit: "c5315",
            objective: "Area",
            area_constraint: None,
            delay_constraint: None,
            paper_level: "1",
            paper_les: 144,
            paper_delay: 10.36,
        },
        Row {
            circuit: "Biquad",
            objective: "Delay",
            area_constraint: Some(100),
            delay_constraint: None,
            paper_level: "1",
            paper_les: 68,
            paper_delay: 16.28,
        },
        Row {
            circuit: "Paulin",
            objective: "Both",
            area_constraint: Some(210),
            delay_constraint: Some(30.0),
            paper_level: "3",
            paper_les: 204,
            paper_delay: 29.76,
        },
        Row {
            circuit: "ASPP4",
            objective: "Area",
            area_constraint: None,
            delay_constraint: Some(28.5),
            paper_level: "6",
            paper_les: 600,
            paper_delay: 28.32,
        },
    ];

    let benches = paper_benchmarks();
    let flow = NanoMap::new(ArchParams::paper_unbounded()).without_physical();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    println!("Table 2: circuit mapping results for typical optimizations");
    println!("(paper values in parentheses; delay constraints scaled by the");
    println!(" per-circuit no-folding delay ratio, see EXPERIMENTS.md)\n");

    for row in &spec {
        let bench = benches
            .iter()
            .find(|b| b.name == row.circuit)
            .expect("spec names match benchmarks");
        // Scale the delay budget to our timing baseline.
        let nofold = flow
            .map(&bench.network, Objective::MinDelay { max_les: None })
            .expect("no-folding maps");
        let ratio = nofold.delay_ns / bench.paper_at.nofold_delay;
        let delay_budget = row.delay_constraint.map(|d| d * ratio);
        let area_budget = row.area_constraint.map(|a| {
            let min_area = flow
                .map(&bench.network, Objective::MinArea { max_delay_ns: None })
                .expect("area minimization maps");
            let scale = f64::from(min_area.num_les) / f64::from(bench.paper_at.kinf_les);
            (f64::from(a) * scale).round() as u32
        });

        let objective = match (row.objective, area_budget, delay_budget) {
            ("Delay", area, _) => Objective::MinDelay { max_les: area },
            ("Area", _, delay) => Objective::MinArea {
                max_delay_ns: delay,
            },
            ("Both", Some(area), Some(delay)) => Objective::Feasible {
                max_les: area,
                max_delay_ns: delay,
            },
            other => unreachable!("bad spec {other:?}"),
        };
        let result: Result<MappingReport, FlowError> = flow.map(&bench.network, objective);
        json_rows.push(match &result {
            Ok(r) => JsonValue::object()
                .with("circuit", row.circuit)
                .with("objective", row.objective)
                .with("area_budget", area_budget)
                .with("delay_budget_ns", delay_budget)
                .with("folding_level", r.folding_level)
                .with("num_les", r.num_les)
                .with("delay_ns", r.delay_ns),
            Err(e) => JsonValue::object()
                .with("circuit", row.circuit)
                .with("objective", row.objective)
                .with("error", e.to_string().as_str()),
        });
        let (level, les, delay) = match &result {
            Ok(r) => (
                r.folding_level.map_or("-".to_string(), |l| l.to_string()),
                r.num_les.to_string(),
                format!("{:.2}", r.delay_ns),
            ),
            Err(e) => ("!".into(), format!("{e}"), String::new()),
        };
        rows.push(vec![
            row.circuit.to_string(),
            row.objective.to_string(),
            row.area_constraint.map_or("-".into(), |a| a.to_string()),
            area_budget.map_or("-".into(), |a| a.to_string()),
            row.delay_constraint
                .map_or("-".into(), |d| format!("{d:.1}")),
            delay_budget.map_or("-".into(), |d| format!("{d:.1}")),
            format!("{} ({})", level, row.paper_level),
            format!("{} ({})", les, row.paper_les),
            format!("{} ({:.2})", delay, row.paper_delay),
        ]);
    }
    let header = [
        "Circuit",
        "Objective",
        "Area const",
        "Scaled area",
        "Delay const",
        "Scaled delay",
        "Level",
        "#LEs",
        "Delay (ns)",
    ];
    println!("{}", render(&header, &rows));
    println!("Note: the paper's ex1 'Delay' row reports level-1 folding; an");
    println!("unconstrained delay minimization picks no-folding (the fastest");
    println!("mapping), which is what this flow reports.");

    write_results_json(
        "table2",
        JsonValue::object().with("rows", JsonValue::Array(json_rows)),
    );
    println!("\njson: -> results/table2.json");
}
