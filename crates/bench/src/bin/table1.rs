//! Reproduces **Table 1**: circuit mapping results for AT-product
//! optimization — no-folding baseline vs. folding with unbounded NRAM
//! sets vs. folding with k = 16.
//!
//! Run: `cargo run -p nanomap-bench --release --bin table1 [--physical]`

use nanomap::{MappingReport, NanoMap, Objective};
use nanomap_arch::ArchParams;
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_netlist::PlaneSet;
use nanomap_observe::JsonValue;

/// The numeric core of one mapping variant, for the JSON artifact.
fn variant_json(r: &MappingReport) -> JsonValue {
    JsonValue::object()
        .with("folding_level", r.folding_level)
        .with("num_les", r.num_les)
        .with("delay_ns", r.delay_ns)
        .with("at_product", r.area_delay_product())
}

fn main() {
    let physical = std::env::args().any(|a| a == "--physical");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut sums = [0.0f64; 6]; // [area_red_inf, at_inf, delay_inc_inf, area_red_16, at_16, delay_inc_16]
    let mut count = 0.0;

    println!("Table 1: circuit mapping results for AT product optimization");
    println!("(paper values in parentheses; area = #LEs)\n");

    for bench in paper_benchmarks() {
        let planes = PlaneSet::extract(&bench.network).expect("benchmarks validate");
        let base_flow = |arch: ArchParams| {
            let flow = NanoMap::new(arch);
            if physical {
                flow
            } else {
                flow.without_physical()
            }
        };

        // No-folding baseline: delay minimization without constraints.
        let flow_inf = base_flow(ArchParams::paper_unbounded());
        let nofold = flow_inf
            .map(&bench.network, Objective::MinDelay { max_les: None })
            .expect("no-folding always maps");
        // AT optimization, unbounded k.
        let at_inf = flow_inf
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .expect("AT optimization always maps");
        // AT optimization, k = 16.
        let flow_16 = base_flow(ArchParams::paper());
        let at_16 = flow_16
            .map(&bench.network, Objective::MinAreaDelayProduct)
            .expect("AT optimization always maps");

        let at_improv = |n: &nanomap::MappingReport, f: &nanomap::MappingReport| -> f64 {
            n.area_delay_product() / f.area_delay_product()
        };
        let p = &bench.paper_at;
        rows.push(vec![
            bench.name.to_string(),
            format!("{} ({})", planes.num_planes(), bench.paper.planes),
            format!("{} ({})", planes.depth_max(), bench.paper.depth),
            format!("{} ({})", bench.network.num_luts(), bench.paper.luts),
            format!("{} ({})", bench.network.num_ffs(), bench.paper.ffs),
            format!("{} ({})", nofold.num_les, p.nofold_les),
            format!("{:.2} ({:.2})", nofold.delay_ns, p.nofold_delay),
            format!(
                "{} ({})",
                at_inf.folding_level.map_or("-".into(), |l| l.to_string()),
                p.kinf_level
            ),
            format!("{} ({})", at_inf.num_les, p.kinf_les),
            format!("{:.2} ({:.2})", at_inf.delay_ns, p.kinf_delay),
            format!(
                "{:.2}x ({:.2}x)",
                at_improv(&nofold, &at_inf),
                f64::from(p.nofold_les) * p.nofold_delay / (f64::from(p.kinf_les) * p.kinf_delay)
            ),
            format!(
                "{} ({})",
                at_16.folding_level.map_or("-".into(), |l| l.to_string()),
                p.k16_level
            ),
            format!("{} ({})", at_16.num_les, p.k16_les),
            format!("{:.2} ({:.2})", at_16.delay_ns, p.k16_delay),
            format!(
                "{:.2}x ({:.2}x)",
                at_improv(&nofold, &at_16),
                f64::from(p.nofold_les) * p.nofold_delay / (f64::from(p.k16_les) * p.k16_delay)
            ),
        ]);

        json_rows.push(
            JsonValue::object()
                .with("circuit", bench.name)
                .with("num_planes", planes.num_planes() as u64)
                .with("depth_max", planes.depth_max())
                .with("num_luts", bench.network.num_luts() as u64)
                .with("num_ffs", bench.network.num_ffs() as u64)
                .with("no_folding", variant_json(&nofold))
                .with("k_unbounded", variant_json(&at_inf))
                .with("k16", variant_json(&at_16)),
        );

        sums[0] += f64::from(nofold.num_les) / f64::from(at_inf.num_les);
        sums[1] += at_improv(&nofold, &at_inf);
        sums[2] += at_inf.delay_ns / nofold.delay_ns - 1.0;
        sums[3] += f64::from(nofold.num_les) / f64::from(at_16.num_les);
        sums[4] += at_improv(&nofold, &at_16);
        sums[5] += at_16.delay_ns / nofold.delay_ns - 1.0;
        count += 1.0;
    }

    let header = [
        "Circuit",
        "#Planes",
        "Depth",
        "#LUTs",
        "#FFs",
        "NF #LEs",
        "NF delay",
        "k∞ lvl",
        "k∞ #LEs",
        "k∞ delay",
        "k∞ AT impr",
        "k16 lvl",
        "k16 #LEs",
        "k16 delay",
        "k16 AT impr",
    ];
    println!("{}", render(&header, &rows));

    println!(
        "Average (k unbounded): LE reduction {:.1}x, AT improvement {:.1}x, delay increase {:.1}%",
        sums[0] / count,
        sums[1] / count,
        100.0 * sums[2] / count
    );
    println!(
        "Average (k = 16):      LE reduction {:.1}x, AT improvement {:.1}x, delay increase {:.1}%",
        sums[3] / count,
        sums[4] / count,
        100.0 * sums[5] / count
    );
    println!("\nPaper:  14.8x LE reduction / 11.0x AT / +31.8% delay (k unbounded);");
    println!("        9.2x / 7.8x / +19.4% (k = 16).");

    let body = JsonValue::object()
        .with("circuits", JsonValue::Array(json_rows))
        .with(
            "averages",
            JsonValue::object()
                .with("kinf_le_reduction", sums[0] / count)
                .with("kinf_at_improvement", sums[1] / count)
                .with("kinf_delay_increase", sums[2] / count)
                .with("k16_le_reduction", sums[3] / count)
                .with("k16_at_improvement", sums[4] / count)
                .with("k16_delay_increase", sums[5] / count),
        );
    write_results_json("table1", body);
    println!("\njson: -> results/table1.json");
}
