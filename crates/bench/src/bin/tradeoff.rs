//! Reproduces the **Section 2.2 area-delay tradeoff**: sweeping the
//! folding level changes the clock period, cycle count, LE usage and
//! area-delay product ("increasing the folding level leads to a higher
//! clock period, but smaller cycle count … and much higher resource
//! usage").
//!
//! Run: `cargo run -p nanomap-bench --release --bin tradeoff [circuit]`

use nanomap_arch::{estimate_power, PowerModel, TimingModel};
use nanomap_bench::circuits::paper_benchmarks;
use nanomap_bench::results::write_results_json;
use nanomap_bench::table::render;
use nanomap_netlist::PlaneSet;
use nanomap_observe::JsonValue;
use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph, LeShape};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ex1".into());
    let benches = paper_benchmarks();
    let bench = benches
        .iter()
        .find(|b| b.name.eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| panic!("unknown circuit `{which}`"));
    let net = &bench.network;
    let planes = PlaneSet::extract(net).expect("extracts");
    let timing = TimingModel::nature_100nm();
    let shape = LeShape { luts: 1, ffs: 2 };

    println!(
        "Area-delay tradeoff for {} ({} LUTs, {} FFs, depth {}, {} plane(s))\n",
        bench.name,
        net.num_luts(),
        net.num_ffs(),
        planes.depth_max(),
        planes.num_planes()
    );

    let depth = planes.depth_max().max(1);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for stages in 1..=depth {
        let level = depth.div_ceil(stages);
        if !seen.insert(level) {
            continue;
        }
        let stages = depth.div_ceil(level);
        // Peak LE usage over planes (shared-plane model).
        let mut peak = 0u32;
        let mut feasible = true;
        for plane in planes.planes() {
            let graph = match ItemGraph::build(net, plane, level) {
                Ok(g) => g,
                Err(_) => {
                    feasible = false;
                    break;
                }
            };
            match schedule_fds(net, &graph, stages, FdsOptions::default()) {
                Ok(s) => {
                    let usage = s.le_usage_exact(net, &graph, net.num_ffs() as u32, shape);
                    peak = peak.max(usage.peak);
                }
                Err(_) => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let cycle = timing.folding_cycle(level);
        let delay = timing.circuit_delay(planes.num_planes() as u32, stages, level);
        let slices = planes.num_planes() as f64 * f64::from(stages);
        let power = estimate_power(
            &PowerModel::nature_100nm(),
            net.num_luts() as f64 / slices,
            f64::from(peak) * 39.0,
            peak,
            cycle,
        );
        rows.push(vec![
            level.to_string(),
            stages.to_string(),
            format!("{cycle:.2}"),
            format!("{delay:.2}"),
            peak.to_string(),
            format!("{:.0}", f64::from(peak) * delay),
            format!("{:.1}", power.total_mw()),
        ]);
        json_rows.push(
            JsonValue::object()
                .with("folding_level", level)
                .with("cycles_per_plane", stages)
                .with("cycle_ns", cycle)
                .with("delay_ns", delay)
                .with("num_les", peak)
                .with("at_product", f64::from(peak) * delay)
                .with("power_mw", power.total_mw()),
        );
    }
    // The no-folding end of the curve.
    let nf_delay = timing.circuit_delay_no_folding(planes.num_planes() as u32, depth);
    let nf_les = (net.num_luts() as u32).max((net.num_ffs() as u32).div_ceil(2));
    let nf_power = estimate_power(
        &PowerModel::nature_100nm(),
        net.num_luts() as f64 / planes.num_planes() as f64,
        0.0,
        nf_les,
        timing.plane_cycle_no_folding(depth),
    );
    rows.push(vec![
        "none".into(),
        "1".into(),
        format!("{:.2}", timing.plane_cycle_no_folding(depth)),
        format!("{nf_delay:.2}"),
        nf_les.to_string(),
        format!("{:.0}", f64::from(nf_les) * nf_delay),
        format!("{:.1}", nf_power.total_mw()),
    ]);
    json_rows.push(
        JsonValue::object()
            .with("folding_level", JsonValue::Null)
            .with("cycles_per_plane", 1u32)
            .with("cycle_ns", timing.plane_cycle_no_folding(depth))
            .with("delay_ns", nf_delay)
            .with("num_les", nf_les)
            .with("at_product", f64::from(nf_les) * nf_delay)
            .with("power_mw", nf_power.total_mw()),
    );

    println!(
        "{}",
        render(
            &[
                "level",
                "cycles/plane",
                "cycle (ns)",
                "delay (ns)",
                "#LEs",
                "AT",
                "power (mW)"
            ],
            &rows
        )
    );
    println!("Expected shape: delay falls and #LEs rises as the folding level");
    println!("increases; the AT product is minimized at deep folding.");

    write_results_json(
        "tradeoff",
        JsonValue::object()
            .with("circuit", bench.name)
            .with("levels", JsonValue::Array(json_rows)),
    );
    println!("\njson: -> results/tradeoff.json");
}
