//! Plain-text table rendering for the reproduction binaries.

/// Renders rows of equal length as an aligned plain-text table with a
/// header row.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let text = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }
}
