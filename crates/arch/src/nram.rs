//! Carbon-nanotube RAM (NRAM) configuration-storage model.
//!
//! NATURE associates a k-set NRAM with every logic and interconnect
//! element; during run-time reconfiguration the next configuration is read
//! out of the NRAM (160 ps access) into SRAM cells under counter control
//! (Section 2.1.2). NRAM is non-volatile: configurations survive power-off.

/// An NRAM block attached to a reconfigurable element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NramSpec {
    /// Number of configuration sets (`k`).
    pub sets: u32,
    /// Bits per configuration set (element-dependent).
    pub bits_per_set: u32,
    /// Access latency in picoseconds (160 ps for the 16-set layout).
    pub access_ps: u32,
}

impl NramSpec {
    /// The 16-set NRAM evaluated in the paper.
    pub fn paper_16_set(bits_per_set: u32) -> Self {
        Self {
            sets: 16,
            bits_per_set,
            access_ps: 160,
        }
    }

    /// Total storage capacity in bits.
    pub fn total_bits(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.bits_per_set)
    }

    /// Can the NRAM hold configurations for `cycles` folding cycles?
    ///
    /// This is the constraint behind Eq. (3) of the paper: the minimum
    /// folding level is limited by `num_reconf`.
    pub fn supports_cycles(&self, cycles: u32) -> bool {
        cycles <= self.sets
    }
}

/// The reconfiguration counter that sequences NRAM sets cycle by cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigCounter {
    sets: u32,
    current: u32,
}

impl ReconfigCounter {
    /// Creates a counter over `sets` configuration sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`.
    pub fn new(sets: u32) -> Self {
        assert!(sets > 0, "counter needs at least one set");
        Self { sets, current: 0 }
    }

    /// The active configuration set.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Advances to the next set, wrapping at the end (cyclic execution of
    /// the folding stages).
    pub fn advance(&mut self) -> u32 {
        self.current = (self.current + 1) % self.sets;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let n = NramSpec::paper_16_set(200);
        assert_eq!(n.total_bits(), 3200);
        assert!(n.supports_cycles(16));
        assert!(!n.supports_cycles(17));
    }

    #[test]
    fn counter_wraps() {
        let mut c = ReconfigCounter::new(3);
        assert_eq!(c.current(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.advance(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        ReconfigCounter::new(0);
    }
}
