//! Fabric defect model.
//!
//! Nano-scale fabrics are defect-prone: carbon-nanotube NRAM cells, LEs,
//! wire segments and programmable switches all fail at non-trivial rates.
//! A [`DefectMap`] records which resources of a NATURE instance are
//! broken, from two composable sources:
//!
//! * **seeded random generation** — every resource is independently
//!   defective with a uniform probability (`rate`), decided by hashing the
//!   resource's *identity* together with the seed. Decisions are therefore
//!   stable across grid sizes: enlarging the grid during placement retries
//!   never resurrects or kills an already-decided slot or wire;
//! * **an explicit defect file** — a simple line-oriented text format
//!   (`slot`, `nram`, `direct`, `hwire`, `vwire`, `grow`, `gcol`,
//!   `switch` records) produced by fabric test equipment or by hand.
//!
//! Defect classes:
//!
//! * **slots** — the whole SMB at a position is dead (placement treats it
//!   as illegal);
//! * **NRAM sets** — a single configuration set of a slot's NRAM is dead.
//!   Each set is a physically separate nanotube array, so under the
//!   random model every set fails *independently* with probability
//!   `rate`; a slot needing `s` configuration sets survives with
//!   probability `(1 - rate)^(1 + s)`. The slot remains usable by any
//!   design whose active sets all miss the dead ones (graceful
//!   degradation under shallow folding);
//! * **wires** — an interconnect segment (direct link, length-1/4 track
//!   or global line) is broken and is pruned from the routing-resource
//!   graph;
//! * **switches** — a programmable wire-to-wire switch is stuck open and
//!   its edge is pruned from the routing-resource graph.
//!
//! ```
//! use nanomap_arch::{DefectMap, SmbPos};
//!
//! let map = DefectMap::uniform(0.05, 42);
//! // Deterministic: the same slot answers the same way forever.
//! let broken = map.slot_defective(SmbPos::new(3, 4));
//! assert_eq!(broken, map.slot_defective(SmbPos::new(3, 4)));
//!
//! let explicit = DefectMap::parse("slot 1 2\nnram 0 0 4\n").unwrap();
//! assert!(explicit.slot_defective(SmbPos::new(1, 2)));
//! assert!(explicit.slot_usable(SmbPos::new(0, 0), 4));
//! assert!(!explicit.slot_usable(SmbPos::new(0, 0), 5));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::grid::{Grid, SmbPos};
use crate::interconnect::ChannelConfig;
use crate::rrgraph::RrNodeKind;

/// Maximum NRAM set index the random model may declare dead. Matches the
/// deepest configuration storage any NATURE instance in this repo models.
const MAX_NRAM_SET: u64 = 64;

/// Which fabric resources of a NATURE instance are defective.
///
/// See the [module docs](self) for the defect classes and sources.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DefectMap {
    /// Uniform per-resource defect probability of the random model
    /// (`0.0` disables random defects).
    rate: f64,
    /// Seed of the random model.
    seed: u64,
    /// Explicitly dead SMB slots.
    slots: BTreeSet<(u16, u16)>,
    /// Explicitly dead NRAM configuration sets per slot.
    nram: BTreeMap<(u16, u16), BTreeSet<u32>>,
    /// Explicitly broken wires, by canonical wire key.
    wires: BTreeSet<u64>,
    /// Explicitly stuck-open switches, by ordered wire-key pair.
    switches: BTreeSet<(u64, u64)>,
}

/// Resource classes, used as hash domains so a slot and a wire with the
/// same coordinates draw independent random decisions.
#[derive(Debug, Clone, Copy)]
enum Class {
    Slot = 1,
    Nram = 2,
    Wire = 3,
    Switch = 4,
}

/// SplitMix64 finalizer: a strong bit mixer for hashing resource
/// identities into per-resource PRNG streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical 64-bit key of a routing-resource wire node. Sources and
/// sinks have no key — they model SMB pins, which fail with the slot.
fn wire_key(kind: &RrNodeKind) -> Option<u64> {
    let enc = |tag: u64, a: u64, b: u64, c: u64, d: u64| {
        // 4 bits tag, 15 bits per field: collision-free for any grid this
        // repo can build (coordinates and tracks are u16 in practice far
        // below 2^15).
        (tag << 60) | (a << 45) | (b << 30) | (c << 15) | d
    };
    match *kind {
        RrNodeKind::Source(_) | RrNodeKind::Sink(_) => None,
        RrNodeKind::HWire { at, track, .. } => Some(enc(
            1,
            u64::from(at.x),
            u64::from(at.y),
            u64::from(track),
            0,
        )),
        RrNodeKind::VWire { at, track, .. } => Some(enc(
            2,
            u64::from(at.x),
            u64::from(at.y),
            u64::from(track),
            0,
        )),
        RrNodeKind::Direct { from, to, track } => Some(enc(
            3,
            u64::from(from.x),
            u64::from(from.y),
            u64::from(track),
            // Encode the direction instead of the full destination: a
            // direct link leaves `from` toward one of 4 neighbours.
            match (to.x as i32 - from.x as i32, to.y as i32 - from.y as i32) {
                (1, 0) => 0,
                (-1, 0) => 1,
                (0, 1) => 2,
                _ => 3,
            },
        )),
        RrNodeKind::GlobalRow { y, track } => Some(enc(4, u64::from(y), u64::from(track), 0, 0)),
        RrNodeKind::GlobalCol { x, track } => Some(enc(5, u64::from(x), u64::from(track), 0, 0)),
    }
}

impl DefectMap {
    /// A perfect fabric: no defects of any kind.
    pub fn none() -> Self {
        Self::default()
    }

    /// A uniform random defect model: every slot, wire, switch and
    /// per-slot NRAM configuration set is independently defective with
    /// probability `rate`. NRAM sets are separate nanotube arrays, so
    /// they fail independently — a slot at rate `r` survives a design
    /// needing `s` configuration sets with probability `(1-r)^(1+s)`,
    /// which is what makes deep folding fragile on high-defect fabrics
    /// (and per-cluster exact assignment worthwhile: clusters active in
    /// few slices keep far more usable slots than the whole-design
    /// worst case). Out-of-range rates are clamped to `[0, 1]`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 1.0),
            seed,
            ..Self::default()
        }
    }

    /// The uniform defect rate of the random model.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The seed of the random model.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the map can never report a defect.
    pub fn is_empty(&self) -> bool {
        self.rate == 0.0
            && self.slots.is_empty()
            && self.nram.is_empty()
            && self.wires.is_empty()
            && self.switches.is_empty()
    }

    /// Marks a slot as dead.
    pub fn kill_slot(&mut self, pos: SmbPos) {
        self.slots.insert((pos.x, pos.y));
    }

    /// Marks one NRAM configuration set of a slot as dead.
    pub fn kill_nram_set(&mut self, pos: SmbPos, set: u32) {
        self.nram.entry((pos.x, pos.y)).or_default().insert(set);
    }

    /// Per-resource Bernoulli draw, derived from the seed and the
    /// resource identity via [`mix`] feeding a one-step
    /// `XorShift64Star` stream. Order-independent and grid-independent.
    fn random_hit(&self, class: Class, key: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let stream = mix(self.seed ^ mix((class as u64) << 56 | key & 0x00FF_FFFF_FFFF_FFFF));
        let mut rng = nanomap_observe::rng::XorShift64Star::new(stream);
        rng.next_f64() < self.rate
    }

    /// Whether the SMB slot at `pos` is entirely dead.
    pub fn slot_defective(&self, pos: SmbPos) -> bool {
        self.slots.contains(&(pos.x, pos.y))
            || self.random_hit(Class::Slot, u64::from(pos.x) << 16 | u64::from(pos.y))
    }

    /// Whether one NRAM configuration set of the slot at `pos` is dead
    /// (independently of the slot itself). Sets beyond the modeled
    /// storage depth (`>= 64`) never fail randomly.
    pub fn nram_set_defective(&self, pos: SmbPos, set: u32) -> bool {
        if self
            .nram
            .get(&(pos.x, pos.y))
            .is_some_and(|sets| sets.contains(&set))
        {
            return true;
        }
        if u64::from(set) >= MAX_NRAM_SET {
            return false;
        }
        let key = u64::from(set) << 32 | u64::from(pos.x) << 16 | u64::from(pos.y);
        self.random_hit(Class::Nram, key)
    }

    /// The lowest dead NRAM configuration set index at `pos`, if any.
    pub fn first_dead_nram_set(&self, pos: SmbPos) -> Option<u32> {
        let explicit = self
            .nram
            .get(&(pos.x, pos.y))
            .and_then(|sets| sets.iter().next().copied());
        let bound = explicit.map_or(MAX_NRAM_SET, u64::from).min(MAX_NRAM_SET);
        for set in 0..bound {
            let key = set << 32 | u64::from(pos.x) << 16 | u64::from(pos.y);
            if self.random_hit(Class::Nram, key) {
                return Some(set as u32);
            }
        }
        explicit
    }

    /// Whether the slot at `pos` can host a design needing
    /// `required_sets` NRAM configuration sets: the slot itself is alive
    /// and no dead NRAM set index falls below `required_sets`. This is
    /// the *conservative prefix view* the heuristic placer uses — every
    /// cluster is assumed to need all sets up to the design's folding
    /// depth.
    pub fn slot_usable(&self, pos: SmbPos, required_sets: u32) -> bool {
        if self.slot_defective(pos) {
            return false;
        }
        (0..required_sets).all(|set| !self.nram_set_defective(pos, set))
    }

    /// Whether the slot at `pos` can host a cluster that is active in
    /// exactly the NRAM configuration sets `sets`: the slot is alive and
    /// every listed set survives. This is the *precise per-cluster view*
    /// the exact-assignment encoder uses — a cluster idle in a slice
    /// tolerates that slice's set being dead.
    pub fn slot_usable_for_sets(&self, pos: SmbPos, sets: &[u32]) -> bool {
        if self.slot_defective(pos) {
            return false;
        }
        sets.iter().all(|&set| !self.nram_set_defective(pos, set))
    }

    /// Classifies a slot against a per-cluster required set list — the
    /// raw material for unsatisfiable-core summaries ("which defect
    /// class made the instance infeasible").
    pub fn classify_slot(&self, pos: SmbPos, sets: &[u32]) -> SlotClass {
        if self.slot_defective(pos) {
            return SlotClass::DeadSlot;
        }
        match sets.iter().find(|&&s| self.nram_set_defective(pos, s)) {
            Some(&set) => SlotClass::DeadNramSet(set),
            None => SlotClass::Usable,
        }
    }

    /// Whether a routing-resource wire node is broken. Sources and sinks
    /// never are (they fail with their slot).
    pub fn wire_defective(&self, kind: &RrNodeKind) -> bool {
        match wire_key(kind) {
            Some(key) => self.wires.contains(&key) || self.random_hit(Class::Wire, key),
            None => false,
        }
    }

    /// Whether the programmable switch between two wire nodes is stuck
    /// open. Switches are bidirectional: the answer is symmetric in the
    /// argument order. Pin connections (source/sink endpoints) never
    /// fail individually.
    pub fn switch_defective(&self, a: &RrNodeKind, b: &RrNodeKind) -> bool {
        let (Some(ka), Some(kb)) = (wire_key(a), wire_key(b)) else {
            return false;
        };
        let (lo, hi) = if ka <= kb { (ka, kb) } else { (kb, ka) };
        self.switches.contains(&(lo, hi)) || self.random_hit(Class::Switch, mix(lo) ^ hi)
    }

    /// Tallies the defects this map inflicts on a concrete grid and
    /// channel configuration (wire/switch counts cover segment wires and
    /// their pairwise switches only — the dominant populations).
    pub fn tally(&self, grid: Grid, channels: &ChannelConfig) -> DefectCounts {
        let mut counts = DefectCounts::default();
        for pos in grid.iter() {
            counts.total_slots += 1;
            if self.slot_defective(pos) {
                counts.dead_slots += 1;
            } else if self.first_dead_nram_set(pos).is_some() {
                counts.degraded_nram_slots += 1;
            }
        }
        for kind in enumerate_wires(grid, channels) {
            counts.total_wires += 1;
            if self.wire_defective(&kind) {
                counts.dead_wires += 1;
            }
        }
        counts
    }

    /// Parses the line-oriented defect file format. See [`Self::to_text`]
    /// for the grammar; `#` starts a comment, blank lines are skipped,
    /// and `\r\n` line endings (fabric testers love them) are accepted.
    ///
    /// The parser is strict about data it cannot faithfully represent:
    /// slot coordinates beyond `u16`, wire-key fields beyond 15 bits and
    /// NRAM set indices beyond the modeled storage depth are typed
    /// errors (they used to truncate silently, aliasing onto unrelated
    /// resources), and a resource killed twice is a typed error too — a
    /// duplicate kill line in tester output almost always means a
    /// miscollated file rather than a doubly-dead slot.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its 1-based number.
    pub fn parse(text: &str) -> Result<Self, DefectParseError> {
        /// Largest value a 15-bit wire-key field can carry.
        const WIRE_FIELD_MAX: u64 = 0x7FFF;
        let mut map = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut fields = body.split_whitespace();
            let record = fields.next().unwrap_or("");
            let mut num = |what: &str| -> Result<u64, DefectParseError> {
                let field = fields.next().ok_or_else(|| DefectParseError {
                    line,
                    message: format!("`{record}` record missing {what}"),
                })?;
                field.parse().map_err(|_| DefectParseError {
                    line,
                    message: format!("`{record}` {what}: `{field}` is not a number"),
                })
            };
            let bounded = |value: u64, what: &str, max: u64| -> Result<u64, DefectParseError> {
                if value > max {
                    Err(DefectParseError {
                        line,
                        message: format!("`{record}` {what}: {value} exceeds the maximum {max}"),
                    })
                } else {
                    Ok(value)
                }
            };
            let duplicate = |what: String| DefectParseError {
                line,
                message: format!("duplicate kill record for {what}"),
            };
            match record {
                "rate" => {
                    let field = fields.next().ok_or_else(|| DefectParseError {
                        line,
                        message: "`rate` record missing value".into(),
                    })?;
                    map.rate = field
                        .parse::<f64>()
                        .map_err(|_| DefectParseError {
                            line,
                            message: format!("`rate`: `{field}` is not a number"),
                        })?
                        .clamp(0.0, 1.0);
                }
                "seed" => map.seed = num("seed")?,
                "slot" => {
                    let x = bounded(num("x")?, "x", u64::from(u16::MAX))? as u16;
                    let y = bounded(num("y")?, "y", u64::from(u16::MAX))? as u16;
                    if !map.slots.insert((x, y)) {
                        return Err(duplicate(format!("slot ({x}, {y})")));
                    }
                }
                "nram" => {
                    let x = bounded(num("x")?, "x", u64::from(u16::MAX))? as u16;
                    let y = bounded(num("y")?, "y", u64::from(u16::MAX))? as u16;
                    let set = bounded(num("set")?, "set", MAX_NRAM_SET - 1)? as u32;
                    if !map.nram.entry((x, y)).or_default().insert(set) {
                        return Err(duplicate(format!("nram set {set} of slot ({x}, {y})")));
                    }
                }
                "direct" => {
                    let x = bounded(num("x")?, "x", WIRE_FIELD_MAX)?;
                    let y = bounded(num("y")?, "y", WIRE_FIELD_MAX)?;
                    let dir = num("dir")?;
                    let track = bounded(num("track")?, "track", WIRE_FIELD_MAX)?;
                    if dir > 3 {
                        return Err(DefectParseError {
                            line,
                            message: format!("`direct` dir must be 0-3 (got {dir})"),
                        });
                    }
                    let key = (3 << 60) | (x << 45) | (y << 30) | (track << 15) | dir;
                    if !map.wires.insert(key) {
                        return Err(duplicate(format!("direct link at ({x}, {y})")));
                    }
                }
                "hwire" | "vwire" => {
                    let x = bounded(num("x")?, "x", WIRE_FIELD_MAX)?;
                    let y = bounded(num("y")?, "y", WIRE_FIELD_MAX)?;
                    let track = bounded(num("track")?, "track", WIRE_FIELD_MAX)?;
                    let tag: u64 = if record == "hwire" { 1 } else { 2 };
                    let key = (tag << 60) | (x << 45) | (y << 30) | (track << 15);
                    if !map.wires.insert(key) {
                        return Err(duplicate(format!("{record} at ({x}, {y}) track {track}")));
                    }
                }
                "grow" | "gcol" => {
                    let (axis, tag): (&str, u64) =
                        if record == "grow" { ("y", 4) } else { ("x", 5) };
                    let at = bounded(num(axis)?, axis, WIRE_FIELD_MAX)?;
                    let track = bounded(num("track")?, "track", WIRE_FIELD_MAX)?;
                    let key = (tag << 60) | (at << 45) | (track << 30);
                    if !map.wires.insert(key) {
                        return Err(duplicate(format!("{record} {at} track {track}")));
                    }
                }
                "switch" => {
                    let (a, b) = (num("key_a")?, num("key_b")?);
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    if !map.switches.insert((lo, hi)) {
                        return Err(duplicate(format!("switch ({lo}, {hi})")));
                    }
                }
                other => {
                    return Err(DefectParseError {
                        line,
                        message: format!(
                            "unknown record `{other}` (expected rate, seed, slot, nram, \
                             direct, hwire, vwire, grow, gcol or switch)"
                        ),
                    });
                }
            }
            if let Some(extra) = fields.next() {
                return Err(DefectParseError {
                    line,
                    message: format!("trailing field `{extra}` after `{record}` record"),
                });
            }
        }
        Ok(map)
    }

    /// Serializes the map back into the text format [`Self::parse`]
    /// accepts. Round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# nanomap defect map v1\n");
        if self.rate > 0.0 {
            out.push_str(&format!("rate {}\nseed {}\n", self.rate, self.seed));
        }
        for &(x, y) in &self.slots {
            out.push_str(&format!("slot {x} {y}\n"));
        }
        for (&(x, y), sets) in &self.nram {
            for set in sets {
                out.push_str(&format!("nram {x} {y} {set}\n"));
            }
        }
        for &key in &self.wires {
            let (tag, a, b, c, d) = (
                key >> 60,
                (key >> 45) & 0x7FFF,
                (key >> 30) & 0x7FFF,
                (key >> 15) & 0x7FFF,
                key & 0x7FFF,
            );
            match tag {
                1 => out.push_str(&format!("hwire {a} {b} {c}\n")),
                2 => out.push_str(&format!("vwire {a} {b} {c}\n")),
                3 => out.push_str(&format!("direct {a} {b} {d} {c}\n")),
                4 => out.push_str(&format!("grow {a} {b}\n")),
                _ => out.push_str(&format!("gcol {a} {b}\n")),
            }
        }
        for &(a, b) in &self.switches {
            out.push_str(&format!("switch {a} {b}\n"));
        }
        out
    }
}

/// Enumerates the segment-wire, direct-link and global-line node kinds of
/// a grid (mirrors `RrGraph::build`'s wire population).
fn enumerate_wires(grid: Grid, channels: &ChannelConfig) -> Vec<RrNodeKind> {
    use crate::interconnect::WireType;
    let mut out = Vec::new();
    for pos in grid.iter() {
        for neighbor in grid.neighbors(pos) {
            for track in 0..channels.direct as u16 {
                out.push(RrNodeKind::Direct {
                    from: pos,
                    to: neighbor,
                    track,
                });
            }
        }
    }
    for (tier, span) in [(WireType::Length1, 1u16), (WireType::Length4, 4u16)] {
        for track in 0..channels.tracks(tier) as u16 {
            for y in 0..grid.height {
                let mut x = 0;
                while x < grid.width {
                    let s = span.min(grid.width - x);
                    out.push(RrNodeKind::HWire {
                        at: SmbPos::new(x, y),
                        span: s,
                        track,
                    });
                    x += s;
                }
            }
            for x in 0..grid.width {
                let mut y = 0;
                while y < grid.height {
                    let s = span.min(grid.height - y);
                    out.push(RrNodeKind::VWire {
                        at: SmbPos::new(x, y),
                        span: s,
                        track,
                    });
                    y += s;
                }
            }
        }
    }
    for track in 0..channels.global as u16 {
        for y in 0..grid.height {
            out.push(RrNodeKind::GlobalRow { y, track });
        }
        for x in 0..grid.width {
            out.push(RrNodeKind::GlobalCol { x, track });
        }
    }
    out
}

/// Why a slot can or cannot host a specific cluster (see
/// [`DefectMap::classify_slot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotClass {
    /// Alive, all required NRAM sets survive.
    Usable,
    /// The whole SMB is dead.
    DeadSlot,
    /// The SMB is alive but the named required NRAM set is dead.
    DeadNramSet(u32),
}

impl fmt::Display for SlotClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usable => write!(f, "usable"),
            Self::DeadSlot => write!(f, "dead slot"),
            Self::DeadNramSet(set) => write!(f, "dead NRAM set {set}"),
        }
    }
}

/// Defect totals over a concrete grid (see [`DefectMap::tally`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefectCounts {
    /// Slots on the grid.
    pub total_slots: u32,
    /// Entirely dead slots.
    pub dead_slots: u32,
    /// Alive slots with at least one dead NRAM configuration set.
    pub degraded_nram_slots: u32,
    /// Wire resources on the grid.
    pub total_wires: u32,
    /// Broken wire resources.
    pub dead_wires: u32,
}

impl DefectCounts {
    /// Fraction of slots that are entirely dead.
    pub fn slot_loss(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            f64::from(self.dead_slots) / f64::from(self.total_slots)
        }
    }
}

/// A malformed defect-map file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DefectParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "defect map line {}: {}", self.line, self.message)
    }
}

impl Error for DefectParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::WireType;

    #[test]
    fn none_is_empty_and_never_defective() {
        let map = DefectMap::none();
        assert!(map.is_empty());
        for x in 0..8 {
            for y in 0..8 {
                assert!(!map.slot_defective(SmbPos::new(x, y)));
                assert!(map.slot_usable(SmbPos::new(x, y), 64));
            }
        }
    }

    #[test]
    fn random_model_is_deterministic_and_seed_sensitive() {
        let a = DefectMap::uniform(0.3, 7);
        let b = DefectMap::uniform(0.3, 7);
        let c = DefectMap::uniform(0.3, 8);
        let mut differs = false;
        for x in 0..16 {
            for y in 0..16 {
                let pos = SmbPos::new(x, y);
                assert_eq!(a.slot_defective(pos), b.slot_defective(pos));
                differs |= a.slot_defective(pos) != c.slot_defective(pos);
            }
        }
        assert!(differs, "different seeds must disagree somewhere");
    }

    #[test]
    fn random_rate_is_roughly_honoured() {
        let map = DefectMap::uniform(0.1, 99);
        let mut dead = 0;
        let n = 64 * 64;
        for x in 0..64 {
            for y in 0..64 {
                if map.slot_defective(SmbPos::new(x, y)) {
                    dead += 1;
                }
            }
        }
        let frac = f64::from(dead) / f64::from(n);
        assert!((frac - 0.1).abs() < 0.03, "observed rate {frac}");
    }

    #[test]
    fn decisions_are_grid_independent() {
        // The same slot must answer identically regardless of any grid
        // context — there is none in the API, but assert the wire case
        // too: a wire's verdict depends only on its identity.
        let map = DefectMap::uniform(0.2, 5);
        let w = RrNodeKind::HWire {
            at: SmbPos::new(3, 1),
            span: 4,
            track: 2,
        };
        assert_eq!(map.wire_defective(&w), map.wire_defective(&w));
    }

    #[test]
    fn explicit_records_round_trip_through_text() {
        let mut map = DefectMap::uniform(0.05, 17);
        map.kill_slot(SmbPos::new(1, 2));
        map.kill_nram_set(SmbPos::new(0, 0), 4);
        let text = map.to_text();
        let parsed = DefectMap::parse(&text).unwrap();
        assert_eq!(parsed, map);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parse_accepts_comments_and_all_records() {
        let text = "# header\n\nrate 0.25\nseed 3\nslot 0 1  # dead SMB\n\
                    nram 2 2 7\nhwire 1 1 0\nvwire 0 3 1\ndirect 1 1 0 2\n\
                    grow 2 0\ngcol 1 1\nswitch 9 4\n";
        let map = DefectMap::parse(text).unwrap();
        assert!((map.rate() - 0.25).abs() < 1e-12);
        assert_eq!(map.seed(), 3);
        assert!(map.slot_defective(SmbPos::new(0, 1)));
        // The explicit kill is visible regardless of what the random
        // model (rate 0.25) layers on top of the same slot.
        assert!(map.nram_set_defective(SmbPos::new(2, 2), 7));
        assert!(map
            .first_dead_nram_set(SmbPos::new(2, 2))
            .is_some_and(|s| s <= 7));
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        for (text, line) in [
            ("slot 1", 1),
            ("slot a b", 1),
            ("slot 1 2 3", 1),
            ("bogus 1 2", 1),
            ("slot 0 0\nnram 1", 2),
            ("direct 0 0 9 0", 1),
            ("rate fast", 1),
        ] {
            let err = DefectMap::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn parse_rejects_duplicate_kill_lines() {
        for (text, line) in [
            ("slot 1 2\nslot 1 2", 2),
            ("nram 0 0 4\nnram 0 0 4", 2),
            ("hwire 1 1 0\nhwire 1 1 0", 2),
            ("vwire 0 3 1\n# fine\nvwire 0 3 1", 3),
            ("direct 1 1 0 2\ndirect 1 1 0 2", 2),
            ("grow 2 0\ngrow 2 0", 2),
            ("gcol 1 1\ngcol 1 1", 2),
            // Switches are symmetric: the swapped pair is the same switch.
            ("switch 9 4\nswitch 4 9", 2),
        ] {
            let err = DefectMap::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
            assert!(err.to_string().contains("duplicate"), "{text:?}: {err}");
        }
        // Distinct resources sharing coordinates are not duplicates.
        let map = DefectMap::parse("slot 1 2\nnram 1 2 0\nnram 1 2 1\nhwire 1 2 0\n").unwrap();
        assert!(map.slot_defective(SmbPos::new(1, 2)));
    }

    #[test]
    fn parse_rejects_out_of_range_fields() {
        for text in [
            "slot 65536 0",       // x beyond u16 (would truncate to 0)
            "slot 0 70000",       // y beyond u16
            "nram 99999 0 0",     // coordinate beyond u16
            "nram 0 0 64",        // set index beyond modeled storage depth
            "hwire 32768 0 0",    // 15-bit wire-key field overflow
            "vwire 0 0 40000",    // track overflow
            "direct 0 32768 0 0", // y overflow
            "grow 32768 0",       // row overflow
            "gcol 0 32768",       // track overflow
        ] {
            let err = DefectMap::parse(text).unwrap_err();
            assert_eq!(err.line, 1, "{text:?}");
            assert!(err.to_string().contains("exceeds"), "{text:?}: {err}");
        }
        // The boundary values themselves are accepted.
        DefectMap::parse("slot 65535 65535\nnram 0 0 63\nhwire 32767 0 32767\n").unwrap();
    }

    #[test]
    fn parse_accepts_mixed_crlf_line_endings() {
        let text = "rate 0.1\r\nseed 9\nslot 3 4\r\nnram 1 1 2\n# comment\r\nswitch 2 8\r\n";
        let map = DefectMap::parse(text).unwrap();
        assert!((map.rate() - 0.1).abs() < 1e-12);
        assert!(map.slot_defective(SmbPos::new(3, 4)));
        assert!(map.nram_set_defective(SmbPos::new(1, 1), 2));
        // And errors on CRLF lines still carry the right line number.
        let err = DefectMap::parse("slot 1 1\r\nslot 1 1\r\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn nram_sets_fail_independently_under_the_random_model() {
        // Each configuration set is a separate nanotube array: at a
        // given slot, different sets must reach independent verdicts,
        // and a set's verdict must be stable.
        let map = DefectMap::uniform(0.3, 77);
        let pos = SmbPos::new(5, 5);
        let verdicts: Vec<bool> = (0..64).map(|s| map.nram_set_defective(pos, s)).collect();
        let dead = verdicts.iter().filter(|&&d| d).count();
        // At rate 0.3 over 64 sets, all-alive or all-dead would each be
        // astronomically unlikely; either means the sets are coupled.
        assert!(dead > 0 && dead < 64, "dead sets: {dead}/64");
        for (s, &was) in verdicts.iter().enumerate() {
            assert_eq!(map.nram_set_defective(pos, s as u32), was);
        }
        // Sets at or beyond the modeled depth never fail randomly.
        assert!(!map.nram_set_defective(pos, 64));
        assert!(!map.nram_set_defective(pos, 1000));
    }

    #[test]
    fn precise_set_view_is_weaker_than_the_prefix_view() {
        // `slot_usable` asks for a contiguous prefix of sets; a cluster
        // that is only active in specific slices needs only those.
        let mut map = DefectMap::none();
        map.kill_nram_set(SmbPos::new(4, 4), 2);
        // Prefix view: any design needing 3+ sets rejects the slot.
        assert!(!map.slot_usable(SmbPos::new(4, 4), 3));
        // Precise view: a cluster active in sets {0, 1, 5} dodges it.
        assert!(map.slot_usable_for_sets(SmbPos::new(4, 4), &[0, 1, 5]));
        assert!(!map.slot_usable_for_sets(SmbPos::new(4, 4), &[0, 2]));
        // Both views agree a dead slot is dead.
        map.kill_slot(SmbPos::new(4, 4));
        assert!(!map.slot_usable_for_sets(SmbPos::new(4, 4), &[0]));
    }

    #[test]
    fn classify_slot_names_the_failing_resource() {
        let mut map = DefectMap::none();
        map.kill_nram_set(SmbPos::new(1, 0), 3);
        map.kill_slot(SmbPos::new(2, 0));
        assert_eq!(
            map.classify_slot(SmbPos::new(0, 0), &[0, 1]),
            SlotClass::Usable
        );
        assert_eq!(
            map.classify_slot(SmbPos::new(1, 0), &[1, 3]),
            SlotClass::DeadNramSet(3)
        );
        assert_eq!(
            map.classify_slot(SmbPos::new(1, 0), &[0, 1]),
            SlotClass::Usable
        );
        assert_eq!(
            map.classify_slot(SmbPos::new(2, 0), &[0]),
            SlotClass::DeadSlot
        );
    }

    #[test]
    fn nram_degradation_is_graceful() {
        let mut map = DefectMap::none();
        map.kill_nram_set(SmbPos::new(2, 2), 8);
        // A shallow design (needs 8 sets: indices 0..8) still fits.
        assert!(map.slot_usable(SmbPos::new(2, 2), 8));
        // A deeper one (needs index 8) does not.
        assert!(!map.slot_usable(SmbPos::new(2, 2), 9));
    }

    #[test]
    fn switch_defects_are_symmetric() {
        let map = DefectMap::uniform(0.4, 21);
        let a = RrNodeKind::HWire {
            at: SmbPos::new(0, 0),
            span: 1,
            track: 0,
        };
        let b = RrNodeKind::VWire {
            at: SmbPos::new(0, 0),
            span: 4,
            track: 1,
        };
        assert_eq!(map.switch_defective(&a, &b), map.switch_defective(&b, &a));
    }

    #[test]
    fn pin_nodes_never_fail_individually() {
        let map = DefectMap::uniform(1.0, 1);
        let src = RrNodeKind::Source(SmbPos::new(0, 0));
        let snk = RrNodeKind::Sink(SmbPos::new(1, 1));
        assert!(!map.wire_defective(&src));
        assert!(!map.switch_defective(&src, &snk));
    }

    #[test]
    fn tally_counts_scale_with_rate() {
        let grid = Grid::new(8, 8);
        let channels = ChannelConfig::nature();
        let clean = DefectMap::none().tally(grid, &channels);
        assert_eq!(clean.dead_slots, 0);
        assert_eq!(clean.dead_wires, 0);
        assert_eq!(clean.total_slots, 64);
        assert!(clean.total_wires > 0);

        let dirty = DefectMap::uniform(0.2, 11).tally(grid, &channels);
        assert!(dirty.dead_slots > 0);
        assert!(dirty.dead_wires > 0);
        assert!(dirty.slot_loss() > 0.05 && dirty.slot_loss() < 0.4);
        // Wire tally covers every tier.
        let _ = WireType::Direct;
    }
}
