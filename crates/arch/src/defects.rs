//! Fabric defect model.
//!
//! Nano-scale fabrics are defect-prone: carbon-nanotube NRAM cells, LEs,
//! wire segments and programmable switches all fail at non-trivial rates.
//! A [`DefectMap`] records which resources of a NATURE instance are
//! broken, from two composable sources:
//!
//! * **seeded random generation** — every resource is independently
//!   defective with a uniform probability (`rate`), decided by hashing the
//!   resource's *identity* together with the seed. Decisions are therefore
//!   stable across grid sizes: enlarging the grid during placement retries
//!   never resurrects or kills an already-decided slot or wire;
//! * **an explicit defect file** — a simple line-oriented text format
//!   (`slot`, `nram`, `direct`, `hwire`, `vwire`, `grow`, `gcol`,
//!   `switch` records) produced by fabric test equipment or by hand.
//!
//! Defect classes:
//!
//! * **slots** — the whole SMB at a position is dead (placement treats it
//!   as illegal);
//! * **NRAM sets** — one configuration set of a slot's NRAM is dead; the
//!   slot remains usable by designs that need fewer configuration sets
//!   than the dead one's index (graceful degradation under shallow
//!   folding);
//! * **wires** — an interconnect segment (direct link, length-1/4 track
//!   or global line) is broken and is pruned from the routing-resource
//!   graph;
//! * **switches** — a programmable wire-to-wire switch is stuck open and
//!   its edge is pruned from the routing-resource graph.
//!
//! ```
//! use nanomap_arch::{DefectMap, SmbPos};
//!
//! let map = DefectMap::uniform(0.05, 42);
//! // Deterministic: the same slot answers the same way forever.
//! let broken = map.slot_defective(SmbPos::new(3, 4));
//! assert_eq!(broken, map.slot_defective(SmbPos::new(3, 4)));
//!
//! let explicit = DefectMap::parse("slot 1 2\nnram 0 0 4\n").unwrap();
//! assert!(explicit.slot_defective(SmbPos::new(1, 2)));
//! assert!(explicit.slot_usable(SmbPos::new(0, 0), 4));
//! assert!(!explicit.slot_usable(SmbPos::new(0, 0), 5));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::grid::{Grid, SmbPos};
use crate::interconnect::ChannelConfig;
use crate::rrgraph::RrNodeKind;

/// Maximum NRAM set index the random model may declare dead. Matches the
/// deepest configuration storage any NATURE instance in this repo models.
const MAX_NRAM_SET: u64 = 64;

/// Which fabric resources of a NATURE instance are defective.
///
/// See the [module docs](self) for the defect classes and sources.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DefectMap {
    /// Uniform per-resource defect probability of the random model
    /// (`0.0` disables random defects).
    rate: f64,
    /// Seed of the random model.
    seed: u64,
    /// Explicitly dead SMB slots.
    slots: BTreeSet<(u16, u16)>,
    /// Explicitly dead NRAM configuration sets per slot.
    nram: BTreeMap<(u16, u16), BTreeSet<u32>>,
    /// Explicitly broken wires, by canonical wire key.
    wires: BTreeSet<u64>,
    /// Explicitly stuck-open switches, by ordered wire-key pair.
    switches: BTreeSet<(u64, u64)>,
}

/// Resource classes, used as hash domains so a slot and a wire with the
/// same coordinates draw independent random decisions.
#[derive(Debug, Clone, Copy)]
enum Class {
    Slot = 1,
    Nram = 2,
    Wire = 3,
    Switch = 4,
}

/// SplitMix64 finalizer: a strong bit mixer for hashing resource
/// identities into per-resource PRNG streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical 64-bit key of a routing-resource wire node. Sources and
/// sinks have no key — they model SMB pins, which fail with the slot.
fn wire_key(kind: &RrNodeKind) -> Option<u64> {
    let enc = |tag: u64, a: u64, b: u64, c: u64, d: u64| {
        // 4 bits tag, 15 bits per field: collision-free for any grid this
        // repo can build (coordinates and tracks are u16 in practice far
        // below 2^15).
        (tag << 60) | (a << 45) | (b << 30) | (c << 15) | d
    };
    match *kind {
        RrNodeKind::Source(_) | RrNodeKind::Sink(_) => None,
        RrNodeKind::HWire { at, track, .. } => Some(enc(
            1,
            u64::from(at.x),
            u64::from(at.y),
            u64::from(track),
            0,
        )),
        RrNodeKind::VWire { at, track, .. } => Some(enc(
            2,
            u64::from(at.x),
            u64::from(at.y),
            u64::from(track),
            0,
        )),
        RrNodeKind::Direct { from, to, track } => Some(enc(
            3,
            u64::from(from.x),
            u64::from(from.y),
            u64::from(track),
            // Encode the direction instead of the full destination: a
            // direct link leaves `from` toward one of 4 neighbours.
            match (to.x as i32 - from.x as i32, to.y as i32 - from.y as i32) {
                (1, 0) => 0,
                (-1, 0) => 1,
                (0, 1) => 2,
                _ => 3,
            },
        )),
        RrNodeKind::GlobalRow { y, track } => Some(enc(4, u64::from(y), u64::from(track), 0, 0)),
        RrNodeKind::GlobalCol { x, track } => Some(enc(5, u64::from(x), u64::from(track), 0, 0)),
    }
}

impl DefectMap {
    /// A perfect fabric: no defects of any kind.
    pub fn none() -> Self {
        Self::default()
    }

    /// A uniform random defect model: every slot, wire and switch is
    /// independently defective with probability `rate`; every slot
    /// additionally loses one random NRAM configuration set with
    /// probability `rate`. Out-of-range rates are clamped to `[0, 1]`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 1.0),
            seed,
            ..Self::default()
        }
    }

    /// The uniform defect rate of the random model.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The seed of the random model.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the map can never report a defect.
    pub fn is_empty(&self) -> bool {
        self.rate == 0.0
            && self.slots.is_empty()
            && self.nram.is_empty()
            && self.wires.is_empty()
            && self.switches.is_empty()
    }

    /// Marks a slot as dead.
    pub fn kill_slot(&mut self, pos: SmbPos) {
        self.slots.insert((pos.x, pos.y));
    }

    /// Marks one NRAM configuration set of a slot as dead.
    pub fn kill_nram_set(&mut self, pos: SmbPos, set: u32) {
        self.nram.entry((pos.x, pos.y)).or_default().insert(set);
    }

    /// Per-resource Bernoulli draw, derived from the seed and the
    /// resource identity via [`mix`] feeding a one-step
    /// `XorShift64Star` stream. Order-independent and grid-independent.
    fn random_hit(&self, class: Class, key: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let stream = mix(self.seed ^ mix((class as u64) << 56 | key & 0x00FF_FFFF_FFFF_FFFF));
        let mut rng = nanomap_observe::rng::XorShift64Star::new(stream);
        rng.next_f64() < self.rate
    }

    /// Whether the SMB slot at `pos` is entirely dead.
    pub fn slot_defective(&self, pos: SmbPos) -> bool {
        self.slots.contains(&(pos.x, pos.y))
            || self.random_hit(Class::Slot, u64::from(pos.x) << 16 | u64::from(pos.y))
    }

    /// The lowest dead NRAM configuration set index at `pos`, if any.
    ///
    /// The random model kills at most one set per slot (index uniform in
    /// `0..64`); the explicit file may kill arbitrarily many.
    pub fn first_dead_nram_set(&self, pos: SmbPos) -> Option<u32> {
        let key = u64::from(pos.x) << 16 | u64::from(pos.y);
        let explicit = self
            .nram
            .get(&(pos.x, pos.y))
            .and_then(|sets| sets.iter().next().copied());
        let random = if self.random_hit(Class::Nram, key) {
            let stream = mix(self.seed ^ mix((Class::Nram as u64) << 56 | key | 1 << 55));
            let mut rng = nanomap_observe::rng::XorShift64Star::new(stream);
            Some(rng.below(MAX_NRAM_SET) as u32)
        } else {
            None
        };
        match (explicit, random) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether the slot at `pos` can host a design needing
    /// `required_sets` NRAM configuration sets: the slot itself is alive
    /// and no dead NRAM set index falls below `required_sets`.
    pub fn slot_usable(&self, pos: SmbPos, required_sets: u32) -> bool {
        if self.slot_defective(pos) {
            return false;
        }
        match self.first_dead_nram_set(pos) {
            Some(dead) => dead >= required_sets,
            None => true,
        }
    }

    /// Whether a routing-resource wire node is broken. Sources and sinks
    /// never are (they fail with their slot).
    pub fn wire_defective(&self, kind: &RrNodeKind) -> bool {
        match wire_key(kind) {
            Some(key) => self.wires.contains(&key) || self.random_hit(Class::Wire, key),
            None => false,
        }
    }

    /// Whether the programmable switch between two wire nodes is stuck
    /// open. Switches are bidirectional: the answer is symmetric in the
    /// argument order. Pin connections (source/sink endpoints) never
    /// fail individually.
    pub fn switch_defective(&self, a: &RrNodeKind, b: &RrNodeKind) -> bool {
        let (Some(ka), Some(kb)) = (wire_key(a), wire_key(b)) else {
            return false;
        };
        let (lo, hi) = if ka <= kb { (ka, kb) } else { (kb, ka) };
        self.switches.contains(&(lo, hi)) || self.random_hit(Class::Switch, mix(lo) ^ hi)
    }

    /// Tallies the defects this map inflicts on a concrete grid and
    /// channel configuration (wire/switch counts cover segment wires and
    /// their pairwise switches only — the dominant populations).
    pub fn tally(&self, grid: Grid, channels: &ChannelConfig) -> DefectCounts {
        let mut counts = DefectCounts::default();
        for pos in grid.iter() {
            counts.total_slots += 1;
            if self.slot_defective(pos) {
                counts.dead_slots += 1;
            } else if self.first_dead_nram_set(pos).is_some() {
                counts.degraded_nram_slots += 1;
            }
        }
        for kind in enumerate_wires(grid, channels) {
            counts.total_wires += 1;
            if self.wire_defective(&kind) {
                counts.dead_wires += 1;
            }
        }
        counts
    }

    /// Parses the line-oriented defect file format. See [`Self::to_text`]
    /// for the grammar; `#` starts a comment, blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its 1-based number.
    pub fn parse(text: &str) -> Result<Self, DefectParseError> {
        let mut map = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut fields = body.split_whitespace();
            let record = fields.next().unwrap_or("");
            let mut num = |what: &str| -> Result<u64, DefectParseError> {
                let field = fields.next().ok_or_else(|| DefectParseError {
                    line,
                    message: format!("`{record}` record missing {what}"),
                })?;
                field.parse().map_err(|_| DefectParseError {
                    line,
                    message: format!("`{record}` {what}: `{field}` is not a number"),
                })
            };
            match record {
                "rate" => {
                    let field = fields.next().ok_or_else(|| DefectParseError {
                        line,
                        message: "`rate` record missing value".into(),
                    })?;
                    map.rate = field
                        .parse::<f64>()
                        .map_err(|_| DefectParseError {
                            line,
                            message: format!("`rate`: `{field}` is not a number"),
                        })?
                        .clamp(0.0, 1.0);
                }
                "seed" => map.seed = num("seed")?,
                "slot" => {
                    let (x, y) = (num("x")? as u16, num("y")? as u16);
                    map.slots.insert((x, y));
                }
                "nram" => {
                    let (x, y, set) = (num("x")? as u16, num("y")? as u16, num("set")? as u32);
                    map.nram.entry((x, y)).or_default().insert(set);
                }
                "direct" => {
                    let (x, y, dir, track) = (num("x")?, num("y")?, num("dir")?, num("track")?);
                    if dir > 3 {
                        return Err(DefectParseError {
                            line,
                            message: format!("`direct` dir must be 0-3 (got {dir})"),
                        });
                    }
                    map.wires
                        .insert((3 << 60) | (x << 45) | (y << 30) | (track << 15) | dir);
                }
                "hwire" => {
                    let (x, y, track) = (num("x")?, num("y")?, num("track")?);
                    map.wires
                        .insert((1 << 60) | (x << 45) | (y << 30) | (track << 15));
                }
                "vwire" => {
                    let (x, y, track) = (num("x")?, num("y")?, num("track")?);
                    map.wires
                        .insert((2 << 60) | (x << 45) | (y << 30) | (track << 15));
                }
                "grow" => {
                    let (y, track) = (num("y")?, num("track")?);
                    map.wires.insert((4 << 60) | (y << 45) | (track << 30));
                }
                "gcol" => {
                    let (x, track) = (num("x")?, num("track")?);
                    map.wires.insert((5 << 60) | (x << 45) | (track << 30));
                }
                "switch" => {
                    let (a, b) = (num("key_a")?, num("key_b")?);
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    map.switches.insert((lo, hi));
                }
                other => {
                    return Err(DefectParseError {
                        line,
                        message: format!(
                            "unknown record `{other}` (expected rate, seed, slot, nram, \
                             direct, hwire, vwire, grow, gcol or switch)"
                        ),
                    });
                }
            }
            if let Some(extra) = fields.next() {
                return Err(DefectParseError {
                    line,
                    message: format!("trailing field `{extra}` after `{record}` record"),
                });
            }
        }
        Ok(map)
    }

    /// Serializes the map back into the text format [`Self::parse`]
    /// accepts. Round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# nanomap defect map v1\n");
        if self.rate > 0.0 {
            out.push_str(&format!("rate {}\nseed {}\n", self.rate, self.seed));
        }
        for &(x, y) in &self.slots {
            out.push_str(&format!("slot {x} {y}\n"));
        }
        for (&(x, y), sets) in &self.nram {
            for set in sets {
                out.push_str(&format!("nram {x} {y} {set}\n"));
            }
        }
        for &key in &self.wires {
            let (tag, a, b, c, d) = (
                key >> 60,
                (key >> 45) & 0x7FFF,
                (key >> 30) & 0x7FFF,
                (key >> 15) & 0x7FFF,
                key & 0x7FFF,
            );
            match tag {
                1 => out.push_str(&format!("hwire {a} {b} {c}\n")),
                2 => out.push_str(&format!("vwire {a} {b} {c}\n")),
                3 => out.push_str(&format!("direct {a} {b} {d} {c}\n")),
                4 => out.push_str(&format!("grow {a} {b}\n")),
                _ => out.push_str(&format!("gcol {a} {b}\n")),
            }
        }
        for &(a, b) in &self.switches {
            out.push_str(&format!("switch {a} {b}\n"));
        }
        out
    }
}

/// Enumerates the segment-wire, direct-link and global-line node kinds of
/// a grid (mirrors `RrGraph::build`'s wire population).
fn enumerate_wires(grid: Grid, channels: &ChannelConfig) -> Vec<RrNodeKind> {
    use crate::interconnect::WireType;
    let mut out = Vec::new();
    for pos in grid.iter() {
        for neighbor in grid.neighbors(pos) {
            for track in 0..channels.direct as u16 {
                out.push(RrNodeKind::Direct {
                    from: pos,
                    to: neighbor,
                    track,
                });
            }
        }
    }
    for (tier, span) in [(WireType::Length1, 1u16), (WireType::Length4, 4u16)] {
        for track in 0..channels.tracks(tier) as u16 {
            for y in 0..grid.height {
                let mut x = 0;
                while x < grid.width {
                    let s = span.min(grid.width - x);
                    out.push(RrNodeKind::HWire {
                        at: SmbPos::new(x, y),
                        span: s,
                        track,
                    });
                    x += s;
                }
            }
            for x in 0..grid.width {
                let mut y = 0;
                while y < grid.height {
                    let s = span.min(grid.height - y);
                    out.push(RrNodeKind::VWire {
                        at: SmbPos::new(x, y),
                        span: s,
                        track,
                    });
                    y += s;
                }
            }
        }
    }
    for track in 0..channels.global as u16 {
        for y in 0..grid.height {
            out.push(RrNodeKind::GlobalRow { y, track });
        }
        for x in 0..grid.width {
            out.push(RrNodeKind::GlobalCol { x, track });
        }
    }
    out
}

/// Defect totals over a concrete grid (see [`DefectMap::tally`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefectCounts {
    /// Slots on the grid.
    pub total_slots: u32,
    /// Entirely dead slots.
    pub dead_slots: u32,
    /// Alive slots with at least one dead NRAM configuration set.
    pub degraded_nram_slots: u32,
    /// Wire resources on the grid.
    pub total_wires: u32,
    /// Broken wire resources.
    pub dead_wires: u32,
}

impl DefectCounts {
    /// Fraction of slots that are entirely dead.
    pub fn slot_loss(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            f64::from(self.dead_slots) / f64::from(self.total_slots)
        }
    }
}

/// A malformed defect-map file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DefectParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "defect map line {}: {}", self.line, self.message)
    }
}

impl Error for DefectParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::WireType;

    #[test]
    fn none_is_empty_and_never_defective() {
        let map = DefectMap::none();
        assert!(map.is_empty());
        for x in 0..8 {
            for y in 0..8 {
                assert!(!map.slot_defective(SmbPos::new(x, y)));
                assert!(map.slot_usable(SmbPos::new(x, y), 64));
            }
        }
    }

    #[test]
    fn random_model_is_deterministic_and_seed_sensitive() {
        let a = DefectMap::uniform(0.3, 7);
        let b = DefectMap::uniform(0.3, 7);
        let c = DefectMap::uniform(0.3, 8);
        let mut differs = false;
        for x in 0..16 {
            for y in 0..16 {
                let pos = SmbPos::new(x, y);
                assert_eq!(a.slot_defective(pos), b.slot_defective(pos));
                differs |= a.slot_defective(pos) != c.slot_defective(pos);
            }
        }
        assert!(differs, "different seeds must disagree somewhere");
    }

    #[test]
    fn random_rate_is_roughly_honoured() {
        let map = DefectMap::uniform(0.1, 99);
        let mut dead = 0;
        let n = 64 * 64;
        for x in 0..64 {
            for y in 0..64 {
                if map.slot_defective(SmbPos::new(x, y)) {
                    dead += 1;
                }
            }
        }
        let frac = f64::from(dead) / f64::from(n);
        assert!((frac - 0.1).abs() < 0.03, "observed rate {frac}");
    }

    #[test]
    fn decisions_are_grid_independent() {
        // The same slot must answer identically regardless of any grid
        // context — there is none in the API, but assert the wire case
        // too: a wire's verdict depends only on its identity.
        let map = DefectMap::uniform(0.2, 5);
        let w = RrNodeKind::HWire {
            at: SmbPos::new(3, 1),
            span: 4,
            track: 2,
        };
        assert_eq!(map.wire_defective(&w), map.wire_defective(&w));
    }

    #[test]
    fn explicit_records_round_trip_through_text() {
        let mut map = DefectMap::uniform(0.05, 17);
        map.kill_slot(SmbPos::new(1, 2));
        map.kill_nram_set(SmbPos::new(0, 0), 4);
        let text = map.to_text();
        let parsed = DefectMap::parse(&text).unwrap();
        assert_eq!(parsed, map);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parse_accepts_comments_and_all_records() {
        let text = "# header\n\nrate 0.25\nseed 3\nslot 0 1  # dead SMB\n\
                    nram 2 2 7\nhwire 1 1 0\nvwire 0 3 1\ndirect 1 1 0 2\n\
                    grow 2 0\ngcol 1 1\nswitch 9 4\n";
        let map = DefectMap::parse(text).unwrap();
        assert!((map.rate() - 0.25).abs() < 1e-12);
        assert_eq!(map.seed(), 3);
        assert!(map.slot_defective(SmbPos::new(0, 1)));
        assert_eq!(map.first_dead_nram_set(SmbPos::new(2, 2)), Some(7));
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        for (text, line) in [
            ("slot 1", 1),
            ("slot a b", 1),
            ("slot 1 2 3", 1),
            ("bogus 1 2", 1),
            ("slot 0 0\nnram 1", 2),
            ("direct 0 0 9 0", 1),
            ("rate fast", 1),
        ] {
            let err = DefectMap::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn nram_degradation_is_graceful() {
        let mut map = DefectMap::none();
        map.kill_nram_set(SmbPos::new(2, 2), 8);
        // A shallow design (needs 8 sets: indices 0..8) still fits.
        assert!(map.slot_usable(SmbPos::new(2, 2), 8));
        // A deeper one (needs index 8) does not.
        assert!(!map.slot_usable(SmbPos::new(2, 2), 9));
    }

    #[test]
    fn switch_defects_are_symmetric() {
        let map = DefectMap::uniform(0.4, 21);
        let a = RrNodeKind::HWire {
            at: SmbPos::new(0, 0),
            span: 1,
            track: 0,
        };
        let b = RrNodeKind::VWire {
            at: SmbPos::new(0, 0),
            span: 4,
            track: 1,
        };
        assert_eq!(map.switch_defective(&a, &b), map.switch_defective(&b, &a));
    }

    #[test]
    fn pin_nodes_never_fail_individually() {
        let map = DefectMap::uniform(1.0, 1);
        let src = RrNodeKind::Source(SmbPos::new(0, 0));
        let snk = RrNodeKind::Sink(SmbPos::new(1, 1));
        assert!(!map.wire_defective(&src));
        assert!(!map.switch_defective(&src, &snk));
    }

    #[test]
    fn tally_counts_scale_with_rate() {
        let grid = Grid::new(8, 8);
        let channels = ChannelConfig::nature();
        let clean = DefectMap::none().tally(grid, &channels);
        assert_eq!(clean.dead_slots, 0);
        assert_eq!(clean.dead_wires, 0);
        assert_eq!(clean.total_slots, 64);
        assert!(clean.total_wires > 0);

        let dirty = DefectMap::uniform(0.2, 11).tally(grid, &channels);
        assert!(dirty.dead_slots > 0);
        assert!(dirty.dead_wires > 0);
        assert!(dirty.slot_loss() > 0.05 && dirty.slot_loss() < 0.4);
        // Wire tally covers every tier.
        let _ = WireType::Direct;
    }
}
