//! Binary bitstream serialization of a [`ConfigBitmap`].
//!
//! The NRAM programmer consumes a flat byte stream; this module defines a
//! compact, versioned layout and its parser (so bitstreams can be stored,
//! diffed and reloaded):
//!
//! ```text
//! magic  "NMAP"          4 bytes
//! version                u16
//! lut_inputs             u16
//! num_cycles             u32
//! per cycle:
//!   num_smbs             u32
//!   per SMB:
//!     x, y               u16, u16
//!     num_le_slots       u16
//!     per LE slot:       present: u8 (0/1)
//!       if present:
//!         truth_bits     u64
//!         num_selects    u16, then u16 each
//!         ff_capture     u8
//!         registered     u8
//!   num_nets             u32
//!   per net:             num_nodes u32, then u32 node ids
//! ```
//!
//! All integers little-endian.

use crate::config::{ConfigBitmap, CycleConfig, LeConfig, RoutingConfig, SmbConfig};
use crate::grid::SmbPos;

/// Magic prefix of a NanoMap bitstream.
pub const BITSTREAM_MAGIC: &[u8; 4] = b"NMAP";
/// Current layout version.
pub const BITSTREAM_VERSION: u16 = 1;

/// Errors from [`unpack_bitstream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The magic prefix is missing.
    BadMagic,
    /// The version is unsupported.
    BadVersion(u16),
    /// The stream ended prematurely or a length field is inconsistent.
    Truncated,
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing NMAP bitstream magic"),
            Self::BadVersion(v) => write!(f, "unsupported bitstream version {v}"),
            Self::Truncated => write!(f, "truncated bitstream"),
        }
    }
}

impl std::error::Error for BitstreamError {}

/// Serializes a bitmap to the flat byte layout.
pub fn pack_bitstream(bitmap: &ConfigBitmap, lut_inputs: u32) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BITSTREAM_MAGIC);
    out.extend_from_slice(&BITSTREAM_VERSION.to_le_bytes());
    out.extend_from_slice(&(lut_inputs as u16).to_le_bytes());
    out.extend_from_slice(&(bitmap.cycles.len() as u32).to_le_bytes());
    for cycle in &bitmap.cycles {
        out.extend_from_slice(&(cycle.smbs.len() as u32).to_le_bytes());
        for smb in &cycle.smbs {
            out.extend_from_slice(&smb.pos.x.to_le_bytes());
            out.extend_from_slice(&smb.pos.y.to_le_bytes());
            out.extend_from_slice(&(smb.les.len() as u16).to_le_bytes());
            for le in &smb.les {
                match le {
                    None => out.push(0),
                    Some(le) => {
                        out.push(1);
                        out.extend_from_slice(&le.truth_bits.to_le_bytes());
                        out.extend_from_slice(&(le.input_select.len() as u16).to_le_bytes());
                        for &sel in &le.input_select {
                            out.extend_from_slice(&sel.to_le_bytes());
                        }
                        out.push(le.ff_capture);
                        out.push(u8::from(le.registered));
                    }
                }
            }
        }
        out.extend_from_slice(&(cycle.routing.nets.len() as u32).to_le_bytes());
        for net in &cycle.routing.nets {
            out.extend_from_slice(&(net.len() as u32).to_le_bytes());
            for &node in net {
                out.extend_from_slice(&node.to_le_bytes());
            }
        }
    }
    nanomap_observe::incr("bitstream.bytes_emitted", out.len() as u64);
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BitstreamError> {
        if self.pos + n > self.data.len() {
            return Err(BitstreamError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, BitstreamError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BitstreamError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, BitstreamError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, BitstreamError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Parses a bitstream back into a bitmap. Returns `(bitmap, lut_inputs)`.
///
/// # Errors
///
/// Returns a [`BitstreamError`] on malformed input.
pub fn unpack_bitstream(data: &[u8]) -> Result<(ConfigBitmap, u32), BitstreamError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != BITSTREAM_MAGIC {
        return Err(BitstreamError::BadMagic);
    }
    let version = r.u16()?;
    if version != BITSTREAM_VERSION {
        return Err(BitstreamError::BadVersion(version));
    }
    let lut_inputs = u32::from(r.u16()?);
    let num_cycles = r.u32()? as usize;
    let mut cycles = Vec::with_capacity(num_cycles.min(1 << 20));
    for _ in 0..num_cycles {
        let num_smbs = r.u32()? as usize;
        let mut smbs = Vec::with_capacity(num_smbs.min(1 << 20));
        for _ in 0..num_smbs {
            let x = r.u16()?;
            let y = r.u16()?;
            let slots = r.u16()? as usize;
            let mut les = Vec::with_capacity(slots);
            for _ in 0..slots {
                if r.u8()? == 0 {
                    les.push(None);
                } else {
                    let truth_bits = r.u64()?;
                    let n = r.u16()? as usize;
                    let mut input_select = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        input_select.push(r.u16()?);
                    }
                    let ff_capture = r.u8()?;
                    let registered = r.u8()? != 0;
                    les.push(Some(LeConfig {
                        truth_bits,
                        input_select,
                        ff_capture,
                        registered,
                    }));
                }
            }
            smbs.push(SmbConfig {
                pos: SmbPos::new(x, y),
                les,
            });
        }
        let num_nets = r.u32()? as usize;
        let mut nets = Vec::with_capacity(num_nets.min(1 << 20));
        for _ in 0..num_nets {
            let n = r.u32()? as usize;
            let mut nodes = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                nodes.push(r.u32()?);
            }
            nets.push(nodes);
        }
        cycles.push(CycleConfig {
            smbs,
            routing: RoutingConfig { nets },
        });
    }
    Ok((ConfigBitmap { cycles }, lut_inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfigBitmap {
        ConfigBitmap {
            cycles: vec![
                CycleConfig {
                    smbs: vec![SmbConfig {
                        pos: SmbPos::new(1, 2),
                        les: vec![
                            Some(LeConfig {
                                truth_bits: 0xBEEF,
                                input_select: vec![1, 0x8002, 3, 4],
                                ff_capture: 0b11,
                                registered: true,
                            }),
                            None,
                        ],
                    }],
                    routing: RoutingConfig {
                        nets: vec![vec![10, 20, 30], vec![]],
                    },
                },
                CycleConfig {
                    smbs: vec![],
                    routing: RoutingConfig::default(),
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let bitmap = sample();
        let bytes = pack_bitstream(&bitmap, 4);
        let (parsed, lut_inputs) = unpack_bitstream(&bytes).unwrap();
        assert_eq!(parsed, bitmap);
        assert_eq!(lut_inputs, 4);
    }

    #[test]
    fn magic_and_version_checked() {
        let bitmap = sample();
        let mut bytes = pack_bitstream(&bitmap, 4);
        bytes[0] = b'X';
        assert_eq!(unpack_bitstream(&bytes), Err(BitstreamError::BadMagic));
        let mut bytes = pack_bitstream(&bitmap, 4);
        bytes[4] = 99;
        assert!(matches!(
            unpack_bitstream(&bytes),
            Err(BitstreamError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = pack_bitstream(&sample(), 4);
        for len in 0..bytes.len() {
            let result = unpack_bitstream(&bytes[..len]);
            assert!(result.is_err(), "prefix of {len} bytes must not parse");
        }
    }

    #[test]
    fn empty_bitmap_round_trips() {
        let bitmap = ConfigBitmap::default();
        let bytes = pack_bitstream(&bitmap, 5);
        let (parsed, lut_inputs) = unpack_bitstream(&bytes).unwrap();
        assert_eq!(parsed, bitmap);
        assert_eq!(lut_inputs, 5);
    }
}
