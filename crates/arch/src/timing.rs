//! Timing model of a NATURE instance (100 nm technology).
//!
//! All constants are calibrated against the paper's reported numbers:
//!
//! * a detailed layout/SPICE study gives a **160 ps** on-chip
//!   reconfiguration time for a 16-set NRAM (Section 2.1.2);
//! * the no-folding delays of Table 1 imply roughly **0.54 ns per LUT
//!   level** including local interconnect (e.g. ex1: depth 24 → 12.9 ns);
//! * the level-1 delays imply roughly **0.17 ns** of per-folding-cycle
//!   overhead (reconfiguration plus clocking).
//!
//! The folding-cycle period for level-`p` folding is
//!
//! ```text
//! T(p) = p * (t_lut + t_local) + t_reconf + t_clk
//! ```
//!
//! and the overall circuit delay is `num_planes * stages_per_plane * T(p)`
//! (every plane runs the same number of folding stages to stay globally
//! synchronized). For no-folding, the plane cycle is simply
//! `depth * (t_lut + t_local) + t_clk`.

use crate::interconnect::WireType;

/// Time in nanoseconds.
pub type Ns = f64;

/// Delay parameters of the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// LUT evaluation delay.
    pub lut_delay: Ns,
    /// Average intra-SMB (local crossbar) interconnect delay per level.
    pub local_interconnect: Ns,
    /// Intra-MB connection delay (one crossbar level instead of two; used
    /// by post-route timing when both LEs share a macroblock).
    pub local_intra_mb: Ns,
    /// On-chip NRAM reconfiguration time (160 ps for a 16-set NRAM).
    pub reconfiguration: Ns,
    /// Flip-flop setup plus clock-to-Q charged once per cycle.
    pub clocking: Ns,
    /// Delay of a direct link between adjacent SMBs.
    pub wire_direct: Ns,
    /// Delay of a length-1 segment (plus switch).
    pub wire_length1: Ns,
    /// Delay of a length-4 segment (plus switch).
    pub wire_length4: Ns,
    /// Delay of a global interconnect line.
    pub wire_global: Ns,
}

impl TimingModel {
    /// The 100 nm model calibrated against the paper (see module docs).
    pub fn nature_100nm() -> Self {
        Self {
            lut_delay: 0.32,
            local_interconnect: 0.2175,
            local_intra_mb: 0.12,
            reconfiguration: 0.16,
            clocking: 0.01,
            wire_direct: 0.25,
            wire_length1: 0.35,
            wire_length4: 0.55,
            wire_global: 1.10,
        }
    }

    /// Delay of one logic level (LUT plus average local interconnect).
    pub fn level_delay(&self) -> Ns {
        self.lut_delay + self.local_interconnect
    }

    /// Folding-cycle period for level-`p` folding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn folding_cycle(&self, p: u32) -> Ns {
        assert!(p > 0, "folding level must be positive");
        f64::from(p) * self.level_delay() + self.reconfiguration + self.clocking
    }

    /// Plane cycle without folding (a plane of the given depth runs as pure
    /// combinational logic between register boundaries).
    pub fn plane_cycle_no_folding(&self, depth: u32) -> Ns {
        f64::from(depth) * self.level_delay() + self.clocking
    }

    /// Overall circuit delay for level-`p` folding: every one of the
    /// `num_planes` planes executes `stages` folding cycles.
    pub fn circuit_delay(&self, num_planes: u32, stages: u32, p: u32) -> Ns {
        f64::from(num_planes) * f64::from(stages) * self.folding_cycle(p)
    }

    /// Overall circuit delay without folding.
    pub fn circuit_delay_no_folding(&self, num_planes: u32, depth_max: u32) -> Ns {
        f64::from(num_planes) * self.plane_cycle_no_folding(depth_max)
    }

    /// Delay of one hop on a wire of the given type.
    pub fn wire_delay(&self, wire: WireType) -> Ns {
        match wire {
            WireType::Direct => self.wire_direct,
            WireType::Length1 => self.wire_length1,
            WireType::Length4 => self.wire_length4,
            WireType::Global => self.wire_global,
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::nature_100nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1, ex1: depth-24 single plane, no folding → 12.90 ns.
    #[test]
    fn no_folding_delay_matches_table1_ex1() {
        let t = TimingModel::nature_100nm();
        let delay = t.circuit_delay_no_folding(1, 24);
        assert!((delay - 12.90).abs() < 0.5, "got {delay}");
    }

    /// Table 1, ex1: level-1 folding over 24 stages → 17.02 ns.
    #[test]
    fn level1_delay_matches_table1_ex1() {
        let t = TimingModel::nature_100nm();
        let delay = t.circuit_delay(1, 24, 1);
        assert!((delay - 17.02).abs() < 0.6, "got {delay}");
    }

    /// Folding level up → fewer cycles but longer period; overall delay
    /// decreases toward the no-folding bound (Section 2.2).
    #[test]
    fn delay_decreases_with_folding_level() {
        let t = TimingModel::nature_100nm();
        let depth = 24u32;
        let mut last = f64::INFINITY;
        for p in [1u32, 2, 4, 8, 24] {
            let stages = depth.div_ceil(p);
            let delay = t.circuit_delay(1, stages, p);
            assert!(delay <= last + 1e-9, "p={p}");
            last = delay;
        }
        assert!(t.circuit_delay_no_folding(1, depth) < last);
    }

    #[test]
    fn intra_mb_is_fastest_local_path() {
        let t = TimingModel::nature_100nm();
        assert!(t.local_intra_mb < t.local_interconnect);
        assert!(t.local_interconnect < t.wire_delay(WireType::Direct));
    }

    #[test]
    fn wire_delays_are_ordered() {
        let t = TimingModel::nature_100nm();
        assert!(t.wire_delay(WireType::Direct) < t.wire_delay(WireType::Length1));
        assert!(t.wire_delay(WireType::Length1) < t.wire_delay(WireType::Length4));
        assert!(t.wire_delay(WireType::Length4) < t.wire_delay(WireType::Global));
    }

    #[test]
    #[should_panic(expected = "folding level must be positive")]
    fn zero_folding_level_panics() {
        TimingModel::default().folding_cycle(0);
    }
}
