//! Architecture parameters of a NATURE instance.

/// Parameters of a NATURE architecture instance.
///
/// The experiments in the paper use one 4-input LUT per logic element
/// (LE), four LEs per macroblock (MB), four MBs per super-macroblock
/// (SMB), and **two** flip-flops per LE (Section 5: with deep folding the
/// registers, not the LUTs, become the area bottleneck).
///
/// # Examples
///
/// ```
/// use nanomap_arch::ArchParams;
///
/// let arch = ArchParams::default();
/// assert_eq!(arch.les_per_smb(), 16);
/// assert_eq!(arch.ffs_per_smb(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchParams {
    /// LUT input count `m`.
    pub lut_inputs: u32,
    /// LUTs per logic element (`h` in Eq. 14; NATURE uses 1).
    pub luts_per_le: u32,
    /// Flip-flops per logic element (`l` in Eq. 14).
    pub ffs_per_le: u32,
    /// Logic elements per macroblock.
    pub les_per_mb: u32,
    /// Macroblocks per super-macroblock.
    pub mbs_per_smb: u32,
    /// Reconfiguration copies per NRAM (`num_reconf` / `k`).
    /// `u32::MAX` models the "k large enough" scenario of Table 1.
    pub num_reconf: u32,
}

impl ArchParams {
    /// The instance used throughout the paper's experiments
    /// (1×4-LUT LEs, 2 FFs/LE, 4 LEs/MB, 4 MBs/SMB, 16 NRAM sets).
    pub fn paper() -> Self {
        Self {
            lut_inputs: 4,
            luts_per_le: 1,
            ffs_per_le: 2,
            les_per_mb: 4,
            mbs_per_smb: 4,
            num_reconf: 16,
        }
    }

    /// The paper instance with unbounded reconfiguration copies
    /// ("k enough" columns of Table 1).
    pub fn paper_unbounded() -> Self {
        Self {
            num_reconf: u32::MAX,
            ..Self::paper()
        }
    }

    /// Logic elements per SMB.
    pub fn les_per_smb(&self) -> u32 {
        self.les_per_mb * self.mbs_per_smb
    }

    /// LUTs per SMB.
    pub fn luts_per_smb(&self) -> u32 {
        self.les_per_smb() * self.luts_per_le
    }

    /// Flip-flops per SMB.
    pub fn ffs_per_smb(&self) -> u32 {
        self.les_per_smb() * self.ffs_per_le
    }

    /// `true` when `num_reconf` models an unbounded NRAM.
    pub fn unbounded_reconf(&self) -> bool {
        self.num_reconf == u32::MAX
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=6).contains(&self.lut_inputs) {
            return Err(format!("lut_inputs {} outside 2..=6", self.lut_inputs));
        }
        for (name, v) in [
            ("luts_per_le", self.luts_per_le),
            ("ffs_per_le", self.ffs_per_le),
            ("les_per_mb", self.les_per_mb),
            ("mbs_per_smb", self.mbs_per_smb),
            ("num_reconf", self.num_reconf),
        ] {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        Ok(())
    }
}

impl Default for ArchParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_matches_section5() {
        let a = ArchParams::paper();
        assert_eq!(a.lut_inputs, 4);
        assert_eq!(a.les_per_mb, 4);
        assert_eq!(a.mbs_per_smb, 4);
        assert_eq!(a.ffs_per_le, 2);
        assert_eq!(a.num_reconf, 16);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn unbounded_variant() {
        let a = ArchParams::paper_unbounded();
        assert!(a.unbounded_reconf());
        assert!(!ArchParams::paper().unbounded_reconf());
    }

    #[test]
    fn validation_rejects_zeroes_and_bad_lut() {
        let mut a = ArchParams::paper();
        a.lut_inputs = 1;
        assert!(a.validate().is_err());
        let mut b = ArchParams::paper();
        b.ffs_per_le = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn default_is_paper_instance() {
        assert_eq!(ArchParams::default(), ArchParams::paper());
    }
}
