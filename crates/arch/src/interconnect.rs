//! The NATURE interconnect hierarchy.
//!
//! NATURE provides four kinds of programmable interconnect (Section 4.4 of
//! the paper): direct links between adjacent SMBs, length-1 and length-4
//! wire segments, and global interconnect lines. A length-`i` segment
//! spans `i` SMBs. The router prefers the cheapest tier and escalates.

/// The four interconnect tiers of NATURE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WireType {
    /// Dedicated link between horizontally/vertically adjacent SMBs.
    Direct,
    /// Channel segment spanning one SMB.
    Length1,
    /// Channel segment spanning four SMBs.
    Length4,
    /// Chip-spanning global line.
    Global,
}

impl WireType {
    /// All tiers, cheapest first (the router's escalation order).
    pub const ALL: [WireType; 4] = [
        WireType::Direct,
        WireType::Length1,
        WireType::Length4,
        WireType::Global,
    ];

    /// Number of SMBs a segment of this type spans (globals span the chip;
    /// returns `u32::MAX` as a sentinel).
    pub fn span(self) -> u32 {
        match self {
            WireType::Direct | WireType::Length1 => 1,
            WireType::Length4 => 4,
            WireType::Global => u32::MAX,
        }
    }

    /// Stable lowercase tier name for reports and serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            WireType::Direct => "direct",
            WireType::Length1 => "length1",
            WireType::Length4 => "length4",
            WireType::Global => "global",
        }
    }

    /// Relative congestion base cost used by the router (cheap tiers first).
    pub fn base_cost(self) -> f64 {
        match self {
            WireType::Direct => 1.0,
            WireType::Length1 => 1.4,
            WireType::Length4 => 2.2,
            WireType::Global => 4.4,
        }
    }
}

/// Channel widths: how many tracks of each segment type run per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Direct links per adjacent SMB pair (per direction).
    pub direct: u32,
    /// Length-1 tracks per channel.
    pub length1: u32,
    /// Length-4 tracks per channel.
    pub length4: u32,
    /// Global lines per row/column.
    pub global: u32,
}

impl ChannelConfig {
    /// A NATURE-like default sized for the paper's benchmarks.
    pub fn nature() -> Self {
        Self {
            direct: 8,
            length1: 8,
            length4: 4,
            global: 2,
        }
    }

    /// Tracks available for the given tier.
    pub fn tracks(&self, wire: WireType) -> u32 {
        match wire {
            WireType::Direct => self.direct,
            WireType::Length1 => self.length1,
            WireType::Length4 => self.length4,
            WireType::Global => self.global,
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::nature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_order_is_cheapest_first() {
        let costs: Vec<f64> = WireType::ALL.iter().map(|w| w.base_cost()).collect();
        for pair in costs.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn spans() {
        assert_eq!(WireType::Direct.span(), 1);
        assert_eq!(WireType::Length4.span(), 4);
        assert_eq!(WireType::Global.span(), u32::MAX);
    }

    #[test]
    fn channel_tracks_lookup() {
        let c = ChannelConfig::nature();
        for w in WireType::ALL {
            assert!(c.tracks(w) > 0);
        }
        assert_eq!(c.tracks(WireType::Length1), 8);
    }
}
