//! Configuration-bit layout of NATURE elements.
//!
//! After routing, NanoMap emits one configuration bitmap per folding cycle
//! (Section 4, step 15). This module defines the per-element bit budgets
//! and the bitmap container; the route crate fills it in.

use crate::grid::SmbPos;
use crate::params::ArchParams;

/// Configuration of one LE in one folding cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeConfig {
    /// LUT truth table, row 0 in bit 0 (`2^m` significant bits).
    pub truth_bits: u64,
    /// Selected input source per LUT pin (local crossbar select codes).
    pub input_select: Vec<u16>,
    /// Which of the LE's flip-flops capture this cycle (bit mask).
    pub ff_capture: u8,
    /// Whether the LE's LUT output is registered or combinational.
    pub registered: bool,
}

/// Configuration of one SMB in one folding cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmbConfig {
    /// Slot position.
    pub pos: SmbPos,
    /// Per-LE configurations (length = LEs per SMB; unused LEs `None`).
    pub les: Vec<Option<LeConfig>>,
}

/// Configuration of the interconnect in one folding cycle: the set of
/// switched-on routing-resource nodes, per net.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutingConfig {
    /// For each routed net: the indices of the RR nodes it occupies.
    pub nets: Vec<Vec<u32>>,
}

/// One folding cycle's complete configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleConfig {
    /// Logic configuration per used SMB.
    pub smbs: Vec<SmbConfig>,
    /// Interconnect configuration.
    pub routing: RoutingConfig,
}

/// The full configuration bitmap: one [`CycleConfig`] per folding cycle,
/// cycled through by the reconfiguration counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigBitmap {
    /// Per-cycle configurations, executed in order then wrapping.
    pub cycles: Vec<CycleConfig>,
}

impl ConfigBitmap {
    /// Number of folding cycles configured.
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Total configuration bits across all cycles, using the per-element
    /// budgets of [`bits_per_le`] and one bit per routing switch.
    pub fn total_bits(&self, arch: &ArchParams) -> u64 {
        let mut bits = 0u64;
        for cycle in &self.cycles {
            for smb in &cycle.smbs {
                bits += u64::from(smb.les.iter().flatten().count() as u32) * bits_per_le(arch);
            }
            bits += cycle
                .routing
                .nets
                .iter()
                .map(|n| n.len() as u64)
                .sum::<u64>();
        }
        bits
    }
}

/// Configuration bits per LE: the LUT truth table plus input-select codes
/// plus flip-flop control.
pub fn bits_per_le(arch: &ArchParams) -> u64 {
    let truth = 1u64 << arch.lut_inputs;
    // Each LUT pin selects among the SMB-local sources; 5 bits is generous
    // for a 16-LE SMB crossbar.
    let selects = u64::from(arch.lut_inputs) * 5;
    let ff_control = u64::from(arch.ffs_per_le) + 1;
    truth + selects + ff_control
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_bit_budget() {
        let arch = ArchParams::paper();
        // 16 truth bits + 20 select bits + 3 FF bits.
        assert_eq!(bits_per_le(&arch), 39);
    }

    #[test]
    fn bitmap_counts_bits() {
        let arch = ArchParams::paper();
        let le = LeConfig {
            truth_bits: 0xFFFF,
            input_select: vec![0; 4],
            ff_capture: 0b01,
            registered: true,
        };
        let bitmap = ConfigBitmap {
            cycles: vec![CycleConfig {
                smbs: vec![SmbConfig {
                    pos: SmbPos::new(0, 0),
                    les: vec![Some(le), None],
                }],
                routing: RoutingConfig {
                    nets: vec![vec![1, 2, 3]],
                },
            }],
        };
        assert_eq!(bitmap.num_cycles(), 1);
        assert_eq!(bitmap.total_bits(&arch), 39 + 3);
    }
}
