//! Power model of a NATURE instance (100 nm technology).
//!
//! The paper argues NRAM-based configuration improves system power: the
//! bits never reload from off-chip memory (they are read from on-chip
//! NRAM in 160 ps), and non-volatility means a powered-down fabric keeps
//! its configuration (zero standby configuration energy). This module
//! quantifies those effects with representative 100 nm per-event
//! energies so the flow can report per-mapping power estimates:
//!
//! * **logic dynamic power** — LUT evaluations per second × switching
//!   energy;
//! * **reconfiguration power** — configuration bits re-read per second
//!   from NRAM (folded designs pay this every cycle) vs. the SRAM-FPGA
//!   baseline's off-chip reload, which is orders of magnitude costlier
//!   per bit;
//! * **leakage** — proportional to the LE count, which temporal folding
//!   shrinks by an order of magnitude.

use crate::params::ArchParams;

/// Per-event energies and per-LE leakage at 100 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Energy of one LUT evaluation (switching + local interconnect), pJ.
    pub lut_switch_pj: f64,
    /// Energy to read one configuration bit from on-chip NRAM, pJ.
    pub nram_read_bit_pj: f64,
    /// Energy to load one configuration bit from off-chip flash/DRAM
    /// (the conventional-FPGA reconfiguration path), pJ.
    pub offchip_load_bit_pj: f64,
    /// Leakage per logic element, µW.
    pub le_leakage_uw: f64,
    /// Fraction of LUT inputs toggling per cycle (activity factor).
    pub activity: f64,
}

impl PowerModel {
    /// The calibrated 100 nm model.
    pub fn nature_100nm() -> Self {
        Self {
            lut_switch_pj: 0.08,
            nram_read_bit_pj: 0.02,
            offchip_load_bit_pj: 2.5,
            le_leakage_uw: 0.9,
            activity: 0.25,
        }
    }
}

/// A power estimate for one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Dynamic logic power, mW.
    pub logic_mw: f64,
    /// Run-time reconfiguration power (NRAM reads), mW.
    pub reconfiguration_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
}

impl PowerEstimate {
    /// Total power, mW.
    pub fn total_mw(&self) -> f64 {
        self.logic_mw + self.reconfiguration_mw + self.leakage_mw
    }
}

/// Estimates the power of a mapping.
///
/// * `luts_evaluated_per_cycle` — LUT evaluations in one folding cycle
///   (≈ the LUTs of one folding stage);
/// * `config_bits_per_cycle` — configuration bits re-read per cycle
///   (zero when not folding: the configuration is static);
/// * `num_les` — logic elements occupied (leakage);
/// * `cycle_ns` — the folding-cycle (or plane-cycle) period.
pub fn estimate_power(
    model: &PowerModel,
    luts_evaluated_per_cycle: f64,
    config_bits_per_cycle: f64,
    num_les: u32,
    cycle_ns: f64,
) -> PowerEstimate {
    let cycles_per_second = 1e9 / cycle_ns.max(1e-3);
    // pJ * 1/s = pW; /1e9 -> mW.
    let logic_mw =
        model.lut_switch_pj * model.activity * luts_evaluated_per_cycle * cycles_per_second / 1e9;
    let reconfiguration_mw =
        model.nram_read_bit_pj * config_bits_per_cycle * cycles_per_second / 1e9;
    let leakage_mw = model.le_leakage_uw * f64::from(num_les) / 1e3;
    PowerEstimate {
        logic_mw,
        reconfiguration_mw,
        leakage_mw,
    }
}

/// Energy for one full off-chip configuration load of `bits` bits (what a
/// conventional SRAM FPGA pays to change configurations), in nJ.
pub fn offchip_reload_nj(model: &PowerModel, bits: u64) -> f64 {
    model.offchip_load_bit_pj * bits as f64 / 1e3
}

/// Per-LE configuration bits (all NRAM sets) retained through power-off —
/// the non-volatile storage that never needs reloading.
pub fn retained_bits(arch: &ArchParams) -> u64 {
    let sets = if arch.unbounded_reconf() {
        16
    } else {
        arch.num_reconf
    };
    u64::from(sets) * crate::config::bits_per_le(arch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_trades_leakage_for_reconfiguration() {
        let m = PowerModel::nature_100nm();
        // No folding: 640 LEs, no reconfiguration, long cycle.
        let nofold = estimate_power(&m, 640.0, 0.0, 640, 12.9);
        // Level-1 folding: 40 LEs, ~40 LEs' bits re-read per 0.71 ns cycle.
        let bits_per_le = 39.0;
        let folded = estimate_power(&m, 40.0, 40.0 * bits_per_le, 40, 0.71);
        assert_eq!(nofold.reconfiguration_mw, 0.0);
        assert!(folded.reconfiguration_mw > 0.0);
        // Folding slashes leakage 16x.
        assert!(nofold.leakage_mw / folded.leakage_mw > 15.0);
        // Run-time reconfiguration is the dominant power price of deep
        // folding (the paper's power claims are about avoiding off-chip
        // reloads and non-volatile standby, not total dynamic power).
        assert!(folded.reconfiguration_mw > folded.logic_mw);
        assert!(folded.total_mw() < nofold.total_mw() * 50.0);
    }

    #[test]
    fn offchip_reload_dominates_nram_reads() {
        let m = PowerModel::nature_100nm();
        let bits = 100_000u64;
        let offchip = offchip_reload_nj(&m, bits);
        let onchip = m.nram_read_bit_pj * bits as f64 / 1e3;
        assert!(offchip / onchip > 100.0);
    }

    #[test]
    fn retained_bits_scale_with_sets() {
        let k16 = ArchParams::paper();
        let k8 = ArchParams {
            num_reconf: 8,
            ..ArchParams::paper()
        };
        assert_eq!(retained_bits(&k16), 2 * retained_bits(&k8));
        // Unbounded is charged as the physical 16-set NRAM.
        assert_eq!(
            retained_bits(&ArchParams::paper_unbounded()),
            retained_bits(&k16)
        );
    }

    #[test]
    fn totals_add_up() {
        let m = PowerModel::nature_100nm();
        let e = estimate_power(&m, 10.0, 100.0, 20, 1.0);
        assert!((e.total_mw() - (e.logic_mw + e.reconfiguration_mw + e.leakage_mw)).abs() < 1e-12);
        assert!(e.logic_mw > 0.0 && e.leakage_mw > 0.0);
    }
}
