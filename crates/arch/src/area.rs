//! Area model of a NATURE instance (100 nm technology).
//!
//! The paper reports (Sections 2.1.2 and 5):
//!
//! * a 16-set NRAM adds **10.6 %** area overhead to a logic block;
//! * doubling the flip-flops per LE (1 → 2) grows the SMB to **1.5×**;
//! * the number of LEs is the area proxy used in Table 1 "because of the
//!   regular architecture".
//!
//! Absolute µm² values are representative 100 nm numbers; every comparison
//! in the experiments is relative, so only the ratios above matter.

use crate::params::ArchParams;

/// Area model in µm² at 100 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one LE with a single flip-flop (LUT + FF + local muxes).
    pub le_base_um2: f64,
    /// Additional area per extra flip-flop in an LE.
    pub extra_ff_um2: f64,
    /// Per-SMB interconnect/switch-matrix area with one FF per LE.
    pub smb_interconnect_um2: f64,
    /// NRAM area overhead fraction for a 16-set NRAM (0.106 in the paper).
    pub nram_overhead_16: f64,
}

impl AreaModel {
    /// The calibrated 100 nm model.
    pub fn nature_100nm() -> Self {
        Self {
            le_base_um2: 180.0,
            extra_ff_um2: 35.0,
            smb_interconnect_um2: 1400.0,
            nram_overhead_16: 0.106,
        }
    }

    /// Area of one LE under the given architecture parameters.
    pub fn le_area(&self, arch: &ArchParams) -> f64 {
        self.le_base_um2 + f64::from(arch.ffs_per_le.saturating_sub(1)) * self.extra_ff_um2
    }

    /// NRAM overhead fraction for `k` reconfiguration sets (linear in `k`,
    /// 10.6 % at `k = 16`). Unbounded `k` is charged at 16 sets — the
    /// physical NRAM is what it is; "unbounded" only relaxes the flow's
    /// folding-depth limit.
    pub fn nram_overhead(&self, num_reconf: u32) -> f64 {
        let k = if num_reconf == u32::MAX {
            16
        } else {
            num_reconf
        };
        self.nram_overhead_16 * f64::from(k) / 16.0
    }

    /// Area of one SMB (LEs + local interconnect + NRAM overhead).
    pub fn smb_area(&self, arch: &ArchParams) -> f64 {
        let les = f64::from(arch.les_per_smb()) * self.le_area(arch);
        // The local interconnect grows with the FF count too (wider local
        // crossbars); scale it by LE area ratio.
        let interconnect = self.smb_interconnect_um2 * self.le_area(arch) / self.le_base_um2;
        (les + interconnect) * (1.0 + self.nram_overhead(arch.num_reconf))
    }

    /// Total logic area for a design occupying `num_les` logic elements
    /// (the Table 1 proxy: LE count × per-LE share of the SMB area).
    pub fn design_area(&self, arch: &ArchParams, num_les: u32) -> f64 {
        let num_smbs = num_les.div_ceil(arch.les_per_smb());
        f64::from(num_smbs) * self.smb_area(arch)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::nature_100nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Section 5: two FFs per LE grows the SMB by ~1.5×... the paper's 1.5×
    /// includes the wider local interconnect; our model lands close.
    #[test]
    fn second_ff_grows_smb_up_to_1_5x() {
        let model = AreaModel::nature_100nm();
        let one_ff = ArchParams {
            ffs_per_le: 1,
            ..ArchParams::paper()
        };
        let two_ff = ArchParams::paper();
        let ratio = model.smb_area(&two_ff) / model.smb_area(&one_ff);
        assert!(
            (1.1..=1.5).contains(&ratio),
            "SMB growth ratio {ratio} out of range"
        );
    }

    /// Section 2.1.2: a 16-set NRAM costs 10.6 % area.
    #[test]
    fn nram_overhead_matches_paper_at_16_sets() {
        let model = AreaModel::nature_100nm();
        assert!((model.nram_overhead(16) - 0.106).abs() < 1e-9);
        assert!((model.nram_overhead(32) - 0.212).abs() < 1e-9);
        // Unbounded k is charged as the physical 16-set NRAM.
        assert!((model.nram_overhead(u32::MAX) - 0.106).abs() < 1e-9);
    }

    #[test]
    fn design_area_rounds_up_to_smbs() {
        let model = AreaModel::nature_100nm();
        let arch = ArchParams::paper();
        // 17 LEs need 2 SMBs.
        let a17 = model.design_area(&arch, 17);
        let a32 = model.design_area(&arch, 32);
        assert!((a17 - a32).abs() < 1e-9);
        let a16 = model.design_area(&arch, 16);
        assert!(a16 < a17);
    }

    #[test]
    fn more_nram_sets_cost_area() {
        let model = AreaModel::nature_100nm();
        let k16 = ArchParams::paper();
        let k64 = ArchParams {
            num_reconf: 64,
            ..ArchParams::paper()
        };
        assert!(model.smb_area(&k64) > model.smb_area(&k16));
    }
}
