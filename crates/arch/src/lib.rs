//! Model of NATURE, the hybrid nanotube/CMOS dynamically reconfigurable
//! architecture (Zhang, Jha, Shang — DAC 2006, reference \[7\] of the
//! NanoMap paper).
//!
//! NATURE is an island-style FPGA whose logic blocks (super-macroblocks,
//! *SMBs*) each contain a two-level cluster: four macroblocks (*MBs*) of
//! four logic elements (*LEs*), where an LE is one 4-input LUT plus (here)
//! two flip-flops. Every logic and interconnect element carries a k-set
//! **NRAM** — non-volatile nanotube RAM — holding k configurations that a
//! counter cycles through at run time, enabling cycle-by-cycle
//! reconfiguration (*temporal logic folding*).
//!
//! This crate models everything the NanoMap flow needs:
//!
//! * [`ArchParams`] — the SMB/MB/LE hierarchy and NRAM set count;
//! * [`TimingModel`] — 100 nm delays (LUT, interconnect tiers, the 160 ps
//!   NRAM reconfiguration);
//! * [`AreaModel`] — LE/SMB areas, the 10.6 % NRAM overhead;
//! * [`interconnect`]/[`Grid`]/[`RrGraph`] — the four-tier interconnect
//!   and its routing-resource graph;
//! * [`NramSpec`]/[`ReconfigCounter`] — configuration storage;
//! * [`ConfigBitmap`] — the per-folding-cycle configuration layout.
//!
//! # Examples
//!
//! ```
//! use nanomap_arch::{ArchParams, TimingModel};
//!
//! let arch = ArchParams::paper();
//! let timing = TimingModel::nature_100nm();
//! // Level-2 folding: each cycle runs 2 LUT levels then reconfigures.
//! let cycle = timing.folding_cycle(2);
//! assert!(cycle > 2.0 * timing.level_delay());
//! assert_eq!(arch.les_per_smb(), 16);
//! ```

#![warn(missing_docs)]

mod area;
mod bitstream;
mod config;
pub mod defects;
mod grid;
pub mod interconnect;
mod nram;
mod params;
mod power;
mod rrgraph;
mod timing;

pub use area::AreaModel;
pub use bitstream::{
    pack_bitstream, unpack_bitstream, BitstreamError, BITSTREAM_MAGIC, BITSTREAM_VERSION,
};
pub use config::{bits_per_le, ConfigBitmap, CycleConfig, LeConfig, RoutingConfig, SmbConfig};
pub use defects::{DefectCounts, DefectMap, DefectParseError, SlotClass};
pub use grid::{Grid, SmbPos};
pub use interconnect::{ChannelConfig, WireType};
pub use nram::{NramSpec, ReconfigCounter};
pub use params::ArchParams;
pub use power::{estimate_power, offchip_reload_nj, retained_bits, PowerEstimate, PowerModel};
pub use rrgraph::{RrGraph, RrNode, RrNodeId, RrNodeKind};
pub use timing::{Ns, TimingModel};
