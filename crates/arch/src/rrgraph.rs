//! Routing-resource graph over the NATURE interconnect.
//!
//! Nodes model SMB output pins (sources), SMB input pins (sinks) and wire
//! tracks of the four interconnect tiers; edges model the programmable
//! switches between them. The PathFinder router negotiates congestion over
//! node capacities.
//!
//! Switch pattern:
//! * `Source(x,y)` drives its direct links, and every length-1/length-4
//!   track and global line passing its slot;
//! * a direct link ends in the neighbouring slot's `Sink`;
//! * wire tracks connect to `Sink`s of every slot they span;
//! * colinear tracks of the same tier connect end-to-end; horizontal and
//!   vertical tracks connect wherever they cross (full switch boxes);
//! * global lines connect to everything in their row/column, including
//!   each other at crossings.

use std::collections::HashMap;

use crate::defects::DefectMap;
use crate::grid::{Grid, SmbPos};
use crate::interconnect::{ChannelConfig, WireType};

/// Identifier of a routing-resource node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RrNodeId(pub u32);

impl RrNodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a routing-resource node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrNodeKind {
    /// The output pin bundle of the SMB at a slot.
    Source(SmbPos),
    /// The input pin bundle of the SMB at a slot.
    Sink(SmbPos),
    /// A horizontal wire track starting at `at` and spanning `span` slots.
    HWire {
        /// Leftmost slot the track touches.
        at: SmbPos,
        /// Number of slots spanned.
        span: u16,
        /// Track index within the channel.
        track: u16,
    },
    /// A vertical wire track starting at `at` and spanning `span` slots.
    VWire {
        /// Topmost slot the track touches.
        at: SmbPos,
        /// Number of slots spanned.
        span: u16,
        /// Track index within the channel.
        track: u16,
    },
    /// A direct link from a slot toward a neighbour.
    Direct {
        /// Originating slot.
        from: SmbPos,
        /// Destination slot.
        to: SmbPos,
        /// Track index.
        track: u16,
    },
    /// A global line spanning an entire row.
    GlobalRow {
        /// Row index.
        y: u16,
        /// Track index.
        track: u16,
    },
    /// A global line spanning an entire column.
    GlobalCol {
        /// Column index.
        x: u16,
        /// Track index.
        track: u16,
    },
}

impl RrNodeKind {
    /// The single grid cell a node is attributed to in per-cell usage
    /// accounting (heatmaps): pins and direct links belong to their
    /// originating slot, segment wires to their anchor slot, and global
    /// lines to the first slot of their row/column. Attributing each node
    /// to exactly one cell keeps heatmap totals reconcilable with the
    /// per-tier usage counters.
    pub fn anchor(&self) -> SmbPos {
        match *self {
            RrNodeKind::Source(p) | RrNodeKind::Sink(p) => p,
            RrNodeKind::Direct { from, .. } => from,
            RrNodeKind::HWire { at, .. } | RrNodeKind::VWire { at, .. } => at,
            RrNodeKind::GlobalRow { y, .. } => SmbPos::new(0, y),
            RrNodeKind::GlobalCol { x, .. } => SmbPos::new(x, 0),
        }
    }
}

/// A routing-resource node.
#[derive(Debug, Clone)]
pub struct RrNode {
    /// What the node models.
    pub kind: RrNodeKind,
    /// Interconnect tier (None for sources/sinks).
    pub wire: Option<WireType>,
    /// How many nets may use the node per folding cycle.
    pub capacity: u32,
    /// Router base cost.
    pub base_cost: f64,
}

/// The routing-resource graph.
#[derive(Debug)]
pub struct RrGraph {
    grid: Grid,
    nodes: Vec<RrNode>,
    edges: Vec<Vec<RrNodeId>>,
    source_of: HashMap<SmbPos, RrNodeId>,
    sink_of: HashMap<SmbPos, RrNodeId>,
}

impl RrGraph {
    /// Builds the routing-resource graph for a grid and channel config,
    /// assuming a perfect (defect-free) fabric.
    pub fn build(grid: Grid, channels: &ChannelConfig) -> Self {
        Self::build_with_defects(grid, channels, &DefectMap::none())
    }

    /// Builds the routing-resource graph, pruning defective resources:
    /// broken wires (direct links, segment tracks, global lines) are not
    /// created, and stuck-open switches between surviving wires are not
    /// connected. Sources and sinks always exist — a dead *slot* is a
    /// placement concern, not a routing one.
    pub fn build_with_defects(grid: Grid, channels: &ChannelConfig, defects: &DefectMap) -> Self {
        let mut b = Builder {
            nodes: Vec::new(),
            edges: Vec::new(),
            source_of: HashMap::new(),
            sink_of: HashMap::new(),
        };
        // Sources and sinks. Pin counts are generous (intra-SMB crossbars
        // are rich); congestion lives on the wires.
        for pos in grid.iter() {
            let src = b.add(RrNode {
                kind: RrNodeKind::Source(pos),
                wire: None,
                capacity: u32::MAX,
                base_cost: 0.0,
            });
            let snk = b.add(RrNode {
                kind: RrNodeKind::Sink(pos),
                wire: None,
                capacity: u32::MAX,
                base_cost: 0.0,
            });
            b.source_of.insert(pos, src);
            b.sink_of.insert(pos, snk);
        }
        // Direct links.
        for pos in grid.iter() {
            for neighbor in grid.neighbors(pos) {
                for track in 0..channels.direct as u16 {
                    let kind = RrNodeKind::Direct {
                        from: pos,
                        to: neighbor,
                        track,
                    };
                    if defects.wire_defective(&kind) {
                        continue;
                    }
                    let wire = b.add(RrNode {
                        kind,
                        wire: Some(WireType::Direct),
                        capacity: 1,
                        base_cost: WireType::Direct.base_cost(),
                    });
                    b.connect(b.source_of[&pos], wire);
                    b.connect(wire, b.sink_of[&neighbor]);
                }
            }
        }
        // Segment wires (length-1 and length-4), both orientations.
        let mut h_wires: Vec<RrNodeId> = Vec::new();
        let mut v_wires: Vec<RrNodeId> = Vec::new();
        for (tier, span) in [(WireType::Length1, 1u16), (WireType::Length4, 4u16)] {
            for track in 0..channels.tracks(tier) as u16 {
                for y in 0..grid.height {
                    let mut x = 0;
                    while x < grid.width {
                        let span = span.min(grid.width - x);
                        let at = SmbPos::new(x, y);
                        let kind = RrNodeKind::HWire { at, span, track };
                        if defects.wire_defective(&kind) {
                            x += span;
                            continue;
                        }
                        let wire = b.add(RrNode {
                            kind,
                            wire: Some(tier),
                            capacity: 1,
                            base_cost: tier.base_cost(),
                        });
                        h_wires.push(wire);
                        for dx in 0..span {
                            let cell = SmbPos::new(x + dx, y);
                            b.connect(b.source_of[&cell], wire);
                            b.connect(wire, b.sink_of[&cell]);
                        }
                        x += span;
                    }
                }
                for x in 0..grid.width {
                    let mut y = 0;
                    while y < grid.height {
                        let span = span.min(grid.height - y);
                        let at = SmbPos::new(x, y);
                        let kind = RrNodeKind::VWire { at, span, track };
                        if defects.wire_defective(&kind) {
                            y += span;
                            continue;
                        }
                        let wire = b.add(RrNode {
                            kind,
                            wire: Some(tier),
                            capacity: 1,
                            base_cost: tier.base_cost(),
                        });
                        v_wires.push(wire);
                        for dy in 0..span {
                            let cell = SmbPos::new(x, y + dy);
                            b.connect(b.source_of[&cell], wire);
                            b.connect(wire, b.sink_of[&cell]);
                        }
                        y += span;
                    }
                }
            }
        }
        // Colinear end-to-end switches.
        let ends = |kind: &RrNodeKind| -> Option<(bool, u16, u16, u16)> {
            match *kind {
                RrNodeKind::HWire { at, span, .. } => Some((true, at.y, at.x, at.x + span - 1)),
                RrNodeKind::VWire { at, span, .. } => Some((false, at.x, at.y, at.y + span - 1)),
                _ => None,
            }
        };
        let all_wires: Vec<RrNodeId> = h_wires.iter().chain(v_wires.iter()).copied().collect();
        for (i, &a) in all_wires.iter().enumerate() {
            for &c in all_wires.iter().skip(i + 1) {
                let (ka, kc) = (b.nodes[a.index()].kind, b.nodes[c.index()].kind);
                let (Some((ha, la, sa, ea)), Some((hc, lc, sc, ec))) = (ends(&ka), ends(&kc))
                else {
                    continue;
                };
                let touching = if ha == hc && la == lc {
                    // Colinear: abutting ends.
                    ea + 1 == sc || ec + 1 == sa
                } else if ha != hc {
                    // Crossing: the H wire's row lies in the V wire's span
                    // and vice versa.
                    let (hl, hs, he, vl, vs, ve) = if ha {
                        (la, sa, ea, lc, sc, ec)
                    } else {
                        (lc, sc, ec, la, sa, ea)
                    };
                    // hl = row of H wire, vl = column of V wire.
                    (hs..=he).contains(&vl) && (vs..=ve).contains(&hl)
                } else {
                    false
                };
                if touching && !defects.switch_defective(&ka, &kc) {
                    b.connect(a, c);
                    b.connect(c, a);
                }
            }
        }
        // Global lines.
        let mut global_rows = Vec::new();
        let mut global_cols = Vec::new();
        for track in 0..channels.global as u16 {
            for y in 0..grid.height {
                let kind = RrNodeKind::GlobalRow { y, track };
                if defects.wire_defective(&kind) {
                    continue;
                }
                let wire = b.add(RrNode {
                    kind,
                    wire: Some(WireType::Global),
                    capacity: 1,
                    base_cost: WireType::Global.base_cost(),
                });
                global_rows.push((kind, wire));
                for x in 0..grid.width {
                    let cell = SmbPos::new(x, y);
                    b.connect(b.source_of[&cell], wire);
                    b.connect(wire, b.sink_of[&cell]);
                }
            }
            for x in 0..grid.width {
                let kind = RrNodeKind::GlobalCol { x, track };
                if defects.wire_defective(&kind) {
                    continue;
                }
                let wire = b.add(RrNode {
                    kind,
                    wire: Some(WireType::Global),
                    capacity: 1,
                    base_cost: WireType::Global.base_cost(),
                });
                global_cols.push((kind, wire));
                for y in 0..grid.height {
                    let cell = SmbPos::new(x, y);
                    b.connect(b.source_of[&cell], wire);
                    b.connect(wire, b.sink_of[&cell]);
                }
            }
        }
        // Global-global crossings.
        for &(rk, row) in &global_rows {
            for &(ck, col) in &global_cols {
                if defects.switch_defective(&rk, &ck) {
                    continue;
                }
                b.connect(row, col);
                b.connect(col, row);
            }
        }
        RrGraph {
            grid,
            nodes: b.nodes,
            edges: b.edges,
            source_of: b.source_of,
            sink_of: b.sink_of,
        }
    }

    /// The grid this graph was built for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: RrNodeId) -> &RrNode {
        &self.nodes[id.index()]
    }

    /// Outgoing switch targets of a node.
    pub fn neighbors(&self, id: RrNodeId) -> &[RrNodeId] {
        &self.edges[id.index()]
    }

    /// The source node of the SMB at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the grid.
    pub fn source(&self, pos: SmbPos) -> RrNodeId {
        self.source_of[&pos]
    }

    /// The sink node of the SMB at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the grid.
    pub fn sink(&self, pos: SmbPos) -> RrNodeId {
        self.sink_of[&pos]
    }

    /// Iterates `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RrNodeId, &RrNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (RrNodeId(i as u32), n))
    }
}

struct Builder {
    nodes: Vec<RrNode>,
    edges: Vec<Vec<RrNodeId>>,
    source_of: HashMap<SmbPos, RrNodeId>,
    sink_of: HashMap<SmbPos, RrNodeId>,
}

impl Builder {
    fn add(&mut self, node: RrNode) -> RrNodeId {
        let id = RrNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.edges.push(Vec::new());
        id
    }

    fn connect(&mut self, from: RrNodeId, to: RrNodeId) {
        self.edges[from.index()].push(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> RrGraph {
        RrGraph::build(Grid::new(4, 4), &ChannelConfig::nature())
    }

    #[test]
    fn sources_and_sinks_exist_per_slot() {
        let g = small_graph();
        for pos in g.grid().iter() {
            let s = g.source(pos);
            assert!(matches!(g.node(s).kind, RrNodeKind::Source(p) if p == pos));
            let k = g.sink(pos);
            assert!(matches!(g.node(k).kind, RrNodeKind::Sink(p) if p == pos));
        }
    }

    #[test]
    fn direct_links_reach_neighbors_only() {
        let g = small_graph();
        for (_, node) in g.iter() {
            if let RrNodeKind::Direct { from, to, .. } = node.kind {
                assert_eq!(from.manhattan(to), 1);
            }
        }
    }

    /// Any sink must be reachable from any source (connected fabric).
    #[test]
    fn fabric_is_fully_connected() {
        let g = small_graph();
        let start = g.source(SmbPos::new(0, 0));
        let mut seen = vec![false; g.num_nodes()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            for &m in g.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
        for pos in g.grid().iter() {
            assert!(seen[g.sink(pos).index()], "sink at {pos:?} unreachable");
        }
    }

    #[test]
    fn wires_have_unit_capacity_and_tier_costs() {
        let g = small_graph();
        for (_, node) in g.iter() {
            if let Some(tier) = node.wire {
                assert_eq!(node.capacity, 1);
                assert!((node.base_cost - tier.base_cost()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn length4_wires_span_four_or_clip() {
        let g = RrGraph::build(Grid::new(6, 6), &ChannelConfig::nature());
        let mut saw_four = false;
        for (_, node) in g.iter() {
            if node.wire == Some(WireType::Length4) {
                match node.kind {
                    RrNodeKind::HWire { span, .. } | RrNodeKind::VWire { span, .. } => {
                        assert!(span == 4 || span == 2, "span {span}");
                        if span == 4 {
                            saw_four = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_four);
    }

    #[test]
    fn zero_rate_defect_map_builds_identical_graph() {
        let clean = small_graph();
        let defective = RrGraph::build_with_defects(
            Grid::new(4, 4),
            &ChannelConfig::nature(),
            &DefectMap::none(),
        );
        assert_eq!(clean.num_nodes(), defective.num_nodes());
        for ((_, a), (_, b)) in clean.iter().zip(defective.iter()) {
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn explicit_wire_defect_prunes_node() {
        let map = DefectMap::parse("hwire 0 0 0\n").unwrap();
        let g = RrGraph::build_with_defects(Grid::new(4, 4), &ChannelConfig::nature(), &map);
        for (_, node) in g.iter() {
            if let RrNodeKind::HWire { at, span, track } = node.kind {
                assert!(
                    !(at == SmbPos::new(0, 0) && span == 1 && track == 0),
                    "defective wire survived pruning"
                );
            }
        }
        let clean = small_graph();
        // Exactly one length-1 H wire is gone (the length-4 track indices
        // are an independent channel, so only tier Length1 track 0 dies...
        // unless the length-4 channel also has a track-0 wire at (0,0),
        // which shares the key. The key encodes position+track only, so
        // both tiers' track-0 wires at (0,0) are pruned.)
        let missing = clean.num_nodes() - g.num_nodes();
        assert!((1..=2).contains(&missing), "pruned {missing}");
    }

    #[test]
    fn random_defects_prune_but_keep_sources_and_sinks() {
        let map = DefectMap::uniform(0.3, 1234);
        let grid = Grid::new(5, 5);
        let g = RrGraph::build_with_defects(grid, &ChannelConfig::nature(), &map);
        let clean = RrGraph::build(grid, &ChannelConfig::nature());
        assert!(g.num_nodes() < clean.num_nodes());
        for pos in grid.iter() {
            // Lookups must not panic: every slot keeps its pins.
            let _ = g.source(pos);
            let _ = g.sink(pos);
        }
    }

    #[test]
    fn defective_builds_are_deterministic() {
        let map = DefectMap::uniform(0.15, 77);
        let grid = Grid::new(4, 4);
        let a = RrGraph::build_with_defects(grid, &ChannelConfig::nature(), &map);
        let b = RrGraph::build_with_defects(grid, &ChannelConfig::nature(), &map);
        assert_eq!(a.num_nodes(), b.num_nodes());
        for ((ia, na), (ib, nb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(na.kind, nb.kind);
            assert_eq!(a.neighbors(ia), b.neighbors(ib));
        }
    }

    #[test]
    fn globals_span_full_rows_and_columns() {
        let g = small_graph();
        let mut rows = 0;
        let mut cols = 0;
        for (id, node) in g.iter() {
            match node.kind {
                RrNodeKind::GlobalRow { .. } => {
                    rows += 1;
                    // must reach all 4 sinks of its row + crossings
                    assert!(g.neighbors(id).len() >= 4);
                }
                RrNodeKind::GlobalCol { .. } => cols += 1,
                _ => {}
            }
        }
        let tracks = ChannelConfig::nature().global;
        assert_eq!(rows, 4 * tracks);
        assert_eq!(cols, 4 * tracks);
    }
}
