//! The island-style SMB grid.

/// Position of an SMB slot on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmbPos {
    /// Column, 0-based from the left.
    pub x: u16,
    /// Row, 0-based from the top.
    pub y: u16,
}

impl SmbPos {
    /// Creates a position.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another slot (the placement cost metric of
    /// Section 4.4).
    pub fn manhattan(self, other: SmbPos) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// A rectangular grid of SMB slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of columns.
    pub width: u16,
    /// Number of rows.
    pub height: u16,
}

impl Grid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        Self { width, height }
    }

    /// The smallest near-square grid with at least `slots` positions.
    pub fn with_capacity(slots: u32) -> Self {
        let side = (slots as f64).sqrt().ceil() as u16;
        let side = side.max(1);
        if u32::from(side) * u32::from(side.saturating_sub(1)) >= slots {
            Self::new(side, side - 1)
        } else {
            Self::new(side, side)
        }
    }

    /// Total number of slots.
    pub fn num_slots(&self) -> u32 {
        u32::from(self.width) * u32::from(self.height)
    }

    /// `true` when `pos` lies on the grid.
    pub fn contains(&self, pos: SmbPos) -> bool {
        pos.x < self.width && pos.y < self.height
    }

    /// Linear index of a position (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the grid.
    pub fn index(&self, pos: SmbPos) -> usize {
        assert!(self.contains(pos), "{pos:?} outside {self:?}");
        usize::from(pos.y) * usize::from(self.width) + usize::from(pos.x)
    }

    /// Position of a linear index (row-major).
    pub fn pos(&self, index: usize) -> SmbPos {
        SmbPos::new(
            (index % usize::from(self.width)) as u16,
            (index / usize::from(self.width)) as u16,
        )
    }

    /// Iterates all positions, row-major.
    pub fn iter(&self) -> impl Iterator<Item = SmbPos> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| SmbPos::new(x, y)))
    }

    /// The 2-4 orthogonal neighbours of a slot.
    pub fn neighbors(&self, pos: SmbPos) -> Vec<SmbPos> {
        let mut out = Vec::with_capacity(4);
        if pos.x > 0 {
            out.push(SmbPos::new(pos.x - 1, pos.y));
        }
        if pos.x + 1 < self.width {
            out.push(SmbPos::new(pos.x + 1, pos.y));
        }
        if pos.y > 0 {
            out.push(SmbPos::new(pos.x, pos.y - 1));
        }
        if pos.y + 1 < self.height {
            out.push(SmbPos::new(pos.x, pos.y + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(SmbPos::new(0, 0).manhattan(SmbPos::new(3, 4)), 7);
        assert_eq!(SmbPos::new(5, 2).manhattan(SmbPos::new(1, 2)), 4);
    }

    #[test]
    fn with_capacity_is_tight() {
        assert_eq!(Grid::with_capacity(1).num_slots(), 1);
        let g = Grid::with_capacity(10);
        assert!(g.num_slots() >= 10);
        assert!(g.num_slots() <= 16);
        let g = Grid::with_capacity(100);
        assert_eq!(g.num_slots(), 100);
        let g = Grid::with_capacity(101);
        assert!(g.num_slots() >= 101 && g.num_slots() <= 121);
    }

    #[test]
    fn index_round_trips() {
        let g = Grid::new(5, 3);
        for (i, pos) in g.iter().enumerate() {
            assert_eq!(g.index(pos), i);
            assert_eq!(g.pos(i), pos);
        }
    }

    #[test]
    fn neighbors_clip_at_edges() {
        let g = Grid::new(3, 3);
        assert_eq!(g.neighbors(SmbPos::new(0, 0)).len(), 2);
        assert_eq!(g.neighbors(SmbPos::new(1, 1)).len(), 4);
        assert_eq!(g.neighbors(SmbPos::new(2, 1)).len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_grid_panics() {
        Grid::new(0, 3);
    }
}
