//! CNF formula types: variables, literals and the clause database that
//! feeds the solver, plus the cardinality encodings the assignment
//! encoder builds on (exactly-one, Sinz sequential at-most-one and the
//! generalized at-most-k sequential counter).

use std::fmt;

/// A propositional variable, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }
}

/// A literal: a variable with a sign, packed as `var << 1 | sign` where
/// sign 0 is positive. The packing makes negation a single XOR and lets
/// watcher lists index directly by literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and a polarity.
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The literal's packed code (watcher-list index).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from its packed code.
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// The DIMACS integer form: 1-based, negative for negated.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A CNF formula under construction: a growable variable pool and a
/// clause list. The builder offers the cardinality encodings the
/// assignment encoder needs; auxiliary variables they introduce come
/// from the same pool.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist (for DIMACS headers that
    /// declare more variables than the clauses mention).
    pub fn reserve_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals). The empty clause makes
    /// the formula trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(lits.into());
    }

    /// At least one of `lits` is true.
    pub fn at_least_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits.to_vec());
    }

    /// At most one of `lits` is true, via the Sinz sequential encoding:
    /// auxiliary registers `s_i` mean "some literal at index <= i is
    /// true"; a literal firing after a register is set is a conflict.
    /// Linear in `lits` (the pairwise encoding would be quadratic).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 1 {
            return;
        }
        if lits.len() <= 4 {
            // Pairwise is smaller below the crossover point.
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    self.add_clause(vec![!lits[i], !lits[j]]);
                }
            }
            return;
        }
        let mut prev: Option<Var> = None;
        for (i, &lit) in lits.iter().enumerate() {
            let last = i + 1 == lits.len();
            let s = if last { None } else { Some(self.new_var()) };
            if let Some(s) = s {
                // lit -> s_i
                self.add_clause(vec![!lit, s.pos()]);
                if let Some(p) = prev {
                    // s_{i-1} -> s_i
                    self.add_clause(vec![p.neg(), s.pos()]);
                }
            }
            if let Some(p) = prev {
                // s_{i-1} -> !lit
                self.add_clause(vec![p.neg(), !lit]);
            }
            prev = s.or(prev);
        }
    }

    /// Exactly one of `lits` is true.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.at_least_one(lits);
        self.at_most_one(lits);
    }

    /// At most `k` of `lits` are true, via the sequential counter
    /// encoding: registers `r[i][j]` mean "at least `j+1` of the first
    /// `i+1` literals are true". O(n*k) variables and clauses.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        if lits.len() <= k {
            return;
        }
        if k == 0 {
            for &lit in lits {
                self.add_clause(vec![!lit]);
            }
            return;
        }
        if k == 1 {
            self.at_most_one(lits);
            return;
        }
        let n = lits.len();
        // r[j] for the previous prefix; row i covers lits[..=i].
        let mut prev: Vec<Var> = Vec::new();
        for (i, &lit) in lits.iter().enumerate() {
            let width = k.min(i + 1);
            let last = i + 1 == n;
            if !last {
                let mut row: Vec<Var> = (0..width).map(|_| self.new_var()).collect();
                // lit -> r[0]
                self.add_clause(vec![!lit, row[0].pos()]);
                for j in 0..prev.len().min(width) {
                    // prev[j] -> row[j]
                    self.add_clause(vec![prev[j].neg(), row[j].pos()]);
                }
                for j in 1..width {
                    if j - 1 < prev.len() {
                        // lit & prev[j-1] -> row[j]
                        self.add_clause(vec![!lit, prev[j - 1].neg(), row[j].pos()]);
                    }
                }
                if prev.len() >= k {
                    // lit & prev[k-1] -> conflict
                    self.add_clause(vec![!lit, prev[k - 1].neg()]);
                }
                row.truncate(k);
                prev = row;
            } else if prev.len() >= k {
                self.add_clause(vec![!lit, prev[k - 1].neg()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveOutcome, Solver, SolverOptions};

    fn count_models(cnf: &Cnf, over: &[Var]) -> usize {
        // Enumerate by blocking clauses; `over` are the decision vars.
        let mut cnf = cnf.clone();
        let mut n = 0;
        loop {
            let mut solver = Solver::from_cnf(&cnf, SolverOptions::default());
            match solver.solve() {
                SolveOutcome::Sat(model) => {
                    n += 1;
                    let block: Vec<Lit> = over
                        .iter()
                        .map(|&v| if model[v.index()] { v.neg() } else { v.pos() })
                        .collect();
                    cnf.add_clause(block);
                }
                SolveOutcome::Unsat => return n,
                SolveOutcome::Unknown(reason) => panic!("budget hit: {reason}"),
            }
        }
    }

    #[test]
    fn literal_packing_round_trips() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(v.pos().to_dimacs(), 8);
        assert_eq!(v.neg().to_dimacs(), -8);
        assert_eq!(Lit::from_code(v.pos().code()), v.pos());
    }

    #[test]
    fn exactly_one_has_n_models() {
        for n in [2usize, 4, 7] {
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
            let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
            cnf.exactly_one(&lits);
            assert_eq!(count_models(&cnf, &vars), n, "n = {n}");
        }
    }

    #[test]
    fn at_most_k_counts_binomial_prefixes() {
        // Models of AMK(n, k) over the base vars = sum_{i<=k} C(n, i).
        let (n, k) = (6usize, 2usize);
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
        cnf.at_most_k(&lits, k);
        // C(6,0) + C(6,1) + C(6,2) = 1 + 6 + 15 = 22.
        assert_eq!(count_models(&cnf, &vars), 22);
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..3).map(|_| cnf.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
        cnf.at_most_k(&lits, 0);
        assert_eq!(count_models(&cnf, &vars), 1);
    }
}
