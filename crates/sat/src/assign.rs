//! CNF encoding of the defect-aware assignment problem.
//!
//! The abstract shape: `n` items (packed SMB clusters) must each take
//! exactly one slot from a per-item allowed set (the slots whose NRAM
//! configuration sets survive that cluster's folding schedule), no slot
//! may take two items, and optional capacity groups (rows/columns of
//! the grid with defect-thinned routing channels) bound how many items
//! they absorb. The encoder stays fully generic — callers translate
//! fabric defects into `allowed` sets and `groups`, and translate the
//! decoded assignment back into grid positions.
//!
//! Structural infeasibility (an item with an empty domain, or more
//! items than distinct usable slots) is detected *before* the solver
//! runs: such instances are pigeonhole-shaped, exponentially hard for
//! resolution, and their cause is better reported directly.

use std::collections::BTreeSet;

use nanomap_observe::budget::CancelToken;

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::{SolveOutcome, Solver, SolverOptions, SolverStats};

/// One capacity-limited slot group (e.g. a grid row whose surviving
/// channel wires support only `cap` occupants).
#[derive(Debug, Clone)]
pub struct CapacityGroup {
    /// Human-readable label, quoted in infeasibility summaries.
    pub label: String,
    /// Member slots.
    pub slots: Vec<u32>,
    /// Maximum number of items assigned into the group.
    pub cap: usize,
}

/// The assignment instance.
#[derive(Debug, Clone, Default)]
pub struct AssignmentProblem {
    /// Number of slots (0-based ids).
    pub num_slots: u32,
    /// Per-item allowed slots, each list sorted ascending.
    pub allowed: Vec<Vec<u32>>,
    /// Capacity side constraints.
    pub groups: Vec<CapacityGroup>,
}

/// Why an instance is infeasible before (or after) search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Infeasibility {
    /// An item has no usable slot at all.
    EmptyDomain {
        /// The item with the empty domain.
        item: usize,
    },
    /// Fewer distinct usable slots than items (pigeonhole).
    TooFewSlots {
        /// Items to place.
        items: usize,
        /// Distinct usable slots across all domains.
        usable: usize,
    },
    /// Capacity groups cannot absorb all the items that are confined to
    /// them.
    GroupOverflow {
        /// The overflowing group's label.
        label: String,
        /// Items that can only land inside the group.
        confined: usize,
        /// The group's capacity.
        cap: usize,
    },
    /// The solver proved UNSAT beyond the structural checks.
    Proven,
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::EmptyDomain { item } => {
                write!(f, "item {item} has no usable slot")
            }
            Infeasibility::TooFewSlots { items, usable } => {
                write!(f, "{items} items but only {usable} usable slots")
            }
            Infeasibility::GroupOverflow {
                label,
                confined,
                cap,
            } => write!(
                f,
                "{confined} items confined to group {label} with capacity {cap}"
            ),
            Infeasibility::Proven => write!(f, "proven unsatisfiable by search"),
        }
    }
}

/// The outcome of [`solve_assignment`].
#[derive(Debug, Clone, PartialEq)]
pub enum AssignOutcome {
    /// A satisfying assignment: `slot[i]` for each item `i`.
    Assigned(Vec<u32>),
    /// No assignment exists; the payload says why.
    Infeasible(Infeasibility),
    /// Interrupted (conflict budget or cancellation) before an answer.
    Interrupted(String),
}

/// The compiled CNF plus the variable map needed to decode models.
#[derive(Debug)]
pub struct Encoding {
    /// The formula.
    pub cnf: Cnf,
    /// `vars[i]` lists `(slot, var)` pairs for item `i`, slot-ascending.
    pub vars: Vec<Vec<(u32, Var)>>,
}

impl Encoding {
    /// Reads the assignment out of a model. Panics only on models that
    /// do not satisfy the encoding's exactly-one constraints, which a
    /// sound solver never produces.
    pub fn decode(&self, model: &[bool]) -> Vec<u32> {
        self.vars
            .iter()
            .enumerate()
            .map(|(item, pairs)| {
                pairs
                    .iter()
                    .find(|(_, v)| model[v.index()])
                    .unwrap_or_else(|| panic!("item {item}: no slot variable true in model"))
                    .0
            })
            .collect()
    }
}

/// Structural feasibility screen; `Err` carries the first violated
/// condition.
pub fn precheck(problem: &AssignmentProblem) -> Result<(), Infeasibility> {
    let mut usable: BTreeSet<u32> = BTreeSet::new();
    for (item, allowed) in problem.allowed.iter().enumerate() {
        if allowed.is_empty() {
            return Err(Infeasibility::EmptyDomain { item });
        }
        usable.extend(allowed.iter().copied());
    }
    if usable.len() < problem.allowed.len() {
        return Err(Infeasibility::TooFewSlots {
            items: problem.allowed.len(),
            usable: usable.len(),
        });
    }
    for group in &problem.groups {
        let members: BTreeSet<u32> = group.slots.iter().copied().collect();
        let confined = problem
            .allowed
            .iter()
            .filter(|allowed| allowed.iter().all(|s| members.contains(s)))
            .count();
        if confined > group.cap {
            return Err(Infeasibility::GroupOverflow {
                label: group.label.clone(),
                confined,
                cap: group.cap,
            });
        }
    }
    Ok(())
}

/// Compiles the instance to CNF. Run [`precheck`] first; encoding a
/// structurally infeasible instance produces a formula the solver will
/// grind on.
pub fn encode(problem: &AssignmentProblem) -> Encoding {
    let mut cnf = Cnf::new();
    let mut vars: Vec<Vec<(u32, Var)>> = Vec::with_capacity(problem.allowed.len());
    // Variables first, in (item, slot) order, so the encoding is
    // reproducible and variable indices are meaningful in DIMACS dumps.
    for allowed in &problem.allowed {
        vars.push(allowed.iter().map(|&s| (s, cnf.new_var())).collect());
    }
    // Exactly one slot per item.
    for pairs in &vars {
        let lits: Vec<Lit> = pairs.iter().map(|&(_, v)| v.pos()).collect();
        cnf.exactly_one(&lits);
    }
    // At most one item per slot.
    let mut by_slot: Vec<Vec<Lit>> = vec![Vec::new(); problem.num_slots as usize];
    for pairs in &vars {
        for &(s, v) in pairs {
            by_slot[s as usize].push(v.pos());
        }
    }
    for lits in &by_slot {
        cnf.at_most_one(lits);
    }
    // Capacity groups: occupancy indicators, then a sequential counter.
    for group in &problem.groups {
        let mut occ: Vec<Lit> = Vec::new();
        for &s in &group.slots {
            let users = &by_slot[s as usize];
            if users.is_empty() {
                continue;
            }
            let o = cnf.new_var();
            for &x in users {
                // x -> occ (one direction suffices for an upper bound).
                cnf.add_clause(vec![!x, o.pos()]);
            }
            occ.push(o.pos());
        }
        cnf.at_most_k(&occ, group.cap);
    }
    Encoding { cnf, vars }
}

/// End-to-end: precheck, encode, solve, decode. The token is polled
/// inside the solver at conflict and restart boundaries.
pub fn solve_assignment(
    problem: &AssignmentProblem,
    options: SolverOptions,
    token: &CancelToken,
) -> (AssignOutcome, SolverStats, u32) {
    if let Err(core) = precheck(problem) {
        return (AssignOutcome::Infeasible(core), SolverStats::default(), 0);
    }
    let encoding = encode(problem);
    let num_vars = encoding.cnf.num_vars();
    let mut solver = Solver::from_cnf(&encoding.cnf, options);
    let outcome = match solver.solve_with_token(token) {
        SolveOutcome::Sat(model) => AssignOutcome::Assigned(encoding.decode(&model)),
        SolveOutcome::Unsat => AssignOutcome::Infeasible(Infeasibility::Proven),
        SolveOutcome::Unknown(reason) => AssignOutcome::Interrupted(reason),
    };
    (outcome, solver.stats(), num_vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(problem: &AssignmentProblem, assignment: &[u32]) {
        assert_eq!(assignment.len(), problem.allowed.len());
        let mut used = BTreeSet::new();
        for (i, &s) in assignment.iter().enumerate() {
            assert!(problem.allowed[i].contains(&s), "item {i} on slot {s}");
            assert!(used.insert(s), "slot {s} double-booked");
        }
        for group in &problem.groups {
            let members: BTreeSet<u32> = group.slots.iter().copied().collect();
            let inside = assignment.iter().filter(|s| members.contains(s)).count();
            assert!(inside <= group.cap, "group {} overflows", group.label);
        }
    }

    fn solve(problem: &AssignmentProblem) -> AssignOutcome {
        let (out, _, _) =
            solve_assignment(problem, SolverOptions::default(), &CancelToken::unlimited());
        out
    }

    #[test]
    fn trivial_bijection() {
        let problem = AssignmentProblem {
            num_slots: 3,
            allowed: vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]],
            groups: Vec::new(),
        };
        match solve(&problem) {
            AssignOutcome::Assigned(a) => check(&problem, &a),
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn forced_chain_assignment() {
        // Item 0 only slot 0; item 1 slots {0,1}; item 2 slots {1,2}:
        // the only model is 0->0, 1->1, 2->2.
        let problem = AssignmentProblem {
            num_slots: 3,
            allowed: vec![vec![0], vec![0, 1], vec![1, 2]],
            groups: Vec::new(),
        };
        match solve(&problem) {
            AssignOutcome::Assigned(a) => {
                check(&problem, &a);
                assert_eq!(a, vec![0, 1, 2]);
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn empty_domain_is_structural() {
        let problem = AssignmentProblem {
            num_slots: 2,
            allowed: vec![vec![0, 1], vec![]],
            groups: Vec::new(),
        };
        assert_eq!(
            solve(&problem),
            AssignOutcome::Infeasible(Infeasibility::EmptyDomain { item: 1 })
        );
    }

    #[test]
    fn pigeonhole_is_structural_not_searched() {
        let problem = AssignmentProblem {
            num_slots: 8,
            allowed: vec![vec![2, 3]; 3],
            groups: Vec::new(),
        };
        let (out, stats, _) = solve_assignment(
            &problem,
            SolverOptions::default(),
            &CancelToken::unlimited(),
        );
        assert_eq!(
            out,
            AssignOutcome::Infeasible(Infeasibility::TooFewSlots {
                items: 3,
                usable: 2
            })
        );
        assert_eq!(stats.conflicts, 0, "structural cases must skip search");
    }

    #[test]
    fn hall_violation_is_proven_unsat() {
        // 3 items share the 2-slot union {0,1}; a fourth item owns
        // {2,3}, so 4 items see 4 distinct slots and the structural
        // screen passes — the solver must prove UNSAT itself.
        let problem = AssignmentProblem {
            num_slots: 4,
            allowed: vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![2, 3]],
            groups: Vec::new(),
        };
        assert_eq!(
            solve(&problem),
            AssignOutcome::Infeasible(Infeasibility::Proven)
        );
    }

    #[test]
    fn capacity_groups_spread_items() {
        // 4 items, 4 slots in two rows of 2; each row absorbs at most 2
        // (trivially satisfied), then at most 1 (infeasible: 4 items).
        let problem = AssignmentProblem {
            num_slots: 4,
            allowed: vec![vec![0, 1, 2, 3]; 4],
            groups: vec![
                CapacityGroup {
                    label: "row0".into(),
                    slots: vec![0, 1],
                    cap: 2,
                },
                CapacityGroup {
                    label: "row1".into(),
                    slots: vec![2, 3],
                    cap: 2,
                },
            ],
        };
        match solve(&problem) {
            AssignOutcome::Assigned(a) => check(&problem, &a),
            other => panic!("expected assignment, got {other:?}"),
        }
        let tight = AssignmentProblem {
            groups: vec![
                CapacityGroup {
                    label: "row0".into(),
                    slots: vec![0, 1],
                    cap: 1,
                },
                CapacityGroup {
                    label: "row1".into(),
                    slots: vec![2, 3],
                    cap: 1,
                },
            ],
            ..problem
        };
        // Structural screen: 4 items all confined to... neither group
        // alone (domains span both), so the solver proves it.
        assert!(matches!(
            solve(&tight),
            AssignOutcome::Infeasible(Infeasibility::Proven | Infeasibility::GroupOverflow { .. })
        ));
    }

    #[test]
    fn confined_overflow_is_structural() {
        let problem = AssignmentProblem {
            num_slots: 4,
            allowed: vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![2, 3]],
            groups: vec![CapacityGroup {
                label: "row0".into(),
                slots: vec![0, 1],
                cap: 2,
            }],
        };
        assert_eq!(
            solve(&problem),
            AssignOutcome::Infeasible(Infeasibility::GroupOverflow {
                label: "row0".into(),
                confined: 3,
                cap: 2
            })
        );
    }

    /// Every decoded model is a legal assignment, across a seeded sweep
    /// of random instances — the encoder invariant.
    #[test]
    fn random_instances_decode_legally() {
        use nanomap_observe::rng::XorShift64Star;
        for seed in 0..20u64 {
            let mut rng = XorShift64Star::new(seed * 7 + 1);
            let n = 4 + rng.below(12) as usize;
            let m = n as u32 + rng.below(8) as u32;
            let allowed: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let mut slots: Vec<u32> = (0..m).filter(|_| rng.next_f64() < 0.6).collect();
                    if slots.is_empty() {
                        slots.push(rng.below(u64::from(m)) as u32);
                    }
                    slots
                })
                .collect();
            let problem = AssignmentProblem {
                num_slots: m,
                allowed,
                groups: Vec::new(),
            };
            match solve(&problem) {
                AssignOutcome::Assigned(a) => check(&problem, &a),
                AssignOutcome::Infeasible(_) => {} // legitimately tight draws
                AssignOutcome::Interrupted(r) => panic!("unexpected interrupt: {r}"),
            }
        }
    }
}
