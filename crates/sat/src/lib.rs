//! `nanomap-sat`: a zero-dependency CDCL SAT solver and the CNF
//! encoder for defect-aware SMB slot assignment.
//!
//! This crate is the complete final rung of the NanoMap recovery
//! ladder (ROADMAP item 4b, after Hung et al., "Defect-Tolerant CMOL
//! Cell Assignment via Satisfiability", arXiv:0705.4320): when the
//! heuristic place-and-route ladder exhausts on a high-defect fabric,
//! the flow compiles the assignment instance to CNF and hands it to
//! the solver here. SAT yields a placement the normal route/timing
//! path re-validates; UNSAT yields a *typed* infeasibility with the
//! defect class that caused it, instead of a generic exhaustion error.
//!
//! The pieces:
//!
//! * [`cnf`] — literals, clauses and cardinality encodings
//!   (exactly-one, Sinz at-most-one, sequential-counter at-most-k),
//! * [`solver`] — watched-literal CDCL with VSIDS activity, first-UIP
//!   learning, Luby restarts, seeded deterministic branching, and
//!   cooperative interruption via conflict budgets and `CancelToken`,
//! * [`dimacs`] — DIMACS CNF round-tripping,
//! * [`assign`] — the assignment problem encoder/decoder with a
//!   structural infeasibility screen.
//!
//! Everything is deterministic by construction: the same formula and
//! seed produce the same search, the same statistics and the same
//! model on every run, which is what lets `qor-diff --exact` gate the
//! exact-recovery path.

pub mod assign;
pub mod cnf;
pub mod dimacs;
pub mod solver;

pub use assign::{
    solve_assignment, AssignOutcome, AssignmentProblem, CapacityGroup, Encoding, Infeasibility,
};
pub use cnf::{Cnf, Lit, Var};
pub use dimacs::{emit, parse, DimacsError};
pub use solver::{SolveOutcome, Solver, SolverOptions, SolverStats};
