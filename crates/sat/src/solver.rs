//! A conflict-driven clause-learning SAT solver.
//!
//! The classic architecture (MiniSat lineage), sized for the
//! defect-assignment instances the NanoMap recovery ladder produces:
//!
//! * two-watched-literal unit propagation,
//! * VSIDS-style variable activity with a deterministic indexed heap
//!   (ties break toward the lower variable index),
//! * first-UIP conflict analysis with cheap clause minimization,
//! * Luby-sequence restarts,
//! * seeded branching polarity (`XorShift64Star`), so the same seed
//!   walks the same search tree on every run, and
//! * cooperative interruption: a conflict budget plus a
//!   [`CancelToken`] polled at conflict and restart boundaries, so
//!   `--time-budget-ms` and daemon slice preemption reach into the
//!   solver rather than waiting for it.
//!
//! Everything is deterministic: no wall clock, no pointer hashing, no
//! thread scheduling can influence the result.

use nanomap_observe::budget::CancelToken;
use nanomap_observe::rng::XorShift64Star;

use crate::cnf::{Cnf, Lit, Var};

/// How often (in conflicts) the cancel token is polled.
const CANCEL_POLL_INTERVAL: u64 = 128;

/// Luby restart unit, in conflicts.
const RESTART_UNIT: u64 = 100;

/// Tuning knobs and interruption limits.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Seed for branching polarity.
    pub seed: u64,
    /// Give up (return [`SolveOutcome::Unknown`]) after this many
    /// conflicts. `None` means unbounded.
    pub conflict_budget: Option<u64>,
    /// Multiplicative VSIDS decay per conflict.
    pub activity_decay: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            seed: 0x5A7B_0001,
            conflict_budget: None,
            activity_decay: 0.95,
        }
    }
}

/// The result of a solve call.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Satisfiable; the model maps every variable index to its value.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// Interrupted before an answer (conflict budget or cancel token);
    /// the payload says which.
    Unknown(String),
}

/// Search statistics, for the observability bus.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts hit (= clauses learned before deletion).
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Learned clauses currently retained.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

const UNDEF: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
    deleted: bool,
}

type ClauseRef = usize;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause is satisfied and needs no walk.
    blocker: Lit,
}

/// Deterministic max-heap over variables keyed by activity; ties break
/// toward the smaller variable index so identical activity profiles
/// yield identical decisions.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX`.
    index: Vec<usize>,
}

impl VarHeap {
    fn with_vars(n: usize) -> Self {
        Self {
            heap: (0..n as u32).map(Var).collect(),
            index: (0..n).collect(),
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.index[v.index()] != usize::MAX
    }

    fn before(act: &[f64], a: Var, b: Var) -> bool {
        act[a.index()] > act[b.index()] || (act[a.index()] == act[b.index()] && a.0 < b.0)
    }

    fn percolate_up(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::before(act, v, self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.index[self.heap[i].index()] = i;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.index[v.index()] = i;
    }

    fn percolate_down(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.heap.len() && Self::before(act, self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if Self::before(act, self.heap[child], v) {
                self.heap[i] = self.heap[child];
                self.index[self.heap[i].index()] = i;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.index[v.index()] = i;
    }

    fn build(&mut self, act: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.percolate_down(act, i);
        }
    }

    fn push(&mut self, act: &[f64], v: Var) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.index[v.index()] = self.heap.len() - 1;
        self.percolate_up(act, self.heap.len() - 1);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.index[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.percolate_down(act, 0);
        }
        Some(top)
    }

    fn bumped(&mut self, act: &[f64], v: Var) {
        if self.contains(v) {
            self.percolate_up(act, self.index[v.index()]);
        }
    }
}

/// The CDCL solver.
#[derive(Debug)]
pub struct Solver {
    options: SolverOptions,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<u8>,
    /// Saved polarity for phase saving; seeded at construction.
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    propagate_head: usize,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    stats: SolverStats,
    /// Set when the input contains the empty clause or conflicting units.
    trivially_unsat: bool,
    /// Learned-clause count that triggers the next DB reduction.
    reduce_at: u64,
    live_learned: u64,
}

impl Solver {
    /// Builds a solver over a finished formula.
    pub fn from_cnf(cnf: &Cnf, options: SolverOptions) -> Self {
        let n = cnf.num_vars() as usize;
        let mut rng = XorShift64Star::new(options.seed ^ 0x5EED_CDC1_0000_0001);
        let polarity = (0..n).map(|_| rng.next_bool()).collect();
        let mut solver = Self {
            options,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![UNDEF; n],
            polarity,
            activity: vec![0.0; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::with_vars(n),
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            reason: vec![None; n],
            level: vec![0; n],
            propagate_head: 0,
            seen: vec![false; n],
            stats: SolverStats::default(),
            trivially_unsat: false,
            reduce_at: 2000,
            live_learned: 0,
        };
        solver.heap.build(&solver.activity);
        for clause in cnf.clauses() {
            solver.add_input_clause(clause);
        }
        solver
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value_lit(&self, lit: Lit) -> u8 {
        match self.assigns[lit.var().index()] {
            UNDEF => UNDEF,
            v => {
                if (v == TRUE) == lit.is_positive() {
                    TRUE
                } else {
                    FALSE
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn add_input_clause(&mut self, lits: &[Lit]) {
        if self.trivially_unsat {
            return;
        }
        // Dedup and drop tautologies.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x OR !x: tautology
            }
        }
        // Simplify against the level-0 assignment so both watches of an
        // attached clause start non-false (the watch invariant).
        if lits.iter().any(|&l| self.value_lit(l) == TRUE) {
            return;
        }
        lits.retain(|&l| self.value_lit(l) == UNDEF);
        match lits.len() {
            0 => self.trivially_unsat = true,
            1 => {
                self.enqueue(lits[0], None);
                // Settle level-0 implications right away so later unit
                // clauses see them.
                if self.propagate().is_some() {
                    self.trivially_unsat = true;
                }
            }
            _ => {
                self.attach_clause(lits, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool) -> ClauseRef {
        let cref = self.clauses.len();
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learned {
            self.live_learned += 1;
        }
        self.clauses.push(Clause {
            lits,
            learned,
            activity: 0.0,
            deleted: false,
        });
        cref
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(lit), UNDEF);
        let v = lit.var();
        self.assigns[v.index()] = if lit.is_positive() { TRUE } else { FALSE };
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.propagate_head < self.trail.len() {
            let p = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let w = watchers[i];
                if self.clauses[w.cref].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                if self.value_lit(w.blocker) == TRUE {
                    i += 1;
                    continue;
                }
                // Normalize: the false watch sits at index 1.
                {
                    let lits = &mut self.clauses[w.cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[w.cref].lits[0];
                if first != w.blocker && self.value_lit(first) == TRUE {
                    watchers[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[w.cref].lits.len() {
                    let cand = self.clauses[w.cref].lits[k];
                    if self.value_lit(cand) != FALSE {
                        self.clauses[w.cref].lits.swap(1, k);
                        self.watches[cand.code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if self.value_lit(first) == FALSE {
                    self.watches[false_lit.code()] = watchers;
                    self.propagate_head = self.trail.len();
                    return Some(w.cref);
                }
                self.enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[false_lit.code()] = watchers;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(&self.activity, v);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);
        loop {
            let cref = confl.expect("conflict clause");
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            p = Some(lit);
            confl = self.reason[lit.var().index()];
        }
        learnt[0] = !p.expect("first UIP");
        // Cheap minimization: drop a literal whose entire reason clause
        // is already subsumed by the rest of the learnt clause.
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = true;
        }
        let mut kept = vec![learnt[0]];
        for &lit in &learnt[1..] {
            let redundant = match self.reason[lit.var().index()] {
                None => false,
                Some(r) => self.clauses[r].lits.iter().all(|&q| {
                    q.var() == lit.var()
                        || self.seen[q.var().index()]
                        || self.level[q.var().index()] == 0
                }),
            };
            if !redundant {
                kept.push(lit);
            }
        }
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }
        let mut learnt = kept;
        // Backtrack level: highest level among the non-asserting lits.
        // That literal moves to index 1 so it becomes the second watch —
        // after backtracking it is the most recently falsified literal,
        // which keeps the watch invariant for the learned clause.
        let mut bt = 0;
        let mut deepest = 1;
        for (k, l) in learnt.iter().enumerate().skip(1) {
            let lvl = self.level[l.var().index()];
            if lvl > bt {
                bt = lvl;
                deepest = k;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, deepest);
        }
        (learnt, bt)
    }

    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = UNDEF;
            self.polarity[v.index()] = lit.is_positive();
            self.reason[v.index()] = None;
            self.heap.push(&self.activity, v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.propagate_head = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == UNDEF {
                return Some(v);
            }
        }
        None
    }

    /// Removes the lowest-activity half of the deletable learned clauses.
    /// A clause currently acting as a reason is locked; binary learned
    /// clauses are kept (they are cheap and strong).
    fn reduce_db(&mut self) {
        let mut deletable: Vec<(f64, ClauseRef)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learned && !c.deleted && c.lits.len() > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        deletable.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let locked: Vec<bool> = deletable
            .iter()
            .map(|&(_, cref)| {
                let head = self.clauses[cref].lits[0];
                self.value_lit(head) == TRUE && self.reason[head.var().index()] == Some(cref)
            })
            .collect();
        let target = deletable.len() / 2;
        let mut removed = 0;
        for (k, &(_, cref)) in deletable.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[k] {
                continue;
            }
            self.clauses[cref].deleted = true;
            self.clauses[cref].lits.clear();
            self.clauses[cref].lits.shrink_to_fit();
            self.live_learned -= 1;
            removed += 1;
        }
        self.stats.learned = self.live_learned;
    }

    /// The Luby sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed: if
    /// `x = i + 1` is `2^k - 1` the value is `2^(k-1)`, otherwise
    /// recurse on the position within the repeated prefix.
    fn luby(i: u64) -> u64 {
        let mut x = i + 1;
        loop {
            let k = u64::from(64 - x.leading_zeros());
            if x == (1u64 << k) - 1 {
                return 1u64 << (k - 1);
            }
            x -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Runs the search to completion, the conflict budget, or
    /// cancellation. With an unlimited token and no conflict budget the
    /// answer is always `Sat` or `Unsat`.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_with_token(&CancelToken::unlimited())
    }

    /// [`Self::solve`] under a cancel token, polled at conflict and
    /// restart boundaries.
    pub fn solve_with_token(&mut self, token: &CancelToken) -> SolveOutcome {
        if self.trivially_unsat {
            return SolveOutcome::Unsat;
        }
        if self.propagate().is_some() {
            return SolveOutcome::Unsat;
        }
        let mut restart_num = 0u64;
        let mut conflicts_until_restart = Self::luby(restart_num) * RESTART_UNIT;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    return SolveOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.bump_clause(cref);
                    self.enqueue(learnt[0], Some(cref));
                }
                self.stats.learned = self.live_learned;
                self.var_inc /= self.options.activity_decay;
                self.cla_inc /= 0.999;
                if let Some(limit) = self.options.conflict_budget {
                    if self.stats.conflicts >= limit {
                        return SolveOutcome::Unknown(format!(
                            "conflict budget exhausted ({limit} conflicts)"
                        ));
                    }
                }
                if self.stats.conflicts.is_multiple_of(CANCEL_POLL_INTERVAL) && token.expired() {
                    return SolveOutcome::Unknown("cancelled".into());
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if conflicts_until_restart == 0 {
                    restart_num += 1;
                    conflicts_until_restart = Self::luby(restart_num) * RESTART_UNIT;
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    if token.expired() {
                        return SolveOutcome::Unknown("cancelled".into());
                    }
                    if self.live_learned >= self.reduce_at {
                        self.reduce_db();
                        self.reduce_at += self.reduce_at / 2;
                    }
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model = self
                            .assigns
                            .iter()
                            .map(|&a| a == TRUE)
                            .collect::<Vec<bool>>();
                        return SolveOutcome::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let v = Var(i.unsigned_abs() - 1);
        if i > 0 {
            v.pos()
        } else {
            v.neg()
        }
    }

    fn cnf_of(max_var: u32, clauses: &[&[i32]]) -> Cnf {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(max_var);
        for c in clauses {
            cnf.add_clause(c.iter().map(|&i| lit(i)).collect::<Vec<_>>());
        }
        cnf
    }

    fn check_model(cnf: &Cnf, model: &[bool]) {
        for clause in cnf.clauses() {
            assert!(
                clause
                    .iter()
                    .any(|l| model[l.var().index()] == l.is_positive()),
                "clause {clause:?} falsified"
            );
        }
    }

    /// The pigeonhole principle PHP(h+1, h): h+1 pigeons into h holes.
    /// UNSAT, and exponentially hard for resolution — a solid check that
    /// conflict analysis and learning actually terminate with a proof.
    fn pigeonhole(holes: u32) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let var = |p: u32, h: u32| Var(p * holes + h);
        cnf.reserve_vars(pigeons * holes);
        for p in 0..pigeons {
            let lits: Vec<Lit> = (0..holes).map(|h| var(p, h).pos()).collect();
            cnf.add_clause(lits);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        assert!(matches!(s.solve(), SolveOutcome::Sat(_)));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause(Vec::<Lit>::new());
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let cnf = cnf_of(1, &[&[1], &[-1]]);
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn simple_sat_instance() {
        let cnf = cnf_of(3, &[&[1, 2], &[-1, 3], &[-2, -3], &[1, -3]]);
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        match s.solve() {
            SolveOutcome::Sat(model) => check_model(&cnf, &model),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn implication_chain_propagates() {
        // 1 -> 2 -> 3 -> ... -> 50, plus unit 1, plus !50: UNSAT.
        let n = 50;
        let mut clauses: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..n {
            clauses.push(vec![-i, i + 1]);
        }
        clauses.push(vec![-n]);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let cnf = cnf_of(n as u32, &refs);
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_is_unsat() {
        for holes in [3u32, 5, 6] {
            let cnf = pigeonhole(holes);
            let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
            assert_eq!(
                s.solve(),
                SolveOutcome::Unsat,
                "PHP({}, {holes})",
                holes + 1
            );
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn conflict_budget_interrupts_hard_instances() {
        let cnf = pigeonhole(9);
        let mut s = Solver::from_cnf(
            &cnf,
            SolverOptions {
                conflict_budget: Some(50),
                ..SolverOptions::default()
            },
        );
        match s.solve() {
            SolveOutcome::Unknown(reason) => assert!(reason.contains("conflict budget")),
            // A lucky learnt sequence may still finish PHP(10,9) in 50
            // conflicts in principle; treat a real answer as a pass too.
            SolveOutcome::Unsat => {}
            SolveOutcome::Sat(_) => panic!("PHP cannot be SAT"),
        }
    }

    #[test]
    fn cancelled_token_stops_the_search() {
        let cnf = pigeonhole(9);
        let token = CancelToken::cancellable();
        token.cancel();
        let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
        match s.solve_with_token(&token) {
            SolveOutcome::Unknown(reason) => assert_eq!(reason, "cancelled"),
            SolveOutcome::Unsat => {} // finished before the first poll
            SolveOutcome::Sat(_) => panic!("PHP cannot be SAT"),
        }
    }

    /// Random 3-SAT with a planted solution: always satisfiable, and the
    /// model must verify. Seeded shuffles keep the suite deterministic.
    #[test]
    fn planted_random_3sat_round_trips() {
        for seed in [1u64, 7, 42] {
            let n = 60u32;
            let m = 240;
            let mut rng = XorShift64Star::new(seed);
            let planted: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
            let mut cnf = Cnf::new();
            cnf.reserve_vars(n);
            for _ in 0..m {
                let mut clause = Vec::new();
                loop {
                    clause.clear();
                    while clause.len() < 3 {
                        let v = Var(rng.below(u64::from(n)) as u32);
                        if clause.iter().all(|l: &Lit| l.var() != v) {
                            clause.push(Lit::new(v, rng.next_bool()));
                        }
                    }
                    // Re-roll until the planted assignment satisfies it.
                    if clause
                        .iter()
                        .any(|l| planted[l.var().index()] == l.is_positive())
                    {
                        break;
                    }
                }
                cnf.add_clause(clause.clone());
            }
            let mut s = Solver::from_cnf(
                &cnf,
                SolverOptions {
                    seed,
                    ..SolverOptions::default()
                },
            );
            match s.solve() {
                SolveOutcome::Sat(model) => check_model(&cnf, &model),
                other => panic!("planted instance must be SAT, got {other:?}"),
            }
        }
    }

    /// Same formula, same seed, same decision trace — the stats vector
    /// is a fingerprint of the whole search.
    #[test]
    fn search_is_deterministic() {
        let cnf = pigeonhole(6);
        let run = || {
            let mut s = Solver::from_cnf(&cnf, SolverOptions::default());
            let out = s.solve();
            (out, s.stats())
        };
        let (oa, sa) = run();
        let (ob, sb) = run();
        assert_eq!(oa, ob);
        assert_eq!(sa, sb);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }
}
