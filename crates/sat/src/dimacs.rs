//! DIMACS CNF reading and writing, for interoperability and for
//! archiving the exact instances the recovery ladder hands the solver.

use std::fmt::Write as _;

use crate::cnf::{Cnf, Lit, Var};

/// A malformed DIMACS document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dimacs line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF document. Comments (`c ...`) are skipped; the
/// `p cnf <vars> <clauses>` header is required before any clause;
/// clauses are zero-terminated integer lists and may span lines.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<u32> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            if declared_vars.is_some() {
                return Err(DimacsError {
                    line,
                    message: "duplicate problem header".into(),
                });
            }
            let mut parts = trimmed.split_whitespace();
            let (_, fmt) = (parts.next(), parts.next());
            if fmt != Some("cnf") {
                return Err(DimacsError {
                    line,
                    message: format!("unsupported format {fmt:?} (want cnf)"),
                });
            }
            let vars: u32 =
                parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DimacsError {
                        line,
                        message: "bad variable count".into(),
                    })?;
            let _clauses: u64 =
                parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DimacsError {
                        line,
                        message: "bad clause count".into(),
                    })?;
            declared_vars = Some(vars);
            cnf.reserve_vars(vars);
            continue;
        }
        let Some(max_var) = declared_vars else {
            return Err(DimacsError {
                line,
                message: "clause before the problem header".into(),
            });
        };
        for tok in trimmed.split_whitespace() {
            let val: i64 = tok.parse().map_err(|_| DimacsError {
                line,
                message: format!("bad literal {tok:?}"),
            })?;
            if val == 0 {
                cnf.add_clause(std::mem::take(&mut current));
                continue;
            }
            let var = val.unsigned_abs() - 1;
            if var >= u64::from(max_var) {
                return Err(DimacsError {
                    line,
                    message: format!("literal {val} exceeds declared {max_var} variables"),
                });
            }
            current.push(Lit::new(Var(var as u32), val > 0));
        }
    }
    if !current.is_empty() {
        return Err(DimacsError {
            line: text.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    Ok(cnf)
}

/// Writes a formula as DIMACS CNF.
pub fn emit(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveOutcome, Solver, SolverOptions};

    #[test]
    fn round_trip_preserves_the_formula() {
        let text = "c a comment\np cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n1 -3 0\n";
        let cnf = parse(text).expect("parses");
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 4);
        let emitted = emit(&cnf);
        let reparsed = parse(&emitted).expect("emitted text parses");
        assert_eq!(cnf.clauses(), reparsed.clauses());
        assert_eq!(cnf.num_vars(), reparsed.num_vars());
        // And both solve identically.
        let a = Solver::from_cnf(&cnf, SolverOptions::default()).solve();
        let b = Solver::from_cnf(&reparsed, SolverOptions::default()).solve();
        assert_eq!(a, b);
        assert!(matches!(a, SolveOutcome::Sat(_)));
    }

    #[test]
    fn clauses_may_span_lines() {
        let cnf = parse("p cnf 2 1\n1\n2\n0\n").expect("parses");
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse("1 2 0\n").expect_err("no header");
        assert!(err.message.contains("header"), "{err}");
    }

    #[test]
    fn out_of_range_literal_is_an_error() {
        let err = parse("p cnf 2 1\n3 0\n").expect_err("var 3 undeclared");
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn unterminated_clause_is_an_error() {
        let err = parse("p cnf 2 1\n1 2\n").expect_err("missing 0");
        assert!(err.message.contains("unterminated"), "{err}");
    }
}
