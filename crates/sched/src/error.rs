//! Scheduling errors.

use std::error::Error;
use std::fmt;

/// Errors produced while building schedule items or running FDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The dependency chains do not fit in the requested number of stages.
    Infeasible {
        /// Requested stage count.
        stages: u32,
        /// Minimum stages required by the critical chain.
        required: u32,
    },
    /// A folding level of zero was requested.
    ZeroFoldingLevel,
    /// The underlying netlist is malformed.
    Netlist(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { stages, required } => write!(
                f,
                "schedule infeasible: {stages} folding stages requested but the critical chain needs {required}"
            ),
            Self::ZeroFoldingLevel => write!(f, "folding level must be at least 1"),
            Self::Netlist(msg) => write!(f, "netlist error: {msg}"),
        }
    }
}

impl Error for SchedError {}

impl From<nanomap_netlist::NetlistError> for SchedError {
    fn from(e: nanomap_netlist::NetlistError) -> Self {
        Self::Netlist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = SchedError::Infeasible {
            stages: 3,
            required: 5,
        };
        let text = e.to_string();
        assert!(text.contains('3') && text.contains('5'));
    }
}
