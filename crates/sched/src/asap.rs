//! ASAP/ALAP scheduling and time frames (Section 4.2.1, Fig. 3).

use crate::error::SchedError;
use crate::item::ItemGraph;

/// The feasible folding-cycle interval of every item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeFrames {
    /// Earliest feasible cycle per item (0-based).
    pub asap: Vec<u32>,
    /// Latest feasible cycle per item (0-based).
    pub alap: Vec<u32>,
    /// Number of folding cycles.
    pub stages: u32,
}

impl TimeFrames {
    /// Computes ASAP and ALAP schedules over `stages` folding cycles,
    /// honouring pinned items (already-scheduled FDS decisions).
    ///
    /// `pinned[i] = Some(c)` forces item `i` to cycle `c`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Infeasible`] if a chain cannot fit (or a pin
    /// contradicts the precedence constraints).
    pub fn compute(
        graph: &ItemGraph,
        stages: u32,
        pinned: &[Option<u32>],
    ) -> Result<Self, SchedError> {
        let n = graph.len();
        assert_eq!(pinned.len(), n, "one pin slot per item");
        let order = topo_order(graph)?;

        // ASAP: longest path from sources.
        let mut asap = vec![0u32; n];
        for &i in &order {
            let mut earliest = 0;
            for &(p, lat) in &graph.preds[i] {
                earliest = earliest.max(asap[p] + lat);
            }
            if let Some(pin) = pinned[i] {
                if pin < earliest {
                    return Err(SchedError::Infeasible {
                        stages,
                        required: earliest + 1,
                    });
                }
                earliest = pin;
            }
            asap[i] = earliest;
        }
        // ALAP: longest path to sinks, anchored at stages - 1.
        let mut alap = vec![stages.saturating_sub(1); n];
        for &i in order.iter().rev() {
            let mut latest = stages.saturating_sub(1);
            for &(s, lat) in &graph.succs[i] {
                latest = latest.min(alap[s].saturating_sub(lat));
                if alap[s] < lat {
                    return Err(SchedError::Infeasible {
                        stages,
                        required: asap[i] + lat + 1,
                    });
                }
            }
            if let Some(pin) = pinned[i] {
                if pin > latest {
                    return Err(SchedError::Infeasible {
                        stages,
                        required: asap[i].max(pin) + 1,
                    });
                }
                latest = pin;
            }
            alap[i] = latest;
        }
        for i in 0..n {
            if asap[i] > alap[i] {
                return Err(SchedError::Infeasible {
                    stages,
                    required: asap[i] + 1,
                });
            }
        }
        Ok(Self { asap, alap, stages })
    }

    /// The time frame `[asap, alap]` of an item.
    pub fn frame(&self, item: usize) -> (u32, u32) {
        (self.asap[item], self.alap[item])
    }

    /// `|time_frame_i|` of Eq. (5).
    pub fn frame_len(&self, item: usize) -> u32 {
        self.alap[item] - self.asap[item] + 1
    }

    /// Mobility (frame length − 1) of an item.
    pub fn mobility(&self, item: usize) -> u32 {
        self.alap[item] - self.asap[item]
    }
}

/// Topological order of the item graph.
///
/// # Errors
///
/// Returns an error if the item graph is cyclic (which would indicate a
/// malformed plane).
pub(crate) fn topo_order(graph: &ItemGraph) -> Result<Vec<usize>, SchedError> {
    let n = graph.len();
    let mut indeg = vec![0usize; n];
    for e in &graph.edges {
        indeg[e.to] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &(s, _) in &graph.succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        return Err(SchedError::Netlist("cyclic item graph".into()));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::LutId;

    /// Hand-built graph mirroring Fig. 3 of the paper: a chain plus a
    /// mobile LUT.
    fn fig3_like() -> ItemGraph {
        // items: 0 = LUT1 (chain head), 1 = LUT2 (mobile), 2 = clus1,
        // 3 = clus2, 4 = clus3 (sink), edges 0->4? Simplified:
        // 0 -> 2 -> 3 -> 4 (chain, latency 1 each), 1 -> 4 (mobile).
        let items: Vec<Item> = (0..5)
            .map(|i| Item {
                kind: ItemKind::Lut(LutId::new(i)),
                luts: vec![LutId::new(i)],
                weight: 1,
                window: 1,
                name: format!("i{i}"),
            })
            .collect();
        let edges = vec![
            ItemEdge {
                from: 0,
                to: 2,
                latency: 1,
            },
            ItemEdge {
                from: 2,
                to: 3,
                latency: 1,
            },
            ItemEdge {
                from: 3,
                to: 4,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 4,
                latency: 1,
            },
        ];
        let mut succs = vec![Vec::new(); 5];
        let mut preds = vec![Vec::new(); 5];
        for e in &edges {
            succs[e.from].push((e.to, e.latency));
            preds[e.to].push((e.from, e.latency));
        }
        ItemGraph {
            items,
            edges,
            succs,
            preds,
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn frames_match_hand_computation() {
        let g = fig3_like();
        let tf = TimeFrames::compute(&g, 4, &[None; 5]).unwrap();
        // Chain 0->2->3->4 is critical: frames are singletons.
        assert_eq!(tf.frame(0), (0, 0));
        assert_eq!(tf.frame(2), (1, 1));
        assert_eq!(tf.frame(3), (2, 2));
        assert_eq!(tf.frame(4), (3, 3));
        // Item 1 only needs to precede item 4: frame [0, 2].
        assert_eq!(tf.frame(1), (0, 2));
        assert_eq!(tf.frame_len(1), 3);
        assert_eq!(tf.mobility(1), 2);
    }

    #[test]
    fn infeasible_when_chain_longer_than_stages() {
        let g = fig3_like();
        let err = TimeFrames::compute(&g, 3, &[None; 5]).unwrap_err();
        assert!(matches!(err, SchedError::Infeasible { .. }));
    }

    #[test]
    fn pinning_restricts_frames() {
        let g = fig3_like();
        let mut pins = vec![None; 5];
        pins[1] = Some(2);
        let tf = TimeFrames::compute(&g, 4, &pins).unwrap();
        assert_eq!(tf.frame(1), (2, 2));
        // Other frames unchanged.
        assert_eq!(tf.frame(0), (0, 0));
    }

    #[test]
    fn contradictory_pin_is_infeasible() {
        let g = fig3_like();
        let mut pins = vec![None; 5];
        pins[4] = Some(1); // chain needs cycle 3
        assert!(TimeFrames::compute(&g, 4, &pins).is_err());
    }

    #[test]
    fn zero_latency_edges_allow_same_cycle() {
        let mut g = fig3_like();
        for e in &mut g.edges {
            e.latency = 0;
        }
        g.succs = vec![Vec::new(); 5];
        g.preds = vec![Vec::new(); 5];
        let edges = g.edges.clone();
        for e in &edges {
            g.succs[e.from].push((e.to, e.latency));
            g.preds[e.to].push((e.from, e.latency));
        }
        let tf = TimeFrames::compute(&g, 1, &[None; 5]).unwrap();
        for i in 0..5 {
            assert_eq!(tf.frame(i), (0, 0));
        }
    }
}
