//! Schedule results and LE-usage accounting.

use crate::dg::StorageOp;
use crate::force::LeShape;
use crate::item::ItemGraph;

/// A complete assignment of items to folding cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Folding cycle of every item (0-based).
    pub stage_of: Vec<u32>,
    /// Number of folding cycles.
    pub stages: u32,
}

impl Schedule {
    /// Creates a schedule from an assignment.
    pub fn new(stage_of: Vec<u32>, stages: u32) -> Self {
        Self { stage_of, stages }
    }

    /// Checks that every precedence edge is satisfied.
    pub fn validate(&self, graph: &ItemGraph) -> bool {
        graph
            .edges
            .iter()
            .all(|e| self.stage_of[e.to] >= self.stage_of[e.from] + e.latency)
            && self.stage_of.iter().all(|&s| s < self.stages)
    }

    /// LUTs scheduled in each folding cycle.
    pub fn lut_counts(&self, graph: &ItemGraph) -> Vec<u32> {
        let mut counts = vec![0u32; self.stages as usize];
        for (i, &s) in self.stage_of.iter().enumerate() {
            counts[s as usize] += graph.items[i].weight;
        }
        counts
    }

    /// Transient storage bits live in each folding cycle: an op whose last
    /// consumer runs after its producer occupies flip-flops from the
    /// producing cycle through the last consuming cycle.
    pub fn transient_bits(&self, ops: &[StorageOp]) -> Vec<u32> {
        let mut bits = vec![0u32; self.stages as usize];
        for op in ops {
            let s = self.stage_of[op.src];
            let t = op
                .dests
                .iter()
                .map(|&d| self.stage_of[d])
                .max()
                .unwrap_or(s);
            if t > s {
                for slot in bits.iter_mut().take(t as usize + 1).skip(s as usize) {
                    *slot += op.weight;
                }
            }
        }
        bits
    }

    /// Exact transient storage per folding cycle: each LUT output whose
    /// value crosses a folding-cycle boundary occupies one flip-flop from
    /// the cycle *after* its producer (the capturing clock edge ends the
    /// producing cycle) through its last consuming cycle. Unlike
    /// [`Self::transient_bits`] (the paper's per-item estimate, whose
    /// lifetimes include the source cycle per Fig. 4), this accounts bit
    /// by bit with edge-triggered occupancy, so one long-lived output does
    /// not inflate its whole cluster's lifetime.
    pub fn transient_bits_exact(
        &self,
        net: &nanomap_netlist::LutNetwork,
        graph: &ItemGraph,
    ) -> Vec<u32> {
        let mut bits = vec![0u32; self.stages as usize];
        let fanouts = net.fanouts();
        for (&lut, &item) in &graph.item_of_lut {
            let s = self.stage_of[item];
            let t = fanouts.lut_to_luts[lut.index()]
                .iter()
                .filter_map(|c| graph.item_of_lut.get(c))
                .map(|&ci| self.stage_of[ci])
                .max()
                .unwrap_or(s);
            if t > s {
                for slot in bits.iter_mut().take(t as usize + 1).skip(s as usize + 1) {
                    *slot += 1;
                }
            }
        }
        bits
    }

    /// [`Self::le_usage`] with the exact per-bit transient accounting of
    /// [`Self::transient_bits_exact`].
    pub fn le_usage_exact(
        &self,
        net: &nanomap_netlist::LutNetwork,
        graph: &ItemGraph,
        register_bits: u32,
        shape: LeShape,
    ) -> LeUsage {
        let luts = self.lut_counts(graph);
        let transients = self.transient_bits_exact(net, graph);
        let per_stage: Vec<u32> = luts
            .iter()
            .zip(&transients)
            .map(|(&l, &t)| {
                let for_luts = l.div_ceil(shape.luts);
                let for_ffs = (t + register_bits).div_ceil(shape.ffs);
                for_luts.max(for_ffs)
            })
            .collect();
        let peak = per_stage.iter().copied().max().unwrap_or(0);
        LeUsage {
            per_stage,
            peak,
            lut_counts: luts,
            transient_bits: transients,
        }
    }

    /// Logic elements needed in each folding cycle: an LE supplies
    /// `shape.luts` LUTs and `shape.ffs` flip-flops, and both the cycle's
    /// LUT computations and its live register bits must fit
    /// (`register_bits` models the plane/circuit registers that persist
    /// through every cycle — Section 3's plane registers).
    pub fn le_usage(
        &self,
        graph: &ItemGraph,
        ops: &[StorageOp],
        register_bits: u32,
        shape: LeShape,
    ) -> LeUsage {
        let luts = self.lut_counts(graph);
        let transients = self.transient_bits(ops);
        let per_stage: Vec<u32> = luts
            .iter()
            .zip(&transients)
            .map(|(&l, &t)| {
                let for_luts = l.div_ceil(shape.luts);
                let for_ffs = (t + register_bits).div_ceil(shape.ffs);
                for_luts.max(for_ffs)
            })
            .collect();
        let peak = per_stage.iter().copied().max().unwrap_or(0);
        LeUsage {
            per_stage,
            peak,
            lut_counts: luts,
            transient_bits: transients,
        }
    }
}

/// Per-cycle LE usage breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeUsage {
    /// LEs needed per folding cycle.
    pub per_stage: Vec<u32>,
    /// Maximum over the cycles — the plane's LE demand.
    pub peak: u32,
    /// LUTs per cycle.
    pub lut_counts: Vec<u32>,
    /// Transient storage bits per cycle.
    pub transient_bits: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::LutId;

    fn graph3() -> ItemGraph {
        let mk = |i: usize, w: u32| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: w,
            window: 1,
            name: format!("i{i}"),
        };
        let items = vec![mk(0, 4), mk(1, 2), mk(2, 1)];
        let edges = vec![ItemEdge {
            from: 0,
            to: 2,
            latency: 1,
        }];
        let mut succs = vec![Vec::new(); 3];
        let mut preds = vec![Vec::new(); 3];
        for e in &edges {
            succs[e.from].push((e.to, e.latency));
            preds[e.to].push((e.from, e.latency));
        }
        ItemGraph {
            items,
            edges,
            succs,
            preds,
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn validate_checks_latency() {
        let g = graph3();
        assert!(Schedule::new(vec![0, 0, 1], 2).validate(&g));
        assert!(!Schedule::new(vec![0, 0, 0], 2).validate(&g));
        assert!(!Schedule::new(vec![0, 0, 2], 2).validate(&g));
    }

    #[test]
    fn lut_counts_aggregate_weights() {
        let g = graph3();
        let s = Schedule::new(vec![0, 1, 1], 2);
        assert_eq!(s.lut_counts(&g), vec![4, 3]);
    }

    #[test]
    fn transient_bits_span_lifetime() {
        let ops = vec![StorageOp {
            src: 0,
            dests: vec![2],
            weight: 4,
        }];
        // Producer in cycle 0, consumer in cycle 2: live 0..=2.
        let s = Schedule::new(vec![0, 1, 2], 3);
        assert_eq!(s.transient_bits(&ops), vec![4, 4, 4]);
        // Same-cycle consumption needs no storage.
        let ops_same = vec![StorageOp {
            src: 1,
            dests: vec![2],
            weight: 9,
        }];
        let s2 = Schedule::new(vec![0, 2, 2], 3);
        assert_eq!(s2.transient_bits(&ops_same), vec![0, 0, 0]);
    }

    /// Mirrors the paper's motivational example accounting: 32 LUTs in the
    /// busiest cycle bound the LE count when registers fit in the spare
    /// flip-flops.
    #[test]
    fn le_usage_takes_max_of_luts_and_ffs() {
        let g = graph3();
        let shape = LeShape { luts: 1, ffs: 2 };
        let s = Schedule::new(vec![0, 1, 1], 2);
        // 20 register bits -> 10 LEs of FF demand; cycle 0 has 4 LUTs.
        let usage = s.le_usage(&g, &[], 20, shape);
        assert_eq!(usage.per_stage, vec![10, 10]);
        assert_eq!(usage.peak, 10);
        // With few registers the LUTs dominate.
        let usage2 = s.le_usage(&g, &[], 2, shape);
        assert_eq!(usage2.per_stage, vec![4, 3]);
    }
}
