//! Distribution graphs (Eqs. 5–11) and storage operations.
//!
//! Two DGs drive force-directed scheduling: the **LUT computation DG**
//! (Eq. 5) aggregating the probability that LUT work lands in each folding
//! cycle, and the **register storage DG** (Eqs. 6–11) aggregating the
//! probability that a stored bit is live in each cycle.

use std::collections::BTreeSet;

use crate::asap::TimeFrames;
use crate::item::ItemGraph;

/// How the bit width of a storage operation is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageWeightMode {
    /// `weight_i` of the producing item, as written in the paper
    /// (Eqs. 9–10 reuse the LUT weight).
    #[default]
    ItemWeight,
    /// The number of member LUT outputs actually consumed outside the
    /// item — a refinement; exposed for the ablation study.
    BoundaryOutputs,
}

/// A storage operation: the output of `src` is transferred to the
/// `dests` (Section 4.2.1, Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageOp {
    /// Producing item.
    pub src: usize,
    /// Consuming items (deduplicated).
    pub dests: Vec<usize>,
    /// Bits stored.
    pub weight: u32,
}

/// Builds the storage operations of a plane's item graph.
pub fn storage_ops(
    net: &nanomap_netlist::LutNetwork,
    graph: &ItemGraph,
    mode: StorageWeightMode,
) -> Vec<StorageOp> {
    let mut ops = Vec::new();
    for (src, item) in graph.items.iter().enumerate() {
        let dests: BTreeSet<usize> = graph.succs[src].iter().map(|&(d, _)| d).collect();
        if dests.is_empty() {
            continue;
        }
        let weight = match mode {
            StorageWeightMode::ItemWeight => item.weight,
            StorageWeightMode::BoundaryOutputs => {
                // Count member LUTs with at least one consumer outside the
                // item (another plane item).
                let member: BTreeSet<_> = item.luts.iter().copied().collect();
                let fanouts = net.fanouts();
                item.luts
                    .iter()
                    .filter(|&&l| {
                        fanouts.lut_to_luts[l.index()]
                            .iter()
                            .any(|c| !member.contains(c) && graph.item_of_lut.contains_key(c))
                    })
                    .count() as u32
            }
        };
        ops.push(StorageOp {
            src,
            dests: dests.into_iter().collect(),
            weight: weight.max(1),
        });
    }
    ops
}

/// The two distribution graphs over the folding cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionGraphs {
    /// `LUT_DG(j)` of Eq. (5).
    pub lut: Vec<f64>,
    /// `storage_DG(j)` of Eq. (11).
    pub storage: Vec<f64>,
}

impl DistributionGraphs {
    /// Builds both DGs from the current time frames.
    pub fn build(graph: &ItemGraph, frames: &TimeFrames, ops: &[StorageOp]) -> Self {
        let stages = frames.stages as usize;
        let mut lut = vec![0.0; stages];
        for (i, item) in graph.items.iter().enumerate() {
            let (a, b) = frames.frame(i);
            let p = f64::from(item.weight) / f64::from(frames.frame_len(i));
            for slot in lut.iter_mut().take(b as usize + 1).skip(a as usize) {
                *slot += p;
            }
        }
        let mut storage = vec![0.0; stages];
        for op in ops {
            add_storage_distribution(&mut storage, graph, frames, op, None);
        }
        Self { lut, storage }
    }

    /// The storage distribution contributed by a single op, optionally with
    /// one item tentatively pinned to a cycle (used by force evaluation).
    pub fn storage_distribution_of(
        graph: &ItemGraph,
        frames: &TimeFrames,
        op: &StorageOp,
        tentative: Option<(usize, u32)>,
    ) -> Vec<f64> {
        let mut dist = vec![0.0; frames.stages as usize];
        add_storage_distribution(&mut dist, graph, frames, op, tentative);
        dist
    }
}

/// Implements Eqs. (6)–(10) for one storage operation.
fn add_storage_distribution(
    acc: &mut [f64],
    _graph: &ItemGraph,
    frames: &TimeFrames,
    op: &StorageOp,
    tentative: Option<(usize, u32)>,
) {
    let frame = |i: usize| -> (u32, u32) {
        match tentative {
            Some((t, c)) if t == i => (c, c),
            _ => frames.frame(i),
        }
    };
    let (src_asap, src_alap) = frame(op.src);
    let dest_end_asap = op
        .dests
        .iter()
        .map(|&d| frame(d).0)
        .max()
        .expect("non-empty");
    let dest_end_alap = op
        .dests
        .iter()
        .map(|&d| frame(d).1)
        .max()
        .expect("non-empty");

    // Lifetimes (Fig. 4): begin at the source cycle, end at the last
    // destination cycle.
    let asap_len = f64::from(dest_end_asap.saturating_sub(src_asap) + 1);
    let alap_len = f64::from(dest_end_alap.saturating_sub(src_alap) + 1);
    // Eq. (6).
    let max_begin = src_asap;
    let max_end = dest_end_alap.max(src_asap);
    let max_len = f64::from(max_end - max_begin + 1);
    // Eq. (7): overlap of ASAP_life and ALAP_life.
    let overlap_begin = src_alap;
    let overlap_end_incl = dest_end_asap;
    let overlap_len = if overlap_end_incl >= overlap_begin {
        f64::from(overlap_end_incl - overlap_begin + 1)
    } else {
        0.0
    };
    // Eq. (8).
    let avg_life = (asap_len + alap_len + max_len) / 3.0;

    let weight = f64::from(op.weight);
    for j in max_begin..=max_end {
        let in_overlap = overlap_len > 0.0 && j >= overlap_begin && j <= overlap_end_incl;
        let value = if in_overlap {
            // Eq. (10): a bit is certainly live here.
            weight
        } else if max_len > overlap_len {
            // Eq. (9).
            weight * (avg_life - overlap_len) / (max_len - overlap_len)
        } else {
            0.0
        };
        acc[j as usize] += value.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::LutId;

    /// Builds the paper's Fig. 3 example: LUT1, LUT2, LUT3, LUT4 and
    /// clusters clus1..clus3 with dependencies chosen so LUT2's time frame
    /// is [1,3] (1-based), matching the text.
    ///
    /// Structure (1-based cycles, 3 stages):
    /// chain clus1 -> clus2 -> clus3 pins the critical path;
    /// LUT1 -> LUT3 (LUT3 feeds nothing); LUT2 free-ish feeding LUT4.
    fn fig3_graph() -> ItemGraph {
        let mk = |i: usize, w: u32, name: &str| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: w,
            window: 1,
            name: name.into(),
        };
        // 0: LUT1, 1: LUT2, 2: LUT3, 3: LUT4, 4: clus1, 5: clus2, 6: clus3.
        let items = vec![
            mk(0, 1, "LUT1"),
            mk(1, 1, "LUT2"),
            mk(2, 1, "LUT3"),
            mk(3, 1, "LUT4"),
            mk(4, 10, "clus1"),
            mk(5, 10, "clus2"),
            mk(6, 10, "clus3"),
        ];
        let edges = vec![
            ItemEdge {
                from: 4,
                to: 5,
                latency: 1,
            },
            ItemEdge {
                from: 5,
                to: 6,
                latency: 1,
            },
            ItemEdge {
                from: 0,
                to: 2,
                latency: 1,
            },
            // LUT2 feeds LUT3 and LUT4 (storage example of Fig. 4).
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 3,
                latency: 1,
            },
        ];
        let mut succs = vec![Vec::new(); items.len()];
        let mut preds = vec![Vec::new(); items.len()];
        for e in &edges {
            succs[e.from].push((e.to, e.latency));
            preds[e.to].push((e.from, e.latency));
        }
        ItemGraph {
            items,
            edges,
            succs,
            preds,
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn lut_dg_sums_to_total_weight() {
        let g = fig3_graph();
        let tf = TimeFrames::compute(&g, 3, &vec![None; g.len()]).unwrap();
        let dgs = DistributionGraphs::build(&g, &tf, &[]);
        let total: f64 = dgs.lut.iter().sum();
        assert!((total - f64::from(g.total_weight())).abs() < 1e-9);
    }

    #[test]
    fn critical_chain_concentrates_dg() {
        let g = fig3_graph();
        let tf = TimeFrames::compute(&g, 3, &vec![None; g.len()]).unwrap();
        let dgs = DistributionGraphs::build(&g, &tf, &[]);
        // clus1..3 are pinned to cycles 0,1,2 with weight 10 each.
        for j in 0..3 {
            assert!(dgs.lut[j] >= 10.0);
        }
    }

    /// The Fig. 4 example: storage S from LUT2 to LUT3/LUT4.
    /// With 3 stages: LUT2 frame [0,1] (0-based; it must precede LUT3
    /// [1,2]... here LUT3 has no successors so frames are wide).
    #[test]
    fn storage_lifetime_math_matches_eq6_to_eq8() {
        let g = fig3_graph();
        let tf = TimeFrames::compute(&g, 3, &vec![None; g.len()]).unwrap();
        // LUT2 = item 1: frame [0, 1]; LUT3 = item 2: frame [1, 2];
        // LUT4 = item 3: frame [1, 2].
        assert_eq!(tf.frame(1), (0, 1));
        assert_eq!(tf.frame(2), (1, 2));
        assert_eq!(tf.frame(3), (1, 2));
        let ops = [StorageOp {
            src: 1,
            dests: vec![2, 3],
            weight: 1,
        }];
        // ASAP life = [0, 1] len 2; ALAP life = [1, 2] len 2;
        // max life = [0, 2] len 3; overlap = [1, 1] len 1;
        // avg = (2 + 2 + 3) / 3 = 7/3.
        let dist = DistributionGraphs::storage_distribution_of(&g, &tf, &ops[0], None);
        // Overlap cycle 1 gets full weight.
        assert!((dist[1] - 1.0).abs() < 1e-9);
        // Cycles 0 and 2: (avg - ov)/(max - ov) = (7/3 - 1)/2 = 2/3.
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((dist[2] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fully_scheduled_storage_is_exact() {
        let g = fig3_graph();
        let mut pins = vec![None; g.len()];
        pins[1] = Some(0);
        pins[2] = Some(2);
        pins[3] = Some(1);
        let tf = TimeFrames::compute(&g, 3, &pins).unwrap();
        let op = StorageOp {
            src: 1,
            dests: vec![2, 3],
            weight: 4,
        };
        let dist = DistributionGraphs::storage_distribution_of(&g, &tf, &op, None);
        // Live cycles 0..=2 (src 0, last dest 2), weight 4 each.
        assert_eq!(dist, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn tentative_pin_changes_distribution() {
        let g = fig3_graph();
        let tf = TimeFrames::compute(&g, 3, &vec![None; g.len()]).unwrap();
        let op = StorageOp {
            src: 1,
            dests: vec![2, 3],
            weight: 1,
        };
        let free = DistributionGraphs::storage_distribution_of(&g, &tf, &op, None);
        let pinned = DistributionGraphs::storage_distribution_of(&g, &tf, &op, Some((1, 1)));
        assert_ne!(free, pinned);
        // Pinning the source to cycle 1 removes any cycle-0 storage.
        assert!(pinned[0].abs() < 1e-9);
    }

    #[test]
    fn storage_ops_dedupe_destinations() {
        let g = fig3_graph();
        // Build a trivial net (storage_ops only uses fanouts for the
        // refined mode; ItemWeight mode ignores it).
        let net = nanomap_netlist::LutNetwork::new("t");
        let ops = storage_ops(&net, &g, StorageWeightMode::ItemWeight);
        let lut2_op = ops.iter().find(|o| o.src == 1).unwrap();
        assert_eq!(lut2_op.dests, vec![2, 3]);
        assert_eq!(lut2_op.weight, 1);
        // Sinks produce no ops.
        assert!(!ops.iter().any(|o| o.src == 6));
    }
}
