//! Force calculation (Eqs. 12–14).
//!
//! A force measures the change in expected resource concurrency caused by
//! a scheduling decision. The *self-force* of assigning item `i` to cycle
//! `j` collapses `i`'s probability distribution onto `j` (Eq. 13); NATURE
//! LEs hold both LUTs and flip-flops, so the self-force combines the LUT
//! and storage components as `max(LUT/h, storage/l)` (Eq. 14). Scheduling
//! `i` also clips the time frames of its predecessors and successors;
//! their induced forces are added to the total.

use crate::asap::TimeFrames;
use crate::dg::{DistributionGraphs, StorageOp};
use crate::item::ItemGraph;

/// Resource shape of an LE: `h` LUTs and `l` flip-flops (Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeShape {
    /// LUTs per LE.
    pub luts: u32,
    /// Flip-flops per LE.
    pub ffs: u32,
}

impl Default for LeShape {
    fn default() -> Self {
        Self { luts: 1, ffs: 2 }
    }
}

/// Force evaluator bound to one DG snapshot.
#[derive(Debug)]
pub struct ForceModel<'a> {
    graph: &'a ItemGraph,
    frames: &'a TimeFrames,
    dgs: &'a DistributionGraphs,
    ops: &'a [StorageOp],
    /// Indices into `ops` touching each item (as src or dest).
    ops_of_item: Vec<Vec<usize>>,
    shape: LeShape,
}

impl<'a> ForceModel<'a> {
    /// Creates an evaluator for the current frames and DGs.
    pub fn new(
        graph: &'a ItemGraph,
        frames: &'a TimeFrames,
        dgs: &'a DistributionGraphs,
        ops: &'a [StorageOp],
        shape: LeShape,
    ) -> Self {
        let mut ops_of_item = vec![Vec::new(); graph.len()];
        for (k, op) in ops.iter().enumerate() {
            ops_of_item[op.src].push(k);
            for &d in &op.dests {
                ops_of_item[d].push(k);
            }
        }
        Self {
            graph,
            frames,
            dgs,
            ops,
            ops_of_item,
            shape,
        }
    }

    /// Force of changing an item's LUT distribution from frame `old` to
    /// frame `new` (Eq. 13 generalized: `Σ DG(k) · ΔDG_i(k)` with the
    /// item's weight folded into the distribution change).
    fn lut_frame_force(&self, item: usize, old: (u32, u32), new: (u32, u32)) -> f64 {
        let weight = f64::from(self.graph.items[item].weight);
        let old_p = weight / f64::from(old.1 - old.0 + 1);
        let new_p = weight / f64::from(new.1 - new.0 + 1);
        let mut force = 0.0;
        for k in new.0..=new.1 {
            force += self.dgs.lut[k as usize] * new_p;
        }
        for k in old.0..=old.1 {
            force -= self.dgs.lut[k as usize] * old_p;
        }
        force
    }

    /// LUT self-force of assigning `item` to cycle `j` (Eq. 13).
    pub fn lut_self_force(&self, item: usize, j: u32) -> f64 {
        self.lut_frame_force(item, self.frames.frame(item), (j, j))
    }

    /// Storage self-force of assigning `item` to cycle `j`: the change of
    /// the storage distributions of every op touching `item`, dotted with
    /// the storage DG.
    pub fn storage_self_force(&self, item: usize, j: u32) -> f64 {
        let mut force = 0.0;
        for &k in &self.ops_of_item[item] {
            let op = &self.ops[k];
            let before =
                DistributionGraphs::storage_distribution_of(self.graph, self.frames, op, None);
            let after = DistributionGraphs::storage_distribution_of(
                self.graph,
                self.frames,
                op,
                Some((item, j)),
            );
            for (cycle, (&a, &b)) in after.iter().zip(&before).enumerate() {
                force += self.dgs.storage[cycle] * (a - b);
            }
        }
        force
    }

    /// Combined self-force (Eq. 14): `max(LUT/h, storage/l)`.
    pub fn self_force(&self, item: usize, j: u32) -> f64 {
        let lut = self.lut_self_force(item, j) / f64::from(self.shape.luts);
        let storage = self.storage_self_force(item, j) / f64::from(self.shape.ffs);
        lut.max(storage)
    }

    /// Predecessor and successor forces: frame clippings induced by
    /// assigning `item` to `j`, evaluated with Eq. (13) on the LUT DG.
    pub fn neighbor_forces(&self, item: usize, j: u32) -> f64 {
        let mut force = 0.0;
        for &(p, lat) in &self.graph.preds[item] {
            let (a, b) = self.frames.frame(p);
            let clipped = b.min(j.saturating_sub(lat));
            if j < lat {
                // Infeasible; FDS never proposes this (j >= asap >= lat).
                continue;
            }
            if clipped < b {
                force += self.lut_frame_force(p, (a, b), (a, clipped.max(a)))
                    / f64::from(self.shape.luts);
            }
        }
        for &(s, lat) in &self.graph.succs[item] {
            let (a, b) = self.frames.frame(s);
            let clipped = a.max(j + lat);
            if clipped > a {
                force += self.lut_frame_force(s, (a, b), (clipped.min(b), b))
                    / f64::from(self.shape.luts);
            }
        }
        force
    }

    /// Total force of assigning `item` to cycle `j` (self + neighbors).
    pub fn total_force(&self, item: usize, j: u32) -> f64 {
        self.self_force(item, j) + self.neighbor_forces(item, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dg::StorageWeightMode;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::LutId;

    /// Two independent weight-1 items over 2 cycles plus one heavy pinned
    /// item in cycle 0: the force must push the mobile items to cycle 1.
    fn skewed_graph() -> ItemGraph {
        let mk = |i: usize, w: u32| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: w,
            window: 1,
            name: format!("i{i}"),
        };
        let items = vec![mk(0, 10), mk(1, 1), mk(2, 1)];
        // Heavy item 0 is made immobile by an edge to a sink in cycle 1?
        // Simpler: no edges; we'll pin it through TimeFrames.
        ItemGraph {
            items,
            edges: vec![],
            succs: vec![Vec::new(); 3],
            preds: vec![Vec::new(); 3],
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn force_prefers_empty_cycle() {
        let g = skewed_graph();
        let mut pins = vec![None; 3];
        pins[0] = Some(0); // heavy item in cycle 0
        let tf = TimeFrames::compute(&g, 2, &pins).unwrap();
        let ops = crate::dg::storage_ops(
            &nanomap_netlist::LutNetwork::new("t"),
            &g,
            StorageWeightMode::ItemWeight,
        );
        let dgs = DistributionGraphs::build(&g, &tf, &ops);
        let model = ForceModel::new(&g, &tf, &dgs, &ops, LeShape::default());
        // Item 1 should feel a lower force in cycle 1 than cycle 0.
        assert!(model.total_force(1, 1) < model.total_force(1, 0));
    }

    #[test]
    fn self_force_of_pinned_item_is_zero_delta() {
        let g = skewed_graph();
        let mut pins = vec![None; 3];
        pins[0] = Some(0);
        let tf = TimeFrames::compute(&g, 2, &pins).unwrap();
        let dgs = DistributionGraphs::build(&g, &tf, &[]);
        let model = ForceModel::new(&g, &tf, &dgs, &[], LeShape::default());
        // Item 0's frame is already (0,0): re-assigning it there changes
        // nothing.
        assert!(model.lut_self_force(0, 0).abs() < 1e-9);
    }

    #[test]
    fn neighbor_forces_account_for_clipping() {
        // Chain 0 -> 1 (latency 1), both weight 1, 3 stages. Assigning
        // item 0 to cycle 1 clips item 1's frame [1,2] to [2,2].
        let mk = |i: usize| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: 1,
            window: 1,
            name: format!("i{i}"),
        };
        let items = vec![mk(0), mk(1)];
        let edges = vec![ItemEdge {
            from: 0,
            to: 1,
            latency: 1,
        }];
        let mut succs = vec![Vec::new(); 2];
        let mut preds = vec![Vec::new(); 2];
        for e in &edges {
            succs[e.from].push((e.to, e.latency));
            preds[e.to].push((e.from, e.latency));
        }
        let g = ItemGraph {
            items,
            edges,
            succs,
            preds,
            item_of_lut: Default::default(),
            folding_level: 1,
        };
        let tf = TimeFrames::compute(&g, 3, &[None; 2]).unwrap();
        assert_eq!(tf.frame(0), (0, 1));
        assert_eq!(tf.frame(1), (1, 2));
        let dgs = DistributionGraphs::build(&g, &tf, &[]);
        let model = ForceModel::new(&g, &tf, &dgs, &[], LeShape::default());
        // Assigning 0 to cycle 1 must exert a successor force; to cycle 0
        // leaves the successor frame untouched.
        let f_move = model.neighbor_forces(0, 1);
        let f_stay = model.neighbor_forces(0, 0);
        assert!(f_stay.abs() < 1e-9);
        assert!(f_move.abs() > 1e-9);
    }

    #[test]
    fn storage_component_uses_ff_capacity() {
        let g = skewed_graph();
        let tf = TimeFrames::compute(&g, 2, &[None; 3]).unwrap();
        let op = StorageOp {
            src: 1,
            dests: vec![2],
            weight: 8,
        };
        let ops = vec![op];
        let dgs = DistributionGraphs::build(&g, &tf, &ops);
        let narrow = ForceModel::new(&g, &tf, &dgs, &ops, LeShape { luts: 1, ffs: 1 });
        let wide = ForceModel::new(&g, &tf, &dgs, &ops, LeShape { luts: 1, ffs: 8 });
        // More FFs per LE shrink the storage force component.
        let f_narrow = narrow.storage_self_force(1, 0) / 1.0;
        let f_wide = wide.storage_self_force(1, 0) / 8.0;
        if f_narrow.abs() > 1e-12 {
            assert!(f_wide.abs() < f_narrow.abs());
        }
    }
}
