//! Schedule items: LUTs and LUT clusters, plus their dependency graph.
//!
//! NanoMap schedules two kinds of objects onto folding cycles (Section 3):
//! single LUTs, and *LUT clusters* — the slice of an RTL module whose
//! member LUTs lie within one depth window of `p` logic levels for
//! folding level `p` ("all the LUTs at a depth less than or equal to `p`
//! in the module are grouped into the first cluster, …").
//!
//! Loose (module-less) LUTs keep their own identity; precedence between
//! items carries a latency of 0 when both endpoints sit in the same depth
//! window (a combinational chain of ≤ `p` levels may share one folding
//! cycle — that is exactly what level-`p` folding executes) and 1
//! otherwise, which guarantees every chain fits in
//! `ceil(depth_max / p)` stages while preserving scheduling mobility.

use std::collections::HashMap;

use nanomap_netlist::plane::Plane;
use nanomap_netlist::{LutId, LutNetwork, ModuleId, SignalRef};

use crate::error::SchedError;

/// What a schedule item is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A single loose LUT.
    Lut(LutId),
    /// A depth-window slice of an RTL module (`mul:c1` style cluster).
    Cluster {
        /// Originating module.
        module: ModuleId,
        /// 1-based depth window within the module.
        window: u32,
    },
}

/// One schedulable unit.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Member LUTs (one entry for a loose LUT).
    pub luts: Vec<LutId>,
    /// `weight_i` of Eq. (5): the number of member LUTs.
    pub weight: u32,
    /// 1-based depth window of the item within the plane.
    pub window: u32,
    /// Diagnostic name (`lut42` or `mul:c1`).
    pub name: String,
}

/// A dependency edge between items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemEdge {
    /// Producing item index.
    pub from: usize,
    /// Consuming item index.
    pub to: usize,
    /// Minimum stage separation (0 = may share a folding cycle).
    pub latency: u32,
}

/// The item dependency graph of one plane at a given folding level.
#[derive(Debug, Clone)]
pub struct ItemGraph {
    /// Items, in construction order.
    pub items: Vec<Item>,
    /// Dependency edges (deduplicated, max latency kept).
    pub edges: Vec<ItemEdge>,
    /// Successor adjacency: `(to, latency)` per item.
    pub succs: Vec<Vec<(usize, u32)>>,
    /// Predecessor adjacency: `(from, latency)` per item.
    pub preds: Vec<Vec<(usize, u32)>>,
    /// Item index of every member LUT.
    pub item_of_lut: HashMap<LutId, usize>,
    /// Folding level the graph was built for.
    pub folding_level: u32,
}

impl ItemGraph {
    /// Builds the item graph for `plane` of `net` at folding level `p`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ZeroFoldingLevel`] if `p == 0`.
    pub fn build(net: &LutNetwork, plane: &Plane, p: u32) -> Result<Self, SchedError> {
        if p == 0 {
            return Err(SchedError::ZeroFoldingLevel);
        }
        // Group member LUTs into items.
        let mut items: Vec<Item> = Vec::new();
        let mut item_of_lut: HashMap<LutId, usize> = HashMap::new();
        let mut cluster_index: HashMap<(ModuleId, u32), usize> = HashMap::new();
        for (pos, &lut_id) in plane.luts.iter().enumerate() {
            let lut = net.lut(lut_id);
            let plane_depth = plane.lut_depths[pos];
            let window = plane_depth.div_ceil(p).max(1);
            match lut.origin {
                Some(origin) => {
                    // Clusters slice a module along the plane's (ALAP)
                    // depth windows, so every cluster fits one folding
                    // cycle of p logic levels.
                    let key = (origin.module, window);
                    let idx = *cluster_index.entry(key).or_insert_with(|| {
                        items.push(Item {
                            kind: ItemKind::Cluster {
                                module: origin.module,
                                window,
                            },
                            luts: Vec::new(),
                            weight: 0,
                            window,
                            name: format!("{}:c{}", net.module_name(origin.module), window),
                        });
                        items.len() - 1
                    });
                    items[idx].luts.push(lut_id);
                    items[idx].weight += 1;
                    item_of_lut.insert(lut_id, idx);
                }
                None => {
                    items.push(Item {
                        kind: ItemKind::Lut(lut_id),
                        luts: vec![lut_id],
                        weight: 1,
                        window,
                        name: lut
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("lut{}", lut_id.index())),
                    });
                    item_of_lut.insert(lut_id, items.len() - 1);
                }
            }
        }
        // Edges: LUT-level dependencies lifted to items.
        let mut edge_map: HashMap<(usize, usize), u32> = HashMap::new();
        for &lut_id in &plane.luts {
            let to_item = item_of_lut[&lut_id];
            for input in &net.lut(lut_id).inputs {
                if let SignalRef::Lut(src) = input {
                    if let Some(&from_item) = item_of_lut.get(src) {
                        if from_item == to_item {
                            continue;
                        }
                        let latency = u32::from(
                            items[from_item].window != items[to_item].window
                                || !same_kind_shareable(&items[from_item], &items[to_item]),
                        );
                        let slot = edge_map.entry((from_item, to_item)).or_insert(0);
                        *slot = (*slot).max(latency);
                    }
                }
            }
        }
        let edges: Vec<ItemEdge> = edge_map
            .into_iter()
            .map(|((from, to), latency)| ItemEdge { from, to, latency })
            .collect();
        let mut succs = vec![Vec::new(); items.len()];
        let mut preds = vec![Vec::new(); items.len()];
        for e in &edges {
            succs[e.from].push((e.to, e.latency));
            preds[e.to].push((e.from, e.latency));
        }
        Ok(Self {
            items,
            edges,
            succs,
            preds,
            item_of_lut,
            folding_level: p,
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the plane has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total LUT weight of all items.
    pub fn total_weight(&self) -> u32 {
        self.items.iter().map(|i| i.weight).sum()
    }
}

/// Two connected items may share a folding cycle only if chaining them
/// keeps the intra-cycle depth within the window guarantee. Cluster-to-
/// cluster edges between *different modules* in the same window are kept
/// shareable (their combined chain stays within one window's depth);
/// everything is governed by window equality, so this hook currently
/// always allows sharing — it exists to make the rule explicit and
/// testable.
fn same_kind_shareable(_from: &Item, _to: &Item) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_techmap::{expand, ExpandOptions};

    /// Adder (depth 4) feeding a register, one plane.
    fn adder_plane() -> (LutNetwork, PlaneSet) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let r = b.register("r", 4);
        b.connect(add, 0, r, 0).unwrap();
        let y = b.output("y", 4);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        (net, planes)
    }

    #[test]
    fn module_luts_cluster_by_window() {
        let (net, planes) = adder_plane();
        let plane = &planes.planes()[0];
        // Level-2 folding on a depth-4 adder: two clusters.
        let g = ItemGraph::build(&net, plane, 2).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_weight(), 8);
        let names: Vec<&str> = g.items.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"add:c1"));
        assert!(names.contains(&"add:c2"));
        // c1 -> c2 with latency 1 (different windows).
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].latency, 1);
    }

    #[test]
    fn level4_folding_single_cluster() {
        let (net, planes) = adder_plane();
        let g = ItemGraph::build(&net, &planes.planes()[0], 4).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.items[0].weight, 8);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn level1_folding_one_cluster_per_level() {
        let (net, planes) = adder_plane();
        let g = ItemGraph::build(&net, &planes.planes()[0], 1).unwrap();
        // ALAP depths: the carry chain paces the windows (carry0 at 1,
        // carry1 at 2, carry2 at 3) and every sum bit lands in the final
        // window next to the register boundary.
        assert_eq!(g.len(), 4);
        assert_eq!(g.total_weight(), 8);
        // The chain c1 -> c2 -> c3 -> c4 exists, plus carry-to-sum edges
        // jumping ahead; all cross-window edges carry latency 1.
        assert!(g.edges.len() >= 3);
        for e in &g.edges {
            assert_eq!(e.latency, 1);
            assert!(g.items[e.from].window < g.items[e.to].window);
        }
    }

    #[test]
    fn zero_folding_level_rejected() {
        let (net, planes) = adder_plane();
        assert_eq!(
            ItemGraph::build(&net, &planes.planes()[0], 0).unwrap_err(),
            SchedError::ZeroFoldingLevel
        );
    }

    #[test]
    fn loose_luts_are_single_items() {
        // A gate-level style network without origins.
        let mut net = LutNetwork::new("loose");
        let a = net.add_input("a");
        let l1 = net.add_lut(nanomap_netlist::TruthTable::buffer(), vec![a]);
        let l2 = net.add_lut(nanomap_netlist::TruthTable::inverter(), vec![l1]);
        net.add_output("y", l2);
        let planes = PlaneSet::extract(&net).unwrap();
        let g = ItemGraph::build(&net, &planes.planes()[0], 1).unwrap();
        assert_eq!(g.len(), 2);
        assert!(matches!(g.items[0].kind, ItemKind::Lut(_)));
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].latency, 1);
    }

    #[test]
    fn same_window_edges_have_zero_latency() {
        let mut net = LutNetwork::new("zl");
        let a = net.add_input("a");
        let l1 = net.add_lut(nanomap_netlist::TruthTable::buffer(), vec![a]);
        let l2 = net.add_lut(nanomap_netlist::TruthTable::inverter(), vec![l1]);
        net.add_output("y", l2);
        let planes = PlaneSet::extract(&net).unwrap();
        // p = 2: both LUTs in window 1 -> latency 0.
        let g = ItemGraph::build(&net, &planes.planes()[0], 2).unwrap();
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].latency, 0);
    }
}
