//! Scheduling of LUTs and LUT clusters onto folding cycles.
//!
//! This crate implements the heart of NanoMap's logic-mapping step
//! (Section 4.2 of the paper): the assignment of LUT and LUT-cluster
//! computations to the folding cycles of temporal logic folding, using
//! **force-directed scheduling** (FDS) adapted from Paulin and Knight
//! \[13\]:
//!
//! * [`ItemGraph`] — LUT-cluster partitioning of each plane at a folding
//!   level, with depth-window precedence latencies;
//! * [`TimeFrames`] — ASAP/ALAP schedules and mobility (Fig. 3);
//! * [`DistributionGraphs`] — LUT computation and register storage DGs
//!   (Eqs. 5–11, Fig. 5);
//! * [`ForceModel`] — self and neighbour forces (Eqs. 12–14);
//! * [`schedule_fds`] — Algorithm 1;
//! * [`schedule_asap`] / [`schedule_list`] — baselines for the ablation.
//!
//! # Examples
//!
//! See [`schedule_fds`] for an end-to-end example.

#![warn(missing_docs)]

mod asap;
mod dg;
mod error;
mod fds;
mod force;
mod item;
mod list;
mod schedule;

pub use asap::TimeFrames;
pub use dg::{storage_ops, DistributionGraphs, StorageOp, StorageWeightMode};
pub use error::SchedError;
pub use fds::{schedule_fds, schedule_fds_budgeted, FdsOptions};
pub use force::{ForceModel, LeShape};
pub use item::{Item, ItemEdge, ItemGraph, ItemKind};
pub use list::{schedule_asap, schedule_list};
pub use schedule::{LeUsage, Schedule};
