//! Baseline schedulers for the FDS ablation study.
//!
//! NanoMap's contribution is balancing resource usage with FDS; these
//! cheaper schedulers provide the comparison points: plain ASAP (no
//! balancing) and a greedy load-balancing list scheduler.

use crate::asap::TimeFrames;
use crate::error::SchedError;
use crate::item::ItemGraph;
use crate::schedule::Schedule;

/// Schedules every item at its ASAP cycle.
///
/// # Errors
///
/// Returns [`SchedError::Infeasible`] if the chains do not fit.
pub fn schedule_asap(graph: &ItemGraph, stages: u32) -> Result<Schedule, SchedError> {
    let frames = TimeFrames::compute(graph, stages, &vec![None; graph.len()])?;
    Ok(Schedule::new(frames.asap, stages))
}

/// Greedy list scheduling: items in topological order, each assigned to
/// the feasible cycle with the lowest accumulated LUT load.
///
/// # Errors
///
/// Returns [`SchedError::Infeasible`] if the chains do not fit.
pub fn schedule_list(graph: &ItemGraph, stages: u32) -> Result<Schedule, SchedError> {
    let frames = TimeFrames::compute(graph, stages, &vec![None; graph.len()])?;
    let order = crate::asap::topo_order(graph)?;
    let mut stage_of = vec![0u32; graph.len()];
    let mut load = vec![0u64; stages as usize];
    for &i in &order {
        // Earliest cycle honouring already-assigned predecessors.
        let earliest = graph.preds[i]
            .iter()
            .map(|&(p, lat)| stage_of[p] + lat)
            .max()
            .unwrap_or(0)
            .max(frames.asap[i]);
        let latest = frames.alap[i];
        debug_assert!(earliest <= latest);
        let best = (earliest..=latest)
            .min_by_key(|&j| (load[j as usize], j))
            .expect("non-empty frame");
        stage_of[i] = best;
        load[best as usize] += u64::from(graph.items[i].weight);
    }
    Ok(Schedule::new(stage_of, stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::LutId;

    fn free_items(weights: &[u32]) -> ItemGraph {
        let items: Vec<Item> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Item {
                kind: ItemKind::Lut(LutId::new(i)),
                luts: vec![LutId::new(i)],
                weight: w,
                window: 1,
                name: format!("i{i}"),
            })
            .collect();
        let n = items.len();
        ItemGraph {
            items,
            edges: vec![],
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn asap_front_loads() {
        let g = free_items(&[1, 1, 1, 1]);
        let s = schedule_asap(&g, 2).unwrap();
        assert_eq!(s.lut_counts(&g), vec![4, 0]);
    }

    #[test]
    fn list_balances_load() {
        let g = free_items(&[1, 1, 1, 1]);
        let s = schedule_list(&g, 2).unwrap();
        assert_eq!(s.lut_counts(&g), vec![2, 2]);
    }

    #[test]
    fn list_respects_precedence() {
        let mut g = free_items(&[1, 1]);
        g.edges = vec![ItemEdge {
            from: 0,
            to: 1,
            latency: 1,
        }];
        g.succs = vec![vec![(1, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)]];
        let s = schedule_list(&g, 2).unwrap();
        assert!(s.validate(&g));
        assert_eq!(s.stage_of, vec![0, 1]);
    }

    #[test]
    fn both_reject_infeasible() {
        let mut g = free_items(&[1, 1, 1]);
        g.edges = vec![
            ItemEdge {
                from: 0,
                to: 1,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
        ];
        g.succs = vec![vec![(1, 1)], vec![(2, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)], vec![(1, 1)]];
        assert!(schedule_asap(&g, 2).is_err());
        assert!(schedule_list(&g, 2).is_err());
    }
}
