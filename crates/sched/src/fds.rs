//! Force-directed scheduling (Algorithm 1 of the paper).
//!
//! Iteratively assigns LUT/LUT-cluster items to folding cycles. Each
//! iteration rebuilds time frames and distribution graphs, evaluates the
//! total force of every feasible (item, cycle) assignment, and commits the
//! lowest-force choice. The result balances LUT computation and register
//! storage across the folding cycles, minimizing the peak LE usage.

use nanomap_observe::{Anytime, CancelToken, Degradation};

use crate::asap::TimeFrames;
use crate::dg::{storage_ops, DistributionGraphs, StorageOp, StorageWeightMode};
use crate::error::SchedError;
use crate::force::{ForceModel, LeShape};
use crate::item::ItemGraph;
use crate::schedule::Schedule;

/// Options for the FDS run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FdsOptions {
    /// LE resource shape (`h` LUTs, `l` FFs).
    pub shape: LeShape,
    /// Storage weight estimation mode.
    pub storage_mode: StorageWeightMode,
}

/// Runs force-directed scheduling of `graph` onto `stages` folding cycles.
///
/// # Errors
///
/// Returns [`SchedError::Infeasible`] if the critical chain does not fit.
///
/// # Examples
///
/// ```
/// use nanomap_netlist::{PlaneSet};
/// use nanomap_netlist::rtl::{CombOp, RtlBuilder};
/// use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
/// use nanomap_techmap::{expand, ExpandOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("t");
/// let a = b.input("a", 4);
/// let c = b.input("b", 4);
/// let gnd = b.constant("gnd", 1, 0);
/// let add = b.comb("add", CombOp::Add { width: 4 });
/// b.connect(a, 0, add, 0)?;
/// b.connect(c, 0, add, 1)?;
/// b.connect(gnd, 0, add, 2)?;
/// let y = b.output("y", 4);
/// b.connect(add, 0, y, 0)?;
/// let net = expand(&b.finish()?, ExpandOptions::default())?;
/// let planes = PlaneSet::extract(&net)?;
/// // Level-2 folding of the depth-4 adder: 2 stages.
/// let graph = ItemGraph::build(&net, &planes.planes()[0], 2)?;
/// let schedule = schedule_fds(&net, &graph, 2, FdsOptions::default())?;
/// assert!(schedule.validate(&graph));
/// # Ok(())
/// # }
/// ```
pub fn schedule_fds(
    net: &nanomap_netlist::LutNetwork,
    graph: &ItemGraph,
    stages: u32,
    options: FdsOptions,
) -> Result<Schedule, SchedError> {
    schedule_fds_budgeted(net, graph, stages, options, &CancelToken::unlimited())
        .map(Anytime::into_value)
}

/// Budget-aware [`schedule_fds`]: polls `token` at the top of every FDS
/// round. On expiry, every still-unpinned item is committed to its ASAP
/// cycle under the current (partially pinned) time frames — always
/// precedence-feasible — and the schedule is returned as
/// [`Anytime::Degraded`] with the peak LUT count as the QoR estimate.
/// With an unlimited token this is byte-identical to [`schedule_fds`].
///
/// # Errors
///
/// Returns [`SchedError::Infeasible`] if the critical chain does not fit
/// (budgets never turn infeasibility into a degraded success).
pub fn schedule_fds_budgeted(
    net: &nanomap_netlist::LutNetwork,
    graph: &ItemGraph,
    stages: u32,
    options: FdsOptions,
    token: &CancelToken,
) -> Result<Anytime<Schedule>, SchedError> {
    let mut fds_span = nanomap_observe::span!("fds", items = graph.len(), stages = stages);
    let rounds_ctr = nanomap_observe::counter("fds.rounds");
    let force_ctr = nanomap_observe::counter("fds.force_evals");
    let dg_ctr = nanomap_observe::counter("fds.dg_rebuilds");
    let force_series = nanomap_observe::series("fds.best_force");

    let n = graph.len();
    let ops: Vec<StorageOp> = storage_ops(net, graph, options.storage_mode);
    let mut pins: Vec<Option<u32>> = vec![None; n];

    // Feasibility check up front (also computes initial frames).
    let mut frames = TimeFrames::compute(graph, stages, &pins)?;

    let mut force_evals = 0u64;
    let mut interrupted_at: Option<u64> = None;
    for round in 0..n {
        // Poll at the round boundary only: an unlimited token reads no
        // clock, so unbudgeted runs stay byte-identical.
        if token.expired() {
            interrupted_at = Some(round as u64);
            break;
        }
        rounds_ctr.incr();
        let dgs = DistributionGraphs::build(graph, &frames, &ops);
        dg_ctr.incr();
        let model = ForceModel::new(graph, &frames, &dgs, &ops, options.shape);

        // Lowest-force (item, cycle) over all unscheduled items.
        let mut best: Option<(f64, usize, u32)> = None;
        for (i, pin) in pins.iter().enumerate() {
            if pin.is_some() {
                continue;
            }
            let (a, b) = frames.frame(i);
            for j in a..=b {
                force_evals += 1;
                let force = model.total_force(i, j);
                let candidate = (force, i, j);
                best = Some(match best {
                    None => candidate,
                    Some(current) => {
                        // Deterministic tie-break: force, then item, cycle.
                        if candidate.0 < current.0 - 1e-12
                            || ((candidate.0 - current.0).abs() <= 1e-12
                                && (candidate.1, candidate.2) < (current.1, current.2))
                        {
                            candidate
                        } else {
                            current
                        }
                    }
                });
            }
        }
        let Some((force, item, cycle)) = best else {
            break;
        };
        // Convergence trajectory: the committed (lowest) force per round.
        force_series.record(round as u64, force);
        nanomap_observe::events::progress("fds", round as u64 + 1, Some(n as u64), None, force);
        pins[item] = Some(cycle);
        // Pinning inside a valid frame keeps the schedule feasible, so
        // this recompute cannot fail; propagate rather than panic anyway.
        frames = TimeFrames::compute(graph, stages, &pins)?;
    }
    force_ctr.add(force_evals);
    fds_span.attr("force_evals", force_evals);

    // Final balance readout: the total expected LUT+storage load of every
    // folding cycle under the committed schedule (x = cycle index).
    if nanomap_observe::enabled() {
        let cycle_series = nanomap_observe::series("fds.cycle_load");
        let dgs = DistributionGraphs::build(graph, &frames, &ops);
        for (j, (lut, storage)) in dgs.lut.iter().zip(&dgs.storage).enumerate() {
            cycle_series.record(j as u64, lut + storage);
        }
    }

    // A completed run has every item pinned; a budget-interrupted run
    // commits the rest to their ASAP cycle under the current frames,
    // which is always precedence-feasible.
    let stage_of: Vec<u32> = pins
        .iter()
        .enumerate()
        .map(|(i, pin)| pin.unwrap_or_else(|| frames.frame(i).0))
        .collect();
    let schedule = Schedule::new(stage_of, stages);
    match interrupted_at {
        None => Ok(Anytime::Complete(schedule)),
        Some(round) => {
            fds_span.attr("degraded", 1u64);
            let peak = schedule.lut_counts(graph).into_iter().max().unwrap_or(0);
            Ok(Anytime::Degraded(
                schedule,
                Degradation {
                    phase: "fds".into(),
                    reason: format!("time budget expired after {round} of {n} FDS rounds"),
                    completed_iterations: round,
                    qor_estimate: f64::from(peak),
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, ItemEdge, ItemKind};
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::{LutId, LutNetwork, PlaneSet};
    use nanomap_techmap::{expand, ExpandOptions};

    fn chain_free_graph(weights: &[u32]) -> ItemGraph {
        let items: Vec<Item> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Item {
                kind: ItemKind::Lut(LutId::new(i)),
                luts: vec![LutId::new(i)],
                weight: w,
                window: 1,
                name: format!("i{i}"),
            })
            .collect();
        let n = items.len();
        ItemGraph {
            items,
            edges: vec![],
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            item_of_lut: Default::default(),
            folding_level: 1,
        }
    }

    #[test]
    fn balances_independent_items() {
        // Six weight-1 items over 2 cycles: 3 + 3 is optimal.
        let g = chain_free_graph(&[1, 1, 1, 1, 1, 1]);
        let net = LutNetwork::new("t");
        let s = schedule_fds(&net, &g, 2, FdsOptions::default()).unwrap();
        let counts = s.lut_counts(&g);
        assert_eq!(counts.iter().sum::<u32>(), 6);
        assert_eq!(counts.iter().max(), Some(&3));
    }

    #[test]
    fn balances_mixed_weights() {
        // Weights 4,3,2,1 over 2 cycles: best peak is 5 (4+1 / 3+2).
        let g = chain_free_graph(&[4, 3, 2, 1]);
        let net = LutNetwork::new("t");
        let s = schedule_fds(&net, &g, 2, FdsOptions::default()).unwrap();
        let counts = s.lut_counts(&g);
        assert_eq!(counts.iter().sum::<u32>(), 10);
        assert!(*counts.iter().max().unwrap() <= 6, "counts {counts:?}");
    }

    #[test]
    fn respects_precedence() {
        let mut g = chain_free_graph(&[1, 1, 1]);
        g.edges = vec![
            ItemEdge {
                from: 0,
                to: 1,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
        ];
        g.succs = vec![vec![(1, 1)], vec![(2, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)], vec![(1, 1)]];
        let net = LutNetwork::new("t");
        let s = schedule_fds(&net, &g, 3, FdsOptions::default()).unwrap();
        assert!(s.validate(&g));
        assert_eq!(s.stage_of, vec![0, 1, 2]);
    }

    #[test]
    fn infeasible_stage_count_errors() {
        let mut g = chain_free_graph(&[1, 1, 1]);
        g.edges = vec![
            ItemEdge {
                from: 0,
                to: 1,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
        ];
        g.succs = vec![vec![(1, 1)], vec![(2, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)], vec![(1, 1)]];
        let net = LutNetwork::new("t");
        assert!(matches!(
            schedule_fds(&net, &g, 2, FdsOptions::default()),
            Err(SchedError::Infeasible { .. })
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = chain_free_graph(&[2, 5, 1, 3, 3, 2, 4]);
        let net = LutNetwork::new("t");
        let a = schedule_fds(&net, &g, 3, FdsOptions::default()).unwrap();
        let b = schedule_fds(&net, &g, 3, FdsOptions::default()).unwrap();
        assert_eq!(a.stage_of, b.stage_of);
    }

    #[test]
    fn zero_budget_degrades_to_feasible_asap() {
        let mut g = chain_free_graph(&[1, 1, 1]);
        g.edges = vec![
            ItemEdge {
                from: 0,
                to: 1,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
        ];
        g.succs = vec![vec![(1, 1)], vec![(2, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)], vec![(1, 1)]];
        let net = LutNetwork::new("t");
        let token = CancelToken::with_budget_ms(Some(0));
        let result = schedule_fds_budgeted(&net, &g, 3, FdsOptions::default(), &token).unwrap();
        let Anytime::Degraded(schedule, degradation) = result else {
            panic!("zero budget must degrade");
        };
        assert!(schedule.validate(&g), "best-so-far must stay feasible");
        assert_eq!(degradation.phase, "fds");
        assert_eq!(degradation.completed_iterations, 0);
    }

    #[test]
    fn cancelled_token_degrades_mid_run() {
        let g = chain_free_graph(&[2, 5, 1, 3, 3, 2, 4]);
        let net = LutNetwork::new("t");
        let token = CancelToken::cancellable();
        token.cancel();
        let result = schedule_fds_budgeted(&net, &g, 3, FdsOptions::default(), &token).unwrap();
        assert!(result.is_degraded());
        assert!(result.value().validate(&g));
    }

    #[test]
    fn unlimited_token_identical_to_plain_fds() {
        let g = chain_free_graph(&[2, 5, 1, 3, 3, 2, 4]);
        let net = LutNetwork::new("t");
        let plain = schedule_fds(&net, &g, 3, FdsOptions::default()).unwrap();
        let budgeted = schedule_fds_budgeted(
            &net,
            &g,
            3,
            FdsOptions::default(),
            &CancelToken::unlimited(),
        )
        .unwrap();
        let Anytime::Complete(schedule) = budgeted else {
            panic!("unlimited token must complete");
        };
        assert_eq!(plain.stage_of, schedule.stage_of);
    }

    #[test]
    fn zero_budget_infeasible_still_errors() {
        let mut g = chain_free_graph(&[1, 1, 1]);
        g.edges = vec![
            ItemEdge {
                from: 0,
                to: 1,
                latency: 1,
            },
            ItemEdge {
                from: 1,
                to: 2,
                latency: 1,
            },
        ];
        g.succs = vec![vec![(1, 1)], vec![(2, 1)], vec![]];
        g.preds = vec![vec![], vec![(0, 1)], vec![(1, 1)]];
        let net = LutNetwork::new("t");
        let token = CancelToken::with_budget_ms(Some(0));
        assert!(matches!(
            schedule_fds_budgeted(&net, &g, 2, FdsOptions::default(), &token),
            Err(SchedError::Infeasible { .. })
        ));
    }

    /// End-to-end: schedule a real mapped adder+multiplier plane and check
    /// that the peak LUT usage beats naive ASAP.
    #[test]
    fn beats_asap_on_real_plane() {
        let mut b = RtlBuilder::new("dp");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let gnd = b.constant("gnd", 1, 0);
        let add = b.comb("add", CombOp::Add { width: 4 });
        b.connect(a, 0, add, 0).unwrap();
        b.connect(c, 0, add, 1).unwrap();
        b.connect(gnd, 0, add, 2).unwrap();
        let mul = b.comb("mul", CombOp::Mul { width: 4 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let y1 = b.output("y1", 4);
        b.connect(add, 0, y1, 0).unwrap();
        let y2 = b.output("y2", 8);
        b.connect(mul, 0, y2, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane = &planes.planes()[0];
        let stages = plane.depth.div_ceil(2);
        let graph = ItemGraph::build(&net, plane, 2).unwrap();
        let fds = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        assert!(fds.validate(&graph));
        let asap = crate::list::schedule_asap(&graph, stages).unwrap();
        let fds_peak = fds.lut_counts(&graph).into_iter().max().unwrap();
        let asap_peak = asap.lut_counts(&graph).into_iter().max().unwrap();
        assert!(
            fds_peak <= asap_peak,
            "FDS peak {fds_peak} must not exceed ASAP peak {asap_peak}"
        );
    }
}
