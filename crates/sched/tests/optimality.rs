//! Cross-checks FDS against the exhaustive optimum on small instances.
//!
//! FDS is a heuristic; these tests quantify how close it gets to the true
//! minimum peak LUT usage found by brute force over every precedence-valid
//! assignment. Instances are generated from a seeded PRNG so every run
//! covers the same case set deterministically.

use nanomap_netlist::{LutId, LutNetwork};
use nanomap_observe::rng::XorShift64Star;
use nanomap_sched::{
    schedule_asap, schedule_fds, storage_ops, FdsOptions, Item, ItemEdge, ItemGraph, ItemKind,
    LeShape, Schedule, StorageWeightMode,
};

/// The metric FDS optimizes (Eq. 14): peak LEs with 1 LUT + 2 FFs each,
/// counting both LUT computations and inter-cycle storage.
fn le_peak(graph: &ItemGraph, schedule: &Schedule) -> u32 {
    let ops = storage_ops(&LutNetwork::new("t"), graph, StorageWeightMode::ItemWeight);
    schedule
        .le_usage(graph, &ops, 0, LeShape { luts: 1, ffs: 2 })
        .peak
}

fn build_graph(weights: &[u32], edges: &[(usize, usize)]) -> ItemGraph {
    let items: Vec<Item> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: w,
            window: 1,
            name: format!("i{i}"),
        })
        .collect();
    let n = items.len();
    let edges: Vec<ItemEdge> = edges
        .iter()
        .map(|&(from, to)| ItemEdge {
            from,
            to,
            latency: 1,
        })
        .collect();
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    for e in &edges {
        succs[e.from].push((e.to, e.latency));
        preds[e.to].push((e.from, e.latency));
    }
    ItemGraph {
        items,
        edges,
        succs,
        preds,
        item_of_lut: Default::default(),
        folding_level: 1,
    }
}

/// Brute-force minimum peak LUT weight over all valid schedules.
fn exhaustive_optimum(graph: &ItemGraph, stages: u32) -> Option<u32> {
    let n = graph.len();
    let mut assignment = vec![0u32; n];
    let mut best: Option<u32> = None;
    fn recurse(
        graph: &ItemGraph,
        stages: u32,
        assignment: &mut Vec<u32>,
        i: usize,
        best: &mut Option<u32>,
    ) {
        if i == graph.len() {
            let schedule = Schedule::new(assignment.clone(), stages);
            if schedule.validate(graph) {
                let peak = le_peak(graph, &schedule);
                *best = Some(best.map_or(peak, |b: u32| b.min(peak)));
            }
            return;
        }
        for s in 0..stages {
            assignment[i] = s;
            recurse(graph, stages, assignment, i + 1, best);
        }
    }
    recurse(graph, stages, &mut assignment, 0, &mut best);
    best
}

/// Random DAG instance: up to 7 items over 2..=4 stages. Edges always go
/// from the lower index to the higher one, so the graph is acyclic by
/// construction.
fn random_instance(rng: &mut XorShift64Star) -> (Vec<u32>, Vec<(usize, usize)>, u32) {
    let n = 2 + rng.index(6); // 2..=7 items
    let weights: Vec<u32> = (0..n).map(|_| 1 + rng.below(6) as u32).collect();
    let num_edges = rng.index(7); // 0..=6
    let mut edges: Vec<(usize, usize)> = (0..num_edges)
        .map(|_| {
            let mut x = rng.index(n);
            let mut y = rng.index(n);
            if x > y {
                std::mem::swap(&mut x, &mut y);
            }
            (x, y)
        })
        .filter(|&(x, y)| x != y)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let stages = 2 + rng.below(3) as u32; // 2..=4
    (weights, edges, stages)
}

/// FDS lands within 2x+1 of the exhaustive optimum peak (and is never
/// better than it, by definition of optimum).
#[test]
fn fds_is_near_optimal() {
    let mut rng = XorShift64Star::new(0xF05_0001);
    for case in 0..64 {
        let (weights, edges, stages) = random_instance(&mut rng);
        let graph = build_graph(&weights, &edges);
        let Some(optimum) = exhaustive_optimum(&graph, stages) else {
            // No valid schedule at this stage count.
            assert!(
                schedule_fds(&LutNetwork::new("t"), &graph, stages, FdsOptions::default()).is_err(),
                "case {case}: FDS succeeded where no schedule exists"
            );
            continue;
        };
        let net = LutNetwork::new("t");
        let fds = schedule_fds(&net, &graph, stages, FdsOptions::default())
            .expect("optimum exists => feasible");
        assert!(fds.validate(&graph), "case {case}");
        let fds_peak = le_peak(&graph, &fds);
        assert!(
            fds_peak >= optimum,
            "case {case}: heuristic beats the optimum?!"
        );
        assert!(
            f64::from(fds_peak) <= f64::from(optimum) * 2.0 + 1.0,
            "case {case}: FDS peak {fds_peak} vs optimum {optimum}"
        );
    }
}

/// ASAP is valid whenever the optimum exists, and never beats it.
#[test]
fn asap_is_valid_and_bounded() {
    let mut rng = XorShift64Star::new(0xF05_0002);
    for case in 0..64 {
        let (weights, edges, stages) = random_instance(&mut rng);
        let graph = build_graph(&weights, &edges);
        if let Some(optimum) = exhaustive_optimum(&graph, stages) {
            let asap = schedule_asap(&graph, stages).expect("feasible");
            assert!(asap.validate(&graph), "case {case}");
            assert!(le_peak(&graph, &asap) >= optimum, "case {case}");
        }
    }
}

/// A concrete case where balancing matters: FDS must hit the optimum.
/// (No edges => no storage, so the LE metric is pure LUT weight.)
#[test]
fn fds_hits_optimum_on_balanced_case() {
    // Weights 5,4,3,2,1,1 over 2 stages, no edges: optimal peak 8 (5+2+1 / 4+3+1).
    let graph = build_graph(&[5, 4, 3, 2, 1, 1], &[]);
    let optimum = exhaustive_optimum(&graph, 2).unwrap();
    assert_eq!(optimum, 8);
    let fds = schedule_fds(&LutNetwork::new("t"), &graph, 2, FdsOptions::default()).unwrap();
    assert_eq!(
        le_peak(&graph, &fds),
        8,
        "FDS should balance 16 weight into 8 + 8"
    );
}
