//! Cross-checks FDS against the exhaustive optimum on small instances.
//!
//! FDS is a heuristic; these tests quantify how close it gets to the true
//! minimum peak LUT usage found by brute force over every precedence-valid
//! assignment.

use nanomap_netlist::{LutId, LutNetwork};
use nanomap_sched::{
    schedule_asap, schedule_fds, storage_ops, FdsOptions, Item, ItemEdge, ItemGraph, ItemKind,
    LeShape, Schedule, StorageWeightMode,
};
use proptest::prelude::*;

/// The metric FDS optimizes (Eq. 14): peak LEs with 1 LUT + 2 FFs each,
/// counting both LUT computations and inter-cycle storage.
fn le_peak(graph: &ItemGraph, schedule: &Schedule) -> u32 {
    let ops = storage_ops(&LutNetwork::new("t"), graph, StorageWeightMode::ItemWeight);
    schedule
        .le_usage(graph, &ops, 0, LeShape { luts: 1, ffs: 2 })
        .peak
}

fn build_graph(weights: &[u32], edges: &[(usize, usize)]) -> ItemGraph {
    let items: Vec<Item> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| Item {
            kind: ItemKind::Lut(LutId::new(i)),
            luts: vec![LutId::new(i)],
            weight: w,
            window: 1,
            name: format!("i{i}"),
        })
        .collect();
    let n = items.len();
    let edges: Vec<ItemEdge> = edges
        .iter()
        .map(|&(from, to)| ItemEdge {
            from,
            to,
            latency: 1,
        })
        .collect();
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    for e in &edges {
        succs[e.from].push((e.to, e.latency));
        preds[e.to].push((e.from, e.latency));
    }
    ItemGraph {
        items,
        edges,
        succs,
        preds,
        item_of_lut: Default::default(),
        folding_level: 1,
    }
}

/// Brute-force minimum peak LUT weight over all valid schedules.
fn exhaustive_optimum(graph: &ItemGraph, stages: u32) -> Option<u32> {
    let n = graph.len();
    let mut assignment = vec![0u32; n];
    let mut best: Option<u32> = None;
    fn recurse(
        graph: &ItemGraph,
        stages: u32,
        assignment: &mut Vec<u32>,
        i: usize,
        best: &mut Option<u32>,
    ) {
        if i == graph.len() {
            let schedule = Schedule::new(assignment.clone(), stages);
            if schedule.validate(graph) {
                let peak = le_peak(graph, &schedule);
                *best = Some(best.map_or(peak, |b: u32| b.min(peak)));
            }
            return;
        }
        for s in 0..stages {
            assignment[i] = s;
            recurse(graph, stages, assignment, i + 1, best);
        }
    }
    recurse(graph, stages, &mut assignment, 0, &mut best);
    best
}

/// Random DAG strategy: up to 7 items over 2..=4 stages.
fn instance_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<(usize, usize)>, u32)> {
    (
        proptest::collection::vec(1u32..=6, 2..=7),
        proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..=6),
        2u32..=4,
    )
        .prop_map(|(weights, raw_edges, stages)| {
            let n = weights.len();
            let mut edges: Vec<(usize, usize)> = raw_edges
                .into_iter()
                .map(|(a, b)| {
                    let (mut x, mut y) = (a.index(n), b.index(n));
                    if x > y {
                        std::mem::swap(&mut x, &mut y);
                    }
                    (x, y)
                })
                .filter(|&(x, y)| x != y) // forward edges only: acyclic
                .collect();
            edges.sort_unstable();
            edges.dedup();
            (weights, edges, stages)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FDS lands within 1.5x of the exhaustive optimum peak (and is never
    /// better than it, by definition of optimum).
    #[test]
    fn fds_is_near_optimal((weights, edges, stages) in instance_strategy()) {
        let graph = build_graph(&weights, &edges);
        let Some(optimum) = exhaustive_optimum(&graph, stages) else {
            // No valid schedule at this stage count.
            prop_assert!(schedule_fds(
                &LutNetwork::new("t"), &graph, stages, FdsOptions::default()
            ).is_err());
            return Ok(());
        };
        let net = LutNetwork::new("t");
        let fds = schedule_fds(&net, &graph, stages, FdsOptions::default())
            .expect("optimum exists => feasible");
        prop_assert!(fds.validate(&graph));
        let fds_peak = le_peak(&graph, &fds);
        prop_assert!(fds_peak >= optimum, "heuristic beats the optimum?!");
        prop_assert!(
            f64::from(fds_peak) <= f64::from(optimum) * 2.0 + 1.0,
            "FDS peak {} vs optimum {}",
            fds_peak,
            optimum
        );
    }

    /// ASAP is valid whenever the optimum exists, and never beats it.
    #[test]
    fn asap_is_valid_and_bounded((weights, edges, stages) in instance_strategy()) {
        let graph = build_graph(&weights, &edges);
        if let Some(optimum) = exhaustive_optimum(&graph, stages) {
            let asap = schedule_asap(&graph, stages).expect("feasible");
            prop_assert!(asap.validate(&graph));
            prop_assert!(le_peak(&graph, &asap) >= optimum);
        }
    }
}

/// A concrete case where balancing matters: FDS must hit the optimum.
/// (No edges => no storage, so the LE metric is pure LUT weight.)
#[test]
fn fds_hits_optimum_on_balanced_case() {
    // Weights 5,4,3,2,1,1 over 2 stages, no edges: optimal peak 8 (5+2+1 / 4+3+1).
    let graph = build_graph(&[5, 4, 3, 2, 1, 1], &[]);
    let optimum = exhaustive_optimum(&graph, 2).unwrap();
    assert_eq!(optimum, 8);
    let fds = schedule_fds(&LutNetwork::new("t"), &graph, 2, FdsOptions::default()).unwrap();
    assert_eq!(le_peak(&graph, &fds), 8, "FDS should balance 16 weight into 8 + 8");
}
