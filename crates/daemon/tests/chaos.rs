//! Chaos suite: the daemon under deliberate abuse.
//!
//! Every scenario the robustness envelope advertises is exercised here:
//! `kill -9` mid-flight, torn cache entries, suppressed cache writes,
//! slow-loris clients, admission floods, worker panics, preemption with
//! checkpoint resume, and graceful drain. Tests that arm process-global
//! failpoints (or depend on their absence) serialize on one mutex.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use nanomap::service::{code, MapRequest, Response};
use nanomap::{submit_with_retry, RetryPolicy, Submission};
use nanomap_daemon::{start, DaemonConfig, DaemonHandle};
use nanomap_observe::failpoint;
use nanomap_observe::{json, FailMode, JsonValue};

/// Serializes the whole suite: failpoints are process-global, so one
/// test's armed fault must never leak into another's daemon.
fn suite_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    failpoint::disarm_all();
    guard
}

fn design_path() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../designs/accumulator.vhd")
        .to_string_lossy()
        .into_owned()
}

/// A 32-stage adder chain (~1 s to map, vs sub-millisecond for the
/// accumulator): slow enough for time slices and budgets to expire
/// mid-flow, which the preemption and budget tests depend on.
fn heavy_design_path() -> String {
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        let stages = 32;
        let mut text = String::from(
            "entity chain is\n  port ( x : in std_logic_vector(31 downto 0);\n         \
             k : in std_logic_vector(31 downto 0);\n         \
             y : out std_logic_vector(31 downto 0) );\nend chain;\n\
             architecture rtl of chain is\n",
        );
        for i in 0..stages {
            text.push_str(&format!(
                "  signal s{i} : std_logic_vector(31 downto 0);\n  signal c{i} : std_logic;\n"
            ));
        }
        text.push_str("begin\n");
        let mut prev = "x".to_string();
        for i in 0..stages {
            text.push_str(&format!(
                "  u{i}: add generic map (width => 32) port map \
                 (a => {prev}, b => k, cin => '0', sum => s{i}, cout => c{i});\n"
            ));
            prev = format!("s{i}");
        }
        text.push_str(&format!("  y <= {prev};\nend rtl;\n"));
        let path = std::env::temp_dir().join(format!("nanomapd-chain-{}.vhd", std::process::id()));
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    })
    .clone()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nanomapd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon(tag: &str, tweak: impl FnOnce(&mut DaemonConfig)) -> (DaemonHandle, PathBuf) {
    let dir = temp_dir(tag);
    let mut config = DaemonConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: dir.join("state"),
        ledger_path: Some(dir.join("ledger.jsonl")),
        ..DaemonConfig::default()
    };
    tweak(&mut config);
    (start(config).unwrap(), dir)
}

fn request(id: &str) -> MapRequest {
    MapRequest::for_path(id, design_path())
}

fn submit(addr: &str, req: &MapRequest) -> Submission {
    submit_with_retry(addr, req, &RetryPolicy::default()).unwrap()
}

/// QoR fields that must survive recomputation and resume; wall-clock
/// phase times legitimately differ between runs and are excluded.
fn qor_fingerprint(report_text: &str) -> Vec<(String, String)> {
    let value = json::parse(report_text).unwrap();
    [
        "num_les",
        "num_luts",
        "delay_ns",
        "area_um2",
        "folding_level",
        "circuit",
    ]
    .iter()
    .filter_map(|key| {
        value
            .get(key)
            .map(|v| ((*key).to_string(), v.to_compact_string()))
    })
    .collect()
}

fn assert_ledger_intact(path: &Path, min_lines: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        lines.len() >= min_lines,
        "ledger has {} lines, expected at least {min_lines}",
        lines.len()
    );
    for (i, line) in lines.iter().enumerate() {
        let value = json::parse(line).unwrap_or_else(|e| panic!("ledger line {i} torn: {e}"));
        assert!(
            value.get("run_id").and_then(JsonValue::as_str).is_some(),
            "ledger line {i} lacks run_id"
        );
    }
}

// ---------------------------------------------------------------------
// Core serving + cache semantics (in-process daemon).
// ---------------------------------------------------------------------

#[test]
fn repeat_submission_is_a_byte_identical_cache_hit() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("cachehit", |_| {});
    let first = submit(handle.addr(), &request("r1"));
    assert!(first.result.ok, "first submit failed: {:?}", first.result);
    assert_eq!(first.result.cache.as_deref(), Some("miss"));
    let second = submit(handle.addr(), &request("r2"));
    assert!(second.result.ok);
    assert_eq!(second.result.cache.as_deref(), Some("hit"));
    assert_eq!(
        first.result.report_text, second.result.report_text,
        "cache hit must be byte-identical to the serve that populated it"
    );
    assert_eq!(first.result.run_id, second.result.run_id);
    let stats = handle.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.cache_hits, 1);
    // Only the computed run lands in the ledger; hits are replays.
    assert_ledger_intact(&dir.join("ledger.jsonl"), 1);
    assert_eq!(
        std::fs::read_to_string(dir.join("ledger.jsonl"))
            .unwrap()
            .lines()
            .count(),
        1
    );
    let outcome = handle.shutdown(Duration::from_secs(10));
    assert!(outcome.clean);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_compute() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("coalesce", |c| c.workers = 3);
    let addr = handle.addr().to_string();
    let threads: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                submit(
                    &addr,
                    &MapRequest::for_path(format!("dup-{i}"), heavy_design_path()),
                )
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for sub in &results {
        assert!(sub.result.ok, "coalesced request failed: {:?}", sub.result);
        assert_eq!(sub.result.report_text, results[0].result.report_text);
    }
    // The herd guard means exactly one mapping ran: one ledger line,
    // and the other two were cache hits.
    assert_ledger_intact(&dir.join("ledger.jsonl"), 1);
    assert_eq!(
        std::fs::read_to_string(dir.join("ledger.jsonl"))
            .unwrap()
            .lines()
            .count(),
        1,
        "duplicates must not burn workers on duplicate mappings"
    );
    assert_eq!(handle.stats().cache_hits, 2);
    handle.shutdown(Duration::from_secs(30));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_cache_entry_recomputes_instead_of_serving_garbage() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("torncache", |_| {});
    let first = submit(handle.addr(), &request("r1"));
    assert!(first.result.ok);
    // Tear the only cache entry in half, like a crashed writer would
    // if writes were not atomic.
    let cache_dir = dir.join("state/cache");
    let entry = std::fs::read_dir(&cache_dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let full = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &full[..full.len() / 2]).unwrap();
    let second = submit(handle.addr(), &request("r2"));
    assert!(second.result.ok);
    assert_eq!(
        second.result.cache.as_deref(),
        Some("miss"),
        "torn entry must be a miss, not a hit on garbage"
    );
    assert_eq!(
        qor_fingerprint(first.result.report_text.as_ref().unwrap()),
        qor_fingerprint(second.result.report_text.as_ref().unwrap()),
        "recomputation must reproduce the same QoR"
    );
    // The recompute rewrote the entry: third time is a hit again.
    let third = submit(handle.addr(), &request("r3"));
    assert_eq!(third.result.cache.as_deref(), Some("hit"));
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn suppressed_cache_write_degrades_to_recompute_not_failure() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("nocache", |_| {});
    failpoint::arm("cache.write", FailMode::Always);
    let first = submit(handle.addr(), &request("r1"));
    assert!(
        first.result.ok,
        "cache-write failure must not fail the request"
    );
    assert_eq!(first.result.cache.as_deref(), Some("miss"));
    assert_eq!(handle.stats().cache_hits, 0);
    assert!(
        std::fs::read_dir(dir.join("state/cache"))
            .unwrap()
            .next()
            .is_none(),
        "failpoint should have suppressed the entry"
    );
    failpoint::disarm_all();
    // With the fault gone the next serve repopulates the cache.
    let second = submit(handle.addr(), &request("r2"));
    assert_eq!(second.result.cache.as_deref(), Some("miss"));
    let third = submit(handle.addr(), &request("r3"));
    assert_eq!(third.result.cache.as_deref(), Some("hit"));
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn worker_panic_is_a_typed_result_and_the_daemon_survives() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("panic", |_| {});
    failpoint::arm("daemon.worker.panic", FailMode::Once);
    let poisoned = submit(handle.addr(), &request("r1"));
    assert!(!poisoned.result.ok);
    assert_eq!(poisoned.result.code.as_deref(), Some(code::PANIC));
    assert!(
        !poisoned.result.retryable(),
        "panic is permanent, not retryable"
    );
    failpoint::disarm_all();
    assert_eq!(handle.stats().panics, 1);
    // Same daemon, next request: business as usual.
    let healthy = submit(handle.addr(), &request("r2"));
    assert!(healthy.result.ok, "daemon must outlive a worker panic");
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn invalid_design_and_objective_are_typed_client_errors() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("invalid", |_| {});
    let mut bad_path = request("r1");
    bad_path.source = nanomap::DesignSource::Path("/nonexistent/missing.vhd".into());
    let res = submit(handle.addr(), &bad_path);
    assert!(!res.result.ok);
    assert_eq!(res.result.code.as_deref(), Some(code::INVALID));
    let mut bad_obj = request("r2");
    bad_obj.objective = "make-it-fast".into();
    let res = submit(handle.addr(), &bad_obj);
    assert_eq!(res.result.code.as_deref(), Some(code::INVALID));
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Admission control and backpressure.
// ---------------------------------------------------------------------

/// Sends one raw request line and returns every response line.
fn raw_exchange(addr: &str, line: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let reader = BufReader::new(stream);
    reader.lines().map_while(Result::ok).collect()
}

fn final_result(lines: &[String]) -> nanomap::WireResult {
    let last = lines.last().expect("no response lines");
    match Response::parse(last).unwrap() {
        Response::Result(result) => result,
        other => panic!("last line is not a result: {other:?}"),
    }
}

#[test]
fn zero_capacity_queue_sheds_everything_with_a_retryable_code() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("queuefull", |c| c.queue_capacity = 0);
    let lines = raw_exchange(handle.addr(), &request("r1").to_wire());
    let result = final_result(&lines);
    assert!(!result.ok);
    assert_eq!(result.code.as_deref(), Some(code::SHED));
    assert!(result.retryable());
    assert!(
        result.retry_after_ms.is_some(),
        "shed must carry a backoff hint"
    );
    assert!(result
        .detail
        .as_deref()
        .unwrap_or("")
        .contains("queue full"));
    assert_eq!(handle.stats().shed, 1);
    handle.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deep_queue_requires_a_time_budget() {
    let _guard = suite_lock();
    // Depth threshold 0: every map must carry time_budget_ms.
    let (handle, dir) = daemon("budgetreq", |c| c.free_admission_depth = 0);
    let unbudgeted = raw_exchange(handle.addr(), &request("r1").to_wire());
    let rejected = final_result(&unbudgeted);
    assert_eq!(rejected.code.as_deref(), Some(code::SHED));
    assert!(rejected
        .detail
        .as_deref()
        .unwrap_or("")
        .contains("requires time_budget_ms"));
    let mut budgeted = request("r2");
    budgeted.time_budget_ms = Some(120_000);
    let accepted = submit(handle.addr(), &budgeted);
    assert!(accepted.result.ok, "budgeted request must be admitted");
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn flood_sheds_excess_load_but_serves_what_it_admits() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("flood", |c| {
        c.workers = 1;
        c.queue_capacity = 2;
        c.free_admission_depth = 0;
    });
    let addr = handle.addr().to_string();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut req = request(&format!("flood-{i}"));
                req.time_budget_ms = Some(120_000);
                // No retries: a shed stays a shed, so the flood result
                // shows the admission decision itself.
                let lines = raw_exchange(&addr, &req.to_wire());
                final_result(&lines)
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let ok = results.iter().filter(|r| r.ok).count();
    let shed = results
        .iter()
        .filter(|r| r.code.as_deref() == Some(code::SHED))
        .count();
    assert_eq!(
        ok + shed,
        8,
        "every request ends ok or typed-shed: {results:?}"
    );
    assert!(ok >= 1, "at least the first arrival must be served");
    for rejected in results.iter().filter(|r| !r.ok) {
        assert!(rejected.retryable());
        assert!(rejected.retry_after_ms.is_some());
    }
    handle.shutdown(Duration::from_secs(30));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn slow_loris_client_is_cut_off_and_the_daemon_keeps_serving() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("loris", |c| c.read_timeout_ms = 150);
    // Half a request line, then silence.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"{\"schema\":\"nanomapd-v1\",\"op\"")
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rejection = String::new();
    BufReader::new(&mut stream)
        .read_line(&mut rejection)
        .unwrap();
    let result = match Response::parse(rejection.trim()).unwrap() {
        Response::Result(result) => result,
        other => panic!("expected a result line, got {other:?}"),
    };
    assert_eq!(result.code.as_deref(), Some(code::INVALID));
    // The stalled connection cost nothing: a real client is served.
    let healthy = submit(handle.addr(), &request("r1"));
    assert!(healthy.result.ok);
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Preemption + checkpoint resume.
// ---------------------------------------------------------------------

#[test]
fn preempted_request_resumes_and_matches_the_uninterrupted_qor() {
    let _guard = suite_lock();
    // Reference: one uninterrupted run of the heavy design.
    let (reference, ref_dir) = daemon("preempt-ref", |_| {});
    let baseline = submit(
        reference.addr(),
        &MapRequest::for_path("ref", heavy_design_path()),
    );
    assert!(baseline.result.ok);
    reference.shutdown(Duration::from_secs(30));

    // Same design under a 10 ms slice: the run is carved into several
    // preempt/resume cycles through its checkpoints (slices escalate
    // exponentially, so even the longest single phase eventually fits).
    let (sliced, dir) = daemon("preempt", |c| c.preempt_slice_ms = Some(10));
    let chopped = submit(
        sliced.addr(),
        &MapRequest::for_path("sliced", heavy_design_path()),
    );
    assert!(
        chopped.result.ok,
        "sliced run must still complete: {:?}",
        chopped.result
    );
    let preemptions = chopped
        .lifecycle
        .iter()
        .filter(|e| matches!(e, Response::Preempted))
        .count();
    let resumes = chopped
        .lifecycle
        .iter()
        .filter(|e| matches!(e, Response::Resumed))
        .count();
    assert!(preemptions >= 1, "a 10 ms slice must preempt at least once");
    assert_eq!(
        preemptions, resumes,
        "every preemption is followed by a resume"
    );
    assert_eq!(sliced.stats().preemptions as usize, preemptions);
    // Resume pins the folding candidate in flight at the preemption
    // point (the flow's documented checkpoint semantics), so the QoR
    // may legitimately settle on a different candidate than the
    // uninterrupted search. The invariants are structural: same
    // circuit, same technology mapping, a complete non-degraded report.
    let base = json::parse(baseline.result.report_text.as_ref().unwrap()).unwrap();
    let resumed = json::parse(chopped.result.report_text.as_ref().unwrap()).unwrap();
    for key in ["circuit", "num_luts"] {
        assert_eq!(
            base.get(key).map(JsonValue::to_compact_string),
            resumed.get(key).map(JsonValue::to_compact_string),
            "{key} must survive preemption"
        );
    }
    assert_eq!(
        resumed
            .get("degraded")
            .map(JsonValue::to_compact_string)
            .as_deref(),
        Some("false")
    );
    // The preemption-computed result replays from cache byte for byte.
    let replay = submit(
        sliced.addr(),
        &MapRequest::for_path("replay", heavy_design_path()),
    );
    assert_eq!(replay.result.cache.as_deref(), Some("hit"));
    assert_eq!(replay.result.report_text, chopped.result.report_text);
    sliced.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn exhausted_time_budget_is_a_typed_budget_rejection() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("budget", |_| {});
    let mut req = MapRequest::for_path("r1", heavy_design_path());
    req.time_budget_ms = Some(15); // far too little for a ~1 s design
    let res = submit(handle.addr(), &req);
    assert!(!res.result.ok);
    assert_eq!(res.result.code.as_deref(), Some(code::BUDGET));
    assert!(!res.result.retryable());
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Graceful drain + the real binary under kill -9 and SIGTERM.
// ---------------------------------------------------------------------

#[test]
fn draining_daemon_rejects_new_work_with_a_retryable_shutdown_code() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("drain", |_| {});
    handle.begin_drain();
    let lines = raw_exchange(handle.addr(), &request("r1").to_wire());
    let result = final_result(&lines);
    assert_eq!(result.code.as_deref(), Some(code::SHUTDOWN));
    assert!(result.retryable());
    let outcome = handle.shutdown(Duration::from_secs(5));
    assert!(outcome.clean, "nothing admitted, nothing to shed");
    let _ = std::fs::remove_dir_all(dir);
}

struct SpawnedDaemon {
    child: Child,
    addr: String,
}

fn spawn_binary(dir: &Path, extra: &[&str]) -> SpawnedDaemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nanomapd"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(dir.join("state"))
        .arg("--ledger")
        .arg(dir.join("ledger.jsonl"))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // First stdout line announces the bound address.
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .rsplit(' ')
        .next()
        .expect("bound address line")
        .trim()
        .to_string();
    assert!(addr.contains(':'), "unexpected announcement {line:?}");
    SpawnedDaemon { child, addr }
}

#[test]
fn kill_minus_nine_mid_flight_loses_nothing_durable() {
    let _guard = suite_lock();
    let dir = temp_dir("kill9");
    let first = spawn_binary(&dir, &[]);
    // Populate the cache, then kill -9 while a second request is on
    // the wire.
    let warm = submit(&first.addr, &request("warm"));
    assert!(warm.result.ok);
    assert_eq!(warm.result.cache.as_deref(), Some("miss"));
    let addr = first.addr.clone();
    let inflight = std::thread::spawn(move || {
        // The heavy design misses the cache and takes ~1 s, so this
        // request is genuinely computing when the SIGKILL lands.
        let req = MapRequest::for_path("doomed", heavy_design_path());
        submit_with_retry(
            &addr,
            &req,
            &RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut child = first.child;
    child.kill().unwrap(); // SIGKILL: no drain, no atexit, nothing
    child.wait().unwrap();
    // The in-flight client sees a connection error or a served result —
    // never a torn half-response that parses as success.
    match inflight.join().unwrap() {
        Ok(sub) => assert!(sub.result.ok || sub.result.code.is_some()),
        Err(err) => assert!(!err.is_empty()),
    }
    // Durable state survived: the ledger parses line by line and the
    // restarted daemon serves the warm request from cache, byte for
    // byte what the first daemon computed.
    assert_ledger_intact(&dir.join("ledger.jsonl"), 1);
    let second = spawn_binary(&dir, &[]);
    let replay = submit(&second.addr, &request("replayed"));
    assert!(replay.result.ok);
    assert_eq!(
        replay.result.cache.as_deref(),
        Some("hit"),
        "cache must survive kill -9"
    );
    assert_eq!(replay.result.report_text, warm.result.report_text);
    let mut child = second.child;
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_cleanly_with_exit_code_zero() {
    let _guard = suite_lock();
    let dir = temp_dir("sigterm");
    let daemon = spawn_binary(&dir, &["--drain-deadline-ms", "15000"]);
    let served = submit(&daemon.addr, &request("r1"));
    assert!(served.result.ok);
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(status.success());
    let mut child = daemon.child;
    let exit = child.wait().unwrap();
    assert_eq!(exit.code(), Some(0), "idle SIGTERM must be a clean drain");
    // A drained port is closed: connects now fail.
    assert!(TcpStream::connect(daemon.addr.as_str()).is_err());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn shutdown_op_over_the_wire_drains_the_binary() {
    let _guard = suite_lock();
    let dir = temp_dir("shutdownop");
    let daemon = spawn_binary(&dir, &["--drain-deadline-ms", "15000"]);
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .write_all(
            format!(
                "{{\"schema\":\"{}\",\"op\":\"shutdown\"}}\n",
                nanomap::SERVICE_SCHEMA
            )
            .as_bytes(),
        )
        .unwrap();
    let mut ack = String::new();
    let _ = BufReader::new(&mut stream).read_line(&mut ack);
    assert!(ack.contains("draining"), "ack was {ack:?}");
    let mut child = daemon.child;
    let exit = child.wait().unwrap();
    assert_eq!(exit.code(), Some(0));
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Deterministic fault injection end to end.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Service telemetry: stats reconciliation, segment tiling, tracing.
// ---------------------------------------------------------------------

/// Integer leaf of a nested stats object (`counters.served`,
/// `latency_us.ok.count`, ...), by path.
fn stat_at(stats: &JsonValue, path: &[&str]) -> i64 {
    let mut node = stats;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("stats missing {path:?}"));
    }
    node.as_int()
        .unwrap_or_else(|| panic!("{path:?} not an int"))
}

#[test]
fn stats_histograms_reconcile_exactly_with_lifetime_counters() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("statsrec", |c| {
        c.workers = 1;
        c.queue_capacity = 2;
        c.free_admission_depth = 0;
    });
    let addr = handle.addr().to_string();
    // A flood against one worker: some served, the rest typed-shed.
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut req = request(&format!("st-{i}"));
                req.time_budget_ms = Some(120_000);
                final_result(&raw_exchange(&addr, &req.to_wire()))
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // One typed client error lands in the failure accounting classes.
    // (Budgeted, so depth-0 admission control lets it through to the
    // objective validation that rejects it.)
    let mut bad = request("st-bad");
    bad.objective = "warp-speed".into();
    bad.time_budget_ms = Some(120_000);
    let rejected = submit(&addr, &bad);
    assert_eq!(rejected.result.code.as_deref(), Some(code::INVALID));

    let stats = nanomap::query_stats(&addr, 10_000).unwrap();
    assert_eq!(
        stats.get("schema").and_then(JsonValue::as_str),
        Some("nanomapd-stats-v1")
    );
    let class_count = |class: &str| stat_at(&stats, &["latency_us", class, "count"]);
    let counter = |name: &str| stat_at(&stats, &["counters", name]);
    // The SLO invariant: every admitted-or-refused request shows up in
    // exactly one latency class, and the classes partition the lifetime
    // counters with nothing lost and nothing double-counted.
    assert_eq!(class_count("ok"), counter("served"));
    assert_eq!(
        class_count("shed") + class_count("shutdown"),
        counter("shed")
    );
    assert_eq!(class_count("panic"), counter("panics"));
    assert_eq!(
        class_count("invalid") + class_count("budget") + class_count("failed"),
        counter("failures")
    );
    assert!(counter("served") >= 1, "the flood must serve at least one");
    assert!(counter("shed") >= 1, "a 2-deep queue must shed some of 8");
    assert_eq!(counter("failures"), 1, "exactly the bad objective");
    let total: i64 = [
        "ok", "shed", "shutdown", "invalid", "panic", "budget", "failed",
    ]
    .iter()
    .map(|c| class_count(c))
    .sum();
    assert_eq!(
        total,
        counter("served") + counter("shed") + counter("panics") + counter("failures"),
        "histograms and counters must reconcile exactly"
    );
    // Latency percentiles are well-formed: p50 <= p95 <= p99 <= max.
    let ok = |f: &str| stat_at(&stats, &["latency_us", "ok", f]);
    assert!(ok("p50") <= ok("p95") && ok("p95") <= ok("p99") && ok("p99") <= ok("max"));
    handle.shutdown(Duration::from_secs(30));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn preempted_request_segments_tile_its_end_to_end_latency() {
    let _guard = suite_lock();
    // A 10 ms slice carves the ~1 s heavy design into several
    // preempt/re-queue/resume cycles, so every segment class accrues.
    let (handle, dir) = daemon("segtile", |c| c.preempt_slice_ms = Some(10));
    let sub = submit(
        handle.addr(),
        &MapRequest::for_path("seg", heavy_design_path()),
    );
    assert!(sub.result.ok, "sliced run failed: {:?}", sub.result);
    assert!(handle.stats().preemptions >= 1, "slice must preempt");

    let stats = nanomap::query_stats(handle.addr(), 10_000).unwrap();
    assert_eq!(stat_at(&stats, &["latency_us", "ok", "count"]), 1);
    assert_eq!(
        stat_at(&stats, &["counters", "preemptions"]),
        handle.stats().preemptions as i64
    );
    let e2e = stat_at(&stats, &["latency_us", "ok", "sum"]);
    let segments: i64 = ["queue", "compute", "cache", "serialize"]
        .iter()
        .map(|s| stat_at(&stats, &["segments_us", s, "sum"]))
        .sum();
    // Queue residence (including every preemption re-queue), compute
    // slices, cache traffic and serialization are disjoint slices of
    // one request's wall clock: they can never exceed it, and the
    // untimed gaps (parse, admission checks, ledger append) are small
    // against a ~1 s compute.
    assert!(
        segments <= e2e,
        "segments {segments} us overlap: exceed e2e {e2e} us"
    );
    assert!(
        segments * 10 >= e2e * 7,
        "segments {segments} us cover under 70% of e2e {e2e} us"
    );
    assert!(
        stat_at(&stats, &["segments_us", "compute", "sum"]) > 0
            && stat_at(&stats, &["segments_us", "queue", "sum"]) > 0,
        "a preempted compute accrues both compute and re-queue time"
    );
    handle.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn one_trace_id_links_submit_service_events_and_the_ledger() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("tracelink", |c| {
        let root = c.state_dir.parent().unwrap().to_path_buf();
        c.events_path = Some(root.join("events.ndjson"));
    });
    // Client-propagated trace on a cache-missing compute.
    let mut req = request("traced");
    req.trace_id = Some("feedfacecafebeef".into());
    let sub = submit(handle.addr(), &req);
    assert!(sub.result.ok);
    assert_eq!(sub.result.cache.as_deref(), Some("miss"));
    assert_eq!(
        sub.result.trace_id.as_deref(),
        Some("feedfacecafebeef"),
        "the daemon must echo a propagated trace id"
    );
    // An untraced submit gets a server-assigned 16-hex id.
    let assigned = submit(handle.addr(), &request("untraced"));
    let assigned_id = assigned.result.trace_id.clone().expect("assigned trace");
    assert_eq!(assigned_id.len(), 16);
    assert!(assigned_id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(assigned_id, "feedfacecafebeef");
    // Shutdown flushes and closes the event capture.
    handle.shutdown(Duration::from_secs(10));

    let text = std::fs::read_to_string(dir.join("events.ndjson")).unwrap();
    let timeline = nanomap::runs::trace_timeline(&text, "feedfacecafebeef");
    assert!(!timeline.is_empty(), "no service events for the trace");
    let stages: Vec<&str> = timeline.iter().map(|e| e.stage.as_str()).collect();
    assert!(stages.contains(&"queued"), "stages: {stages:?}");
    assert!(stages.contains(&"completed"), "stages: {stages:?}");
    let done = timeline.iter().find(|e| e.stage == "completed").unwrap();
    assert_eq!(done.code.as_deref(), Some("ok"));
    assert_eq!(done.request, "traced");
    // The cache-hit follower is traceable too, under its own id.
    assert!(!nanomap::runs::trace_timeline(&text, &assigned_id).is_empty());
    // And the computed run's ledger record carries the same trace.
    let ledger = nanomap::Ledger::load(&dir.join("ledger.jsonl")).unwrap();
    let record = ledger
        .find_by_trace("feedfacecafebeef")
        .expect("ledger record stamped with the trace id");
    assert_eq!(Some(record.run_id.as_str()), sub.result.run_id.as_deref());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ping_reports_uptime_version_drain_state_and_snapshot_age() {
    let _guard = suite_lock();
    let (handle, dir) = daemon("health", |c| c.stats_interval_ms = 50);
    let ping = format!(
        "{{\"schema\":\"{}\",\"op\":\"ping\"}}",
        nanomap::SERVICE_SCHEMA
    );
    // Give the ticker time to persist at least one snapshot.
    std::thread::sleep(Duration::from_millis(250));
    let lines = raw_exchange(handle.addr(), &ping);
    let parsed = Response::parse(lines.last().unwrap()).unwrap();
    let Response::Pong {
        version,
        draining,
        snapshot_age_ms,
        ..
    } = parsed
    else {
        panic!("expected a pong, got {parsed:?}");
    };
    assert_eq!(version, "nanomapd-v1");
    assert!(!draining);
    let age = snapshot_age_ms.expect("ticker should have persisted a snapshot");
    assert!(age < 10_000, "snapshot age {age} ms is stale");
    // The persisted snapshot sits next to the ledger and is valid JSON
    // with the stats schema tag.
    let persisted = std::fs::read_to_string(dir.join("nanomapd-stats.json")).unwrap();
    let doc = json::parse(&persisted).unwrap();
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("nanomapd-stats-v1")
    );
    // Draining flips the health bit while ping keeps answering.
    handle.begin_drain();
    let lines = raw_exchange(handle.addr(), &ping);
    match Response::parse(lines.last().unwrap()).unwrap() {
        Response::Pong {
            draining,
            uptime_ms,
            ..
        } => {
            assert!(draining, "drain state must be visible in pong");
            assert!(uptime_ms < 120_000);
        }
        other => panic!("expected a pong, got {other:?}"),
    }
    handle.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn env_armed_failpoints_fire_deterministically_in_the_spawned_binary() {
    let _guard = suite_lock();
    let dir = temp_dir("envfp");
    // Arm cache.write=always in the child's environment: the binary
    // computes fine but persists nothing, so a second daemon with the
    // same state dir recomputes (miss), not replays (hit).
    let mut child = Command::new(env!("CARGO_BIN_EXE_nanomapd"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(dir.join("state"))
        .arg("--no-ledger")
        .env(nanomap_observe::FAILPOINTS_ENV, "cache.write=always")
        .env(nanomap_observe::FAILPOINT_SEED_ENV, "7")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line.rsplit(' ').next().unwrap().trim().to_string();
    let served = submit(&addr, &request("r1"));
    assert!(served.result.ok);
    assert!(
        std::fs::read_dir(dir.join("state/cache"))
            .map(|mut entries| entries.next().is_none())
            .unwrap_or(true),
        "armed cache.write failpoint must suppress persistence"
    );
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Exact recovery (SAT rung) under daemon control.
// ---------------------------------------------------------------------

/// A daemon serving a dead fabric with `--exact-recovery`: the request
/// climbs the whole heuristic ladder, enters the exact SAT rung, and is
/// *proven* unmappable — a typed, retry-free failure naming the defect
/// class, not a hang, panic or generic exhaustion. A budgeted request
/// against the same fabric is budget-rejected cleanly instead. The
/// daemon stays healthy throughout.
#[test]
fn exact_rung_unsat_and_budget_reject_cleanly_under_the_daemon() {
    let _guard = suite_lock();
    let dir = temp_dir("exactunsat");
    // Every slot dead: heuristics fail fast, the exact rung's precheck
    // proves emptiness on the widest grid the ladder grants.
    let map_path = dir.join("fabric.defects");
    std::fs::write(&map_path, "rate 1.0\nseed 1\n").unwrap();
    let (handle, _) = daemon("exactunsat-d", |c| {
        c.state_dir = dir.join("state");
        c.ledger_path = None;
        c.defect_map_path = Some(map_path.clone());
        c.exact_recovery = true;
        // A slice bound keeps even a pathological solve preemptible.
        c.preempt_slice_ms = Some(2_000);
    });

    // Unbudgeted request: typed infeasibility, not a panic or timeout.
    let unsat = submit(handle.addr(), &request("unsat-1"));
    assert!(!unsat.result.ok, "nothing maps on a dead fabric");
    assert_eq!(unsat.result.code.as_deref(), Some(code::FAILED));
    let detail = unsat.result.detail.clone().unwrap_or_default();
    assert!(
        detail.contains("infeasible"),
        "the rejection must carry the infeasibility proof, got: {detail}"
    );
    assert!(
        detail.contains("dead slots") || detail.contains("NRAM"),
        "the proof must name the dominant defect class, got: {detail}"
    );

    // Budgeted request: the slice/budget machinery rejects with the
    // typed budget code (or proves UNSAT first if the ladder is quick);
    // either way the connection sees a clean typed terminal response.
    let mut budgeted = request("unsat-2");
    budgeted.time_budget_ms = Some(1);
    let rejected = submit(handle.addr(), &budgeted);
    assert!(!rejected.result.ok);
    let rcode = rejected.result.code.as_deref();
    assert!(
        rcode == Some(code::BUDGET) || rcode == Some(code::FAILED),
        "expected a typed budget/failed rejection, got {rcode:?}"
    );

    // The daemon survived both and still answers stats.
    let stats = handle.stats();
    assert!(stats.failures >= 1, "the UNSAT rejection is accounted");
    handle.shutdown(Duration::from_secs(30));
    let _ = std::fs::remove_dir_all(dir);
}
