//! `nanomapd` — the NanoMap mapping daemon.
//!
//! ```text
//! nanomapd --addr 127.0.0.1:7171 --state-dir results/daemon \
//!          --ledger results/runs/ledger.jsonl --workers 2
//! ```
//!
//! Serves `nanomapd-v1` line-delimited JSON (see `nanomap submit`).
//! SIGTERM or a client `shutdown` op triggers a graceful drain under
//! `--drain-deadline-ms`.
//!
//! Exit codes:
//! - `0` — clean drain: every admitted request was answered.
//! - `1` — hard error: bad flags, bind failure, unwritable state dir.
//! - `4` — degraded drain: the deadline shed admitted requests
//!   (each got a retryable `shutdown` rejection first).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use nanomap_daemon::{exit, start, DaemonConfig};

const USAGE: &str = "usage: nanomapd [options]

options:
  --addr HOST:PORT|PATH     bind address; a path binds a unix socket
                            (default 127.0.0.1:0, prints the bound port)
  --workers N               mapping worker threads (default 2)
  --queue-capacity N        admission queue bound (default 16)
  --free-admission-depth N  depth above which time_budget_ms is required
                            (default 4)
  --state-dir DIR           cache/ + checkpoints/ root (default nanomapd-state)
  --ledger PATH             append computed runs to this flight-recorder
                            ledger (default results/runs/ledger.jsonl;
                            --no-ledger disables)
  --preempt-slice-ms MS     preemption time slice (default: off)
  --events PATH             capture nanomap-events-v1 NDJSON (service
                            lifecycle + per-run events) to PATH
  --stats-interval-ms MS    nanomapd-stats-v1 snapshot cadence next to
                            the ledger (default 2000; 0 disables)
  --read-timeout-ms MS      slow-loris guard per request line (default 10000)
  --drain-deadline-ms MS    graceful-drain budget on shutdown (default 30000)
  --lut-inputs K            LUT size for technology mapping (default 4)
  --defect-map PATH         fabric defect map every request maps around
  --exact-recovery          run the complete SAT assignment rung after
                            the heuristic recovery ladder fails
  -h, --help                this text

exit codes: 0 clean drain, 1 hard error, 4 degraded drain (shed at deadline)";

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs `on_term` for SIGTERM + SIGINT through the raw `signal(2)`
/// ABI — the daemon stays dependency-free.
fn install_signal_handlers() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

fn parse_args(args: &[String]) -> Result<(DaemonConfig, u64), String> {
    let mut config = DaemonConfig {
        ledger_path: Some(PathBuf::from("results/runs/ledger.jsonl")),
        ..DaemonConfig::default()
    };
    let mut drain_deadline_ms = 30_000u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue-capacity" => {
                config.queue_capacity = parse_num(&value("--queue-capacity")?, "--queue-capacity")?;
            }
            "--free-admission-depth" => {
                config.free_admission_depth =
                    parse_num(&value("--free-admission-depth")?, "--free-admission-depth")?;
            }
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")?),
            "--ledger" => config.ledger_path = Some(PathBuf::from(value("--ledger")?)),
            "--no-ledger" => config.ledger_path = None,
            "--preempt-slice-ms" => {
                config.preempt_slice_ms = Some(parse_num(
                    &value("--preempt-slice-ms")?,
                    "--preempt-slice-ms",
                )?);
            }
            "--events" => config.events_path = Some(PathBuf::from(value("--events")?)),
            "--stats-interval-ms" => {
                config.stats_interval_ms =
                    parse_num(&value("--stats-interval-ms")?, "--stats-interval-ms")?;
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    parse_num(&value("--read-timeout-ms")?, "--read-timeout-ms")?;
            }
            "--drain-deadline-ms" => {
                drain_deadline_ms =
                    parse_num(&value("--drain-deadline-ms")?, "--drain-deadline-ms")?;
            }
            "--lut-inputs" => {
                config.lut_inputs = Some(parse_num(&value("--lut-inputs")?, "--lut-inputs")?);
            }
            "--defect-map" => {
                config.defect_map_path = Some(PathBuf::from(value("--defect-map")?));
            }
            "--exact-recovery" => config.exact_recovery = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if config.workers == 0 || config.queue_capacity == 0 {
        return Err("--workers and --queue-capacity must be at least 1".into());
    }
    Ok((config, drain_deadline_ms))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: {text:?} is not a valid number"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, drain_deadline_ms) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::from(exit::CLEAN);
        }
        Err(msg) => {
            eprintln!("nanomapd: {msg}");
            return ExitCode::from(exit::ERROR);
        }
    };
    install_signal_handlers();
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(msg) => {
            eprintln!("nanomapd: {msg}");
            return ExitCode::from(exit::ERROR);
        }
    };
    // The bound address goes to stdout first so wrappers (tests, the
    // daemon-smoke CI job) can read the resolved port of `:0` binds.
    println!("nanomapd listening on {}", handle.addr());
    while !TERM.load(Ordering::SeqCst) && !handle.draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("nanomapd: draining (deadline {drain_deadline_ms} ms)");
    let outcome = handle.shutdown(Duration::from_millis(drain_deadline_ms));
    if outcome.clean {
        eprintln!("nanomapd: clean drain");
        ExitCode::from(exit::CLEAN)
    } else {
        eprintln!(
            "nanomapd: degraded drain, {} request(s) shed at deadline",
            outcome.shed_at_deadline
        );
        ExitCode::from(exit::DEGRADED)
    }
}
