//! The crash-safe result cache.
//!
//! One file per result, named by the flight-recorder run id (FNV-1a
//! over netlist fingerprint + objective key + seeds), so a repeat
//! submission of an identical request is a filesystem lookup, not a
//! mapping run. Entries are two lines:
//!
//! ```text
//! {"schema":"nanomapd-cache-v1","run_id":"8d3…","circuit":"accumulator","objective":"min-at"}
//! {…the MappingReport, compact…}
//! ```
//!
//! The report line is stored **verbatim** and spliced verbatim into
//! cache-hit responses, so a hit is byte-identical to the serve that
//! populated it. Writes go through the atomic temp-file+rename
//! substrate: a `kill -9` mid-write leaves either no entry or a
//! complete one. Loads validate both lines and treat anything torn,
//! foreign or half-written as a miss — and delete it, so one corrupt
//! entry can never wedge its key forever.

use std::path::{Path, PathBuf};

use nanomap::artifact::versions;
use nanomap::atomic_write_text;
use nanomap_observe::{failpoint, json, JsonValue};

/// Schema tag on every cache entry's header line.
pub const CACHE_SCHEMA: &str = versions::CACHE;

/// An on-disk result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and creates) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures as text.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        Ok(Self { dir })
    }

    /// The entry path for a run id.
    #[must_use]
    pub fn entry_path(&self, run_id: &str) -> PathBuf {
        self.dir.join(format!("{run_id}.json"))
    }

    /// Looks a run id up; returns the verbatim report text on a hit.
    /// Every failure mode — missing entry, injected IO fault, torn or
    /// foreign content — degrades to a miss (torn entries are removed).
    #[must_use]
    pub fn load(&self, run_id: &str) -> Option<String> {
        let path = self.entry_path(run_id);
        if failpoint::inject_io("cache.load").is_err() {
            return None;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return None,
        };
        match Self::validate(run_id, &text) {
            Some(report) => Some(report),
            None => {
                // A torn or foreign entry is dead weight: removing it
                // turns "corrupt forever" into "recompute once".
                eprintln!(
                    "nanomapd: dropping torn cache entry {} ({} bytes)",
                    path.display(),
                    text.len()
                );
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Validates entry text; returns the verbatim report line.
    fn validate(run_id: &str, text: &str) -> Option<String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next()?;
        let report = lines.next()?;
        if lines.next().is_some() {
            return None;
        }
        let header = json::parse(header).ok()?;
        if header.get("schema").and_then(JsonValue::as_str) != Some(CACHE_SCHEMA)
            || header.get("run_id").and_then(JsonValue::as_str) != Some(run_id)
        {
            return None;
        }
        // The report must be intact JSON; it is returned untouched.
        json::parse(report).ok()?;
        Some(report.to_string())
    }

    /// Stores a result. Best-effort: a failed store (disk full,
    /// injected fault) costs a future recompute, never the request.
    pub fn store(&self, run_id: &str, circuit: &str, objective_key: &str, report_text: &str) {
        if failpoint::inject_io("cache.write").is_err() {
            eprintln!("nanomapd: cache write for {run_id} suppressed by failpoint");
            return;
        }
        let header = JsonValue::object()
            .with("schema", CACHE_SCHEMA)
            .with("run_id", run_id)
            .with("circuit", circuit)
            .with("objective", objective_key)
            .to_compact_string();
        let entry = format!("{header}\n{report_text}\n");
        if let Err(e) = atomic_write_text(&self.entry_path(run_id), &entry) {
            eprintln!("nanomapd: cache write for {run_id} failed: {e}");
        }
    }

    /// Number of (possibly torn) entries on disk — observability only.
    #[must_use]
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir).map_or(0, |entries| entries.flatten().count())
    }

    /// Total bytes of entries on disk — the `cache_bytes` gauge.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        std::fs::read_dir(&self.dir).map_or(0, |entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
    }

    /// True when the cache directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache directory (for diagnostics and tests).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("nanomapd-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_load_round_trips_verbatim() {
        let c = cache("roundtrip");
        let report = "{\"circuit\":\"acc\",\"delay_ns\":17.02,\"area_um2\":50000}";
        c.store("feedc0de00000000", "acc", "min-at", report);
        assert_eq!(c.load("feedc0de00000000").as_deref(), Some(report));
        assert_eq!(c.len(), 1);
        std::fs::remove_dir_all(c.dir()).unwrap();
    }

    #[test]
    fn missing_and_wrong_key_are_misses() {
        let c = cache("miss");
        assert_eq!(c.load("0000000000000000"), None);
        c.store("aaaaaaaaaaaaaaaa", "acc", "min-at", "{\"x\":1}");
        // Entry content names a different run id than the lookup key.
        std::fs::copy(
            c.entry_path("aaaaaaaaaaaaaaaa"),
            c.entry_path("bbbbbbbbbbbbbbbb"),
        )
        .unwrap();
        assert_eq!(c.load("bbbbbbbbbbbbbbbb"), None, "id mismatch is a miss");
        std::fs::remove_dir_all(c.dir()).unwrap();
    }

    #[test]
    fn torn_entries_are_misses_and_get_removed() {
        let c = cache("torn");
        let report = "{\"circuit\":\"acc\",\"num_les\":34}";
        c.store("cccccccccccccccc", "acc", "min-at", report);
        let path = c.entry_path("cccccccccccccccc");
        let full = std::fs::read_to_string(&path).unwrap();
        for (i, torn) in [
            &full[..full.len() / 2],         // truncated mid-report
            &full[..10],                     // truncated mid-header
            "",                              // empty file
            "{\"schema\":\"other-v1\"}\n{}", // foreign schema
        ]
        .iter()
        .enumerate()
        {
            std::fs::write(&path, torn).unwrap();
            assert_eq!(c.load("cccccccccccccccc"), None, "variant {i}");
            assert!(!path.exists(), "variant {i} not removed");
            // Re-store for the next variant.
            c.store("cccccccccccccccc", "acc", "min-at", report);
        }
        std::fs::remove_dir_all(c.dir()).unwrap();
    }
}
