//! # nanomapd
//!
//! The NanoMap mapping-as-a-service daemon: a hand-rolled thread pool
//! serving concurrent mapping requests over line-delimited JSON
//! (`nanomapd-v1`, see [`nanomap::service`]) on TCP or a unix socket,
//! wrapped in a full robustness envelope:
//!
//! - **Admission control.** A bounded queue; requests arriving past
//!   capacity are shed with a typed, retryable rejection instead of
//!   queuing unbounded latency. Above a free-admission depth every
//!   request must carry `time_budget_ms` so queue residence stays
//!   bounded under load.
//! - **Preemption.** Long requests run in exponentially growing time
//!   slices through the flow's CancelToken + checkpoint machinery: an
//!   expired slice re-enqueues the request at the back of the queue and
//!   the next slice resumes from its `nanomap-checkpoint-v1` snapshot,
//!   not from scratch.
//! - **Crash-safe result cache.** Results land in an atomic-rename
//!   cache keyed by netlist fingerprint + objective + seeds
//!   ([`cache::ResultCache`]); repeat submissions are served from disk
//!   byte-identically in microseconds, across daemon restarts and
//!   `kill -9`.
//! - **Request isolation.** A panicking worker converts to a typed
//!   `panic` rejection via `catch_unwind`; the daemon never dies with
//!   its request.
//! - **Graceful shutdown.** SIGTERM (or the `shutdown` op) drains
//!   in-flight and queued work under a deadline; whatever misses the
//!   deadline is shed with a `shutdown` rejection, and slice
//!   checkpoints persist for the next daemon's resume.
//!
//! - **Service telemetry.** Every request carries a trace id (client
//!   propagated or daemon assigned) echoed on each lifecycle/result
//!   line, stamped into `service` events on the `nanomap-events-v1`
//!   bus, and recorded on the ledger line of the computing run. Per-
//!   request latency splits into queue-wait / compute / cache-lookup /
//!   serialize segments aggregated in always-on histograms per result
//!   code, exported as a `nanomapd-stats-v1` document via the `stats`
//!   op and persisted crash-safe next to the ledger by a ticker.
//!
//! Every computed run is appended to the flight-recorder ledger, so
//! `nanomap runs` covers daemon traffic exactly like CLI traffic.

#![warn(missing_docs)]

pub mod cache;

use std::collections::{HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nanomap::artifact::versions;
use nanomap::service::{
    code, render_error_result, render_lifecycle, render_ok_result, DesignSource, MapRequest,
    Request,
};
use nanomap::{
    append_run, atomic_write_text, checkpoint_file_name, Checkpoint, FlowError, NanoMap, RunRecord,
};
use nanomap_arch::{ArchParams, DefectMap};
use nanomap_netlist::{blif, vhdl, LutNetwork};
use nanomap_observe::{failpoint, EventKind, EventStream, HistogramHandle, JsonValue};
use nanomap_techmap::{expand, ExpandOptions};

use cache::ResultCache;

/// Everything a daemon instance is configured with.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address: `host:port` for TCP, a path (contains `/`) for a
    /// unix socket. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads mapping requests concurrently.
    pub workers: usize,
    /// Admission queue capacity; arrivals past it are shed.
    pub queue_capacity: usize,
    /// Queue depth above which `time_budget_ms` becomes mandatory.
    pub free_admission_depth: usize,
    /// Root for daemon state: `cache/` and `checkpoints/` live here.
    pub state_dir: PathBuf,
    /// Flight-recorder ledger to append computed runs to (optional).
    pub ledger_path: Option<PathBuf>,
    /// Preemption time slice; `None` runs every request to completion.
    pub preempt_slice_ms: Option<u64>,
    /// How long a request may sit idle on the wire before the
    /// connection is dropped (slow-loris guard).
    pub read_timeout_ms: u64,
    /// LUT input count override for technology mapping.
    pub lut_inputs: Option<u32>,
    /// NDJSON file capturing `nanomap-events-v1` events (`service`
    /// lifecycle lines included) for the daemon's lifetime. `None`
    /// keeps the event bus disabled — serving stays byte-identical.
    pub events_path: Option<PathBuf>,
    /// Period of the stats ticker that persists `nanomapd-stats-v1`
    /// snapshots next to the ledger; 0 disables the ticker (the
    /// `stats` op still answers live).
    pub stats_interval_ms: u64,
    /// Fabric defect map every request maps around — the daemon serves
    /// one physical fabric, so its defects are daemon state, not
    /// request state. `None` serves a pristine fabric.
    pub defect_map_path: Option<PathBuf>,
    /// After the heuristic recovery ladder fails a request, run the
    /// complete SAT-based assignment rung (the exact rung polls the
    /// slice budget, so preemption still works inside it).
    pub exact_recovery: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 16,
            free_admission_depth: 4,
            state_dir: PathBuf::from("nanomapd-state"),
            ledger_path: None,
            preempt_slice_ms: None,
            read_timeout_ms: 10_000,
            lut_inputs: None,
            events_path: None,
            stats_interval_ms: 2_000,
            defect_map_path: None,
            exact_recovery: false,
        }
    }
}

/// A request that passed admission, waiting for (or back in) the queue.
struct Job {
    request: MapRequest,
    conn: Box<dyn Write + Send>,
    /// Preemption count: 0 on first service, +1 per expired slice.
    attempts: u32,
    /// Wall-clock budget left across slices (None = unbudgeted).
    budget_left_ms: Option<u64>,
    /// Trace id: client propagated or daemon assigned at admission.
    trace: String,
    /// When the request line arrived — anchors end-to-end latency.
    arrived: Instant,
    /// When the job last entered the queue; queue-wait accrues from
    /// here on every pop (admission, coalescing, preemption).
    enqueued_at: Instant,
    /// Accrued queue-wait across all enqueues, microseconds.
    queue_us: u64,
    /// Accrued compute (parse/resolve + mapping slices), microseconds.
    compute_us: u64,
    /// Accrued cache-lookup time, microseconds.
    cache_us: u64,
}

/// Counters surfaced through `ping` and [`DaemonHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Requests currently being mapped.
    pub inflight: u64,
    /// Requests waiting in the queue.
    pub queued: u64,
    /// Results served (cache hits included).
    pub served: u64,
    /// Requests shed by admission control or shutdown.
    pub shed: u64,
    /// Worker panics converted to typed rejections.
    pub panics: u64,
    /// Permanent non-panic rejections (invalid, budget, failed).
    pub failures: u64,
    /// Cache hits among served results.
    pub cache_hits: u64,
    /// Preemptions (expired slices re-enqueued).
    pub preemptions: u64,
}

/// Always-on latency accounting: standalone log₂ histograms detached
/// from the observe registry's enable gate, so serving accounts even
/// while flow observability is off. None of this alters response bytes
/// — unobserved serving stays byte-identical.
struct ServiceLatency {
    /// End-to-end latency per accounting class, microseconds.
    ok: HistogramHandle,
    shed: HistogramHandle,
    shutdown: HistogramHandle,
    invalid: HistogramHandle,
    panic: HistogramHandle,
    budget: HistogramHandle,
    failed: HistogramHandle,
    /// Lifecycle segments across all requests, microseconds.
    queue: HistogramHandle,
    compute: HistogramHandle,
    cache: HistogramHandle,
    serialize: HistogramHandle,
}

impl ServiceLatency {
    fn new() -> Self {
        Self {
            ok: HistogramHandle::standalone(),
            shed: HistogramHandle::standalone(),
            shutdown: HistogramHandle::standalone(),
            invalid: HistogramHandle::standalone(),
            panic: HistogramHandle::standalone(),
            budget: HistogramHandle::standalone(),
            failed: HistogramHandle::standalone(),
            queue: HistogramHandle::standalone(),
            compute: HistogramHandle::standalone(),
            cache: HistogramHandle::standalone(),
            serialize: HistogramHandle::standalone(),
        }
    }

    /// The end-to-end histogram for an accounting class (`"ok"` or a
    /// typed rejection code). Unknown codes land in `failed` rather
    /// than losing the sample — reconciliation stays exact.
    fn class(&self, class: &str) -> &HistogramHandle {
        match class {
            "ok" => &self.ok,
            code::SHED => &self.shed,
            code::SHUTDOWN => &self.shutdown,
            code::INVALID => &self.invalid,
            code::PANIC => &self.panic,
            code::BUDGET => &self.budget,
            _ => &self.failed,
        }
    }

    /// Every class in the deterministic export order.
    fn classes(&self) -> [(&'static str, &HistogramHandle); 7] {
        [
            ("ok", &self.ok),
            (code::SHED, &self.shed),
            (code::SHUTDOWN, &self.shutdown),
            (code::INVALID, &self.invalid),
            (code::PANIC, &self.panic),
            (code::BUDGET, &self.budget),
            (code::FAILED, &self.failed),
        ]
    }

    /// Every segment in the deterministic export order.
    fn segments(&self) -> [(&'static str, &HistogramHandle); 4] {
        [
            ("queue", &self.queue),
            ("compute", &self.compute),
            ("cache", &self.cache),
            ("serialize", &self.serialize),
        ]
    }
}

/// Sentinel in `last_snapshot_ms`: no snapshot persisted yet.
const SNAPSHOT_NEVER: u64 = u64::MAX;

struct Shared {
    config: DaemonConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// SIGTERM/`shutdown` received: stop admitting, drain the queue.
    draining: AtomicBool,
    /// Drain deadline passed: stop everything now.
    stop_now: AtomicBool,
    inflight: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    failures: AtomicU64,
    cache_hits: AtomicU64,
    preemptions: AtomicU64,
    cache: ResultCache,
    /// Run ids currently being computed — the thundering-herd guard.
    computing: Mutex<HashSet<String>>,
    /// Daemon start — the epoch of uptime and snapshot ages.
    start_at: Instant,
    /// Always-on latency histograms behind `stats`.
    latency: ServiceLatency,
    /// Uptime ms at the last persisted snapshot ([`SNAPSHOT_NEVER`] =
    /// none yet).
    last_snapshot_ms: AtomicU64,
    /// Monotone feed for daemon-assigned trace ids.
    trace_seq: AtomicU64,
    /// Parsed fabric defect map (see [`DaemonConfig::defect_map_path`]).
    defects: Option<DefectMap>,
}

impl Shared {
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            inflight: self.inflight.load(Ordering::Relaxed),
            queued: self.queue.lock().unwrap().len() as u64,
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
        }
    }

    /// The `nanomapd-stats-v1` document: fixed key order, every class
    /// and segment always present (zeroed histograms included), so
    /// consumers can diff snapshots structurally.
    fn stats_json(&self) -> JsonValue {
        let stats = self.stats();
        let counters = JsonValue::object()
            .with("served", stats.served)
            .with("shed", stats.shed)
            .with("panics", stats.panics)
            .with("failures", stats.failures)
            .with("cache_hits", stats.cache_hits)
            .with("preemptions", stats.preemptions);
        let gauges = JsonValue::object()
            .with("queue_depth", stats.queued)
            .with("inflight", stats.inflight)
            .with("workers", self.config.workers.max(1) as u64)
            .with("cache_entries", self.cache.len() as u64)
            .with("cache_bytes", self.cache.bytes());
        let mut latency = JsonValue::object();
        for (name, hist) in self.latency.classes() {
            latency.set(name, hist_json(hist));
        }
        let mut segments = JsonValue::object();
        for (name, hist) in self.latency.segments() {
            segments.set(name, hist_json(hist));
        }
        JsonValue::object()
            .with("schema", versions::STATS)
            .with("uptime_ms", self.uptime_ms())
            .with("version", versions::SERVICE)
            .with("draining", self.draining.load(Ordering::SeqCst))
            .with("counters", counters)
            .with("gauges", gauges)
            .with("latency_us", latency)
            .with("segments_us", segments)
    }

    fn uptime_ms(&self) -> u64 {
        self.start_at.elapsed().as_millis() as u64
    }

    /// Age of the last persisted snapshot, `None` before the first.
    fn snapshot_age_ms(&self) -> Option<u64> {
        let last = self.last_snapshot_ms.load(Ordering::Relaxed);
        (last != SNAPSHOT_NEVER).then(|| self.uptime_ms().saturating_sub(last))
    }

    /// Records one finished request: lifecycle segments plus the
    /// end-to-end sample in its accounting class.
    fn record_request(&self, class: &str, job: &Job, serialize_us: u64) {
        self.latency.queue.record_always(job.queue_us);
        self.latency.compute.record_always(job.compute_us);
        self.latency.cache.record_always(job.cache_us);
        self.latency.serialize.record_always(serialize_us);
        self.latency
            .class(class)
            .record_always(job.arrived.elapsed().as_micros() as u64);
    }
}

/// One histogram readout: counts, bounds and SLO percentiles.
fn hist_json(hist: &HistogramHandle) -> JsonValue {
    let snap = hist.snapshot();
    JsonValue::object()
        .with("count", snap.count)
        .with("sum", snap.sum)
        .with("max", snap.max)
        .with("mean", snap.mean())
        .with("p50", snap.percentile(50.0))
        .with("p90", snap.percentile(90.0))
        .with("p95", snap.percentile(95.0))
        .with("p99", snap.percentile(99.0))
}

/// Where the ticker persists snapshots: next to the ledger when one is
/// configured, inside the state dir otherwise.
fn stats_path(config: &DaemonConfig) -> PathBuf {
    config.ledger_path.as_ref().map_or_else(
        || config.state_dir.join("nanomapd-stats.json"),
        |ledger| {
            ledger.parent().map_or_else(
                || PathBuf::from("nanomapd-stats.json"),
                |dir| dir.join("nanomapd-stats.json"),
            )
        },
    )
}

/// Persists one crash-safe (atomic rename) snapshot and stamps its age.
fn persist_stats(shared: &Shared) {
    let doc = shared.stats_json().to_compact_string();
    if atomic_write_text(&stats_path(&shared.config), &doc).is_ok() {
        shared
            .last_snapshot_ms
            .store(shared.uptime_ms(), Ordering::Relaxed);
    }
}

/// Assigns a fresh 16-hex-digit trace id: FNV-1a over the process id,
/// a monotone counter and the wall clock, unique across restarts that
/// share a ledger.
fn next_trace_id(shared: &Shared) -> String {
    let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| (d.as_secs() << 30) ^ u64::from(d.subsec_nanos()));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for bytes in [
        u64::from(std::process::id()).to_le_bytes(),
        seq.to_le_bytes(),
        nanos.to_le_bytes(),
    ] {
        for b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Publishes one `service` lifecycle event. Guarded here so disabled
/// runs pay one relaxed load, not the event's string allocations.
fn publish_service(
    trace: &str,
    request: &str,
    stage: &str,
    run_id: Option<&str>,
    code_name: Option<&str>,
    detail: Option<&str>,
    us: Option<u64>,
) {
    if !nanomap_observe::events_enabled() {
        return;
    }
    nanomap_observe::publish(EventKind::Service {
        trace_id: trace.to_string(),
        request: request.to_string(),
        stage: stage.to_string(),
        run_id: run_id.map(str::to_string),
        code: code_name.map(str::to_string),
        detail: detail.map(str::to_string),
        us,
    });
}

/// A running daemon: the listener, its workers, and control of both.
pub struct DaemonHandle {
    addr: String,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    unix_socket: Option<PathBuf>,
    /// Live event capture when `events_path` is set; finished (and the
    /// bus disabled again) on shutdown.
    events: Option<EventStream>,
}

/// What a graceful shutdown achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Every admitted request was answered before the deadline.
    pub clean: bool,
    /// Requests shed with `shutdown` rejections at the deadline.
    pub shed_at_deadline: usize,
}

impl DaemonHandle {
    /// The bound address — with TCP port 0 this is the resolved port.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats()
    }

    /// True once a drain began — by [`Self::begin_drain`], SIGTERM, or
    /// a client `shutdown` op. The binary polls this to know when the
    /// protocol asked it to exit.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain (what SIGTERM triggers): admission stops
    /// (new maps get retryable `shutdown` rejections) while workers
    /// keep draining the queue.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Drains under a deadline, then stops: queued requests that miss
    /// the deadline are shed with `shutdown` rejections, in-flight
    /// slices run to their own expiry (their checkpoints persist).
    pub fn shutdown(mut self, deadline: Duration) -> DrainOutcome {
        self.begin_drain();
        let start = Instant::now();
        // Wait for the queue and in-flight work to drain.
        while start.elapsed() < deadline {
            let empty = self.shared.queue.lock().unwrap().is_empty();
            if empty && self.shared.inflight.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.stop_now.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Shed whatever is still queued — typed, retryable, honest.
        let leftover: Vec<Job> = self.shared.queue.lock().unwrap().drain(..).collect();
        let shed_at_deadline = leftover.len();
        for mut job in leftover {
            // Queue-wait accrues up to the moment of the shed, so the
            // deadline sheds stay visible in the segment histograms.
            job.queue_us += job.enqueued_at.elapsed().as_micros() as u64;
            finish_error(
                job,
                &self.shared,
                code::SHUTDOWN,
                "daemon stopped before this request ran",
                Some(1_000),
            );
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if self.shared.config.stats_interval_ms > 0 {
            // Final crash-safe snapshot so post-mortems see the last
            // counters even when the interval never elapsed.
            persist_stats(&self.shared);
        }
        if let Some(events) = self.events.take() {
            let _ = events.finish();
        }
        if let Some(path) = &self.unix_socket {
            let _ = std::fs::remove_file(path);
        }
        DrainOutcome {
            clean: shed_at_deadline == 0 && self.shared.inflight.load(Ordering::SeqCst) == 0,
            shed_at_deadline,
        }
    }
}

/// Binds the listener, spawns the workers, returns control.
///
/// # Errors
///
/// Describes bind/setup failures (address in use, unwritable state dir).
pub fn start(config: DaemonConfig) -> Result<DaemonHandle, String> {
    let cache = ResultCache::open(config.state_dir.join("cache"))?;
    std::fs::create_dir_all(config.state_dir.join("checkpoints"))
        .map_err(|e| format!("creating checkpoint root: {e}"))?;
    let events = match &config.events_path {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("creating event capture {}: {e}", path.display()))?;
            Some(EventStream::spawn(Box::new(file)))
        }
        None => None,
    };
    let defects = match &config.defect_map_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading defect map {}: {e}", path.display()))?;
            Some(
                DefectMap::parse(&text)
                    .map_err(|e| format!("defect map {}: {e}", path.display()))?,
            )
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        config: config.clone(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        draining: AtomicBool::new(false),
        stop_now: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        failures: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        preemptions: AtomicU64::new(0),
        cache,
        computing: Mutex::new(HashSet::new()),
        start_at: Instant::now(),
        latency: ServiceLatency::new(),
        last_snapshot_ms: AtomicU64::new(SNAPSHOT_NEVER),
        trace_seq: AtomicU64::new(0),
        defects,
    });
    let mut threads = Vec::new();
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("nanomapd-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| format!("spawning worker: {e}"))?,
        );
    }
    if config.stats_interval_ms > 0 {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("nanomapd-ticker".into())
                .spawn(move || ticker_loop(&shared))
                .map_err(|e| format!("spawning ticker: {e}"))?,
        );
    }
    let (addr, listener_thread, unix_socket) = spawn_listener(&config.addr, Arc::clone(&shared))?;
    threads.push(listener_thread);
    Ok(DaemonHandle {
        addr,
        shared,
        threads,
        unix_socket,
        events,
    })
}

/// The lightweight sampling ticker: persists a `nanomapd-stats-v1`
/// snapshot every `stats_interval_ms`, sleeping in short hops so
/// shutdown is never blocked behind a long interval.
fn ticker_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.stats_interval_ms.max(1));
    let mut next = Instant::now() + interval;
    loop {
        if shared.stop_now.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next {
            persist_stats(shared);
            next = Instant::now() + interval;
        }
        std::thread::sleep(Duration::from_millis(interval.as_millis().min(50) as u64));
    }
}

// ---------------------------------------------------------------------
// Listener + per-connection admission.
// ---------------------------------------------------------------------

fn spawn_listener(
    addr: &str,
    shared: Arc<Shared>,
) -> Result<(String, std::thread::JoinHandle<()>, Option<PathBuf>), String> {
    if addr.contains('/') {
        #[cfg(unix)]
        {
            let path = PathBuf::from(addr);
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("bind {addr}: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("set_nonblocking: {e}"))?;
            let bound = addr.to_string();
            let thread = std::thread::Builder::new()
                .name("nanomapd-listener".into())
                .spawn(move || loop {
                    if shared.stop_now.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => spawn_connection(Conn::Unix(stream), &shared),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                })
                .map_err(|e| format!("spawning listener: {e}"))?;
            return Ok((bound, thread, Some(PathBuf::from(addr))));
        }
        #[cfg(not(unix))]
        return Err(format!("unix socket {addr} unsupported on this platform"));
    }
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    let thread = std::thread::Builder::new()
        .name("nanomapd-listener".into())
        .spawn(move || loop {
            if shared.stop_now.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => spawn_connection(Conn::Tcp(stream), &shared),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        })
        .map_err(|e| format!("spawning listener: {e}"))?;
    Ok((bound, thread, None))
}

/// One accepted stream, TCP or unix.
enum Conn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn split(self) -> std::io::Result<(Box<dyn std::io::Read + Send>, Box<dyn Write + Send>)> {
        Ok(match self {
            Self::Tcp(s) => (Box::new(s.try_clone()?), Box::new(s)),
            #[cfg(unix)]
            Self::Unix(s) => (Box::new(s.try_clone()?), Box::new(s)),
        })
    }
}

fn spawn_connection(conn: Conn, shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    // Connection threads are detached: each is bounded by the read
    // timeout, so they cannot accumulate past the arrival rate.
    let _ = std::thread::Builder::new()
        .name("nanomapd-conn".into())
        .spawn(move || handle_connection(conn, &shared));
}

fn handle_connection(conn: Conn, shared: &Arc<Shared>) {
    let arrived = Instant::now();
    let timeout = Duration::from_millis(shared.config.read_timeout_ms.max(1));
    let _ = conn.set_read_timeout(Some(timeout));
    let Ok((reader, mut writer)) = conn.split() else {
        return;
    };
    let mut line = String::new();
    // Slow-loris guard: a client that trickles bytes (or none) gets one
    // read-timeout window for its whole request line, then the
    // connection is dropped without tying up anything but this thread.
    // This path bumps the shed counter (and records under the `shed`
    // latency class) while answering with an `invalid` wire code — the
    // client never sent a valid request to reject more precisely.
    if BufReader::new(reader).read_line(&mut line).is_err() || line.trim().is_empty() {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        let trace = next_trace_id(shared);
        publish_service(
            &trace,
            "-",
            "shed",
            None,
            Some(code::INVALID),
            Some("request line not received in time"),
            Some(arrived.elapsed().as_micros() as u64),
        );
        let _ = send_line(
            writer.as_mut(),
            &render_error_result(
                "-",
                code::INVALID,
                "request line not received in time",
                None,
                Some(&trace),
            ),
        );
        shared
            .latency
            .class(code::SHED)
            .record_always(arrived.elapsed().as_micros() as u64);
        return;
    }
    let request = match Request::parse(line.trim_end()) {
        Ok(r) => r,
        Err(detail) => {
            shared.failures.fetch_add(1, Ordering::Relaxed);
            let trace = next_trace_id(shared);
            publish_service(
                &trace,
                "-",
                "completed",
                None,
                Some(code::INVALID),
                Some(&detail),
                Some(arrived.elapsed().as_micros() as u64),
            );
            let _ = send_line(
                writer.as_mut(),
                &render_error_result("-", code::INVALID, &detail, None, Some(&trace)),
            );
            shared
                .latency
                .class(code::INVALID)
                .record_always(arrived.elapsed().as_micros() as u64);
            return;
        }
    };
    match request {
        Request::Ping => {
            let stats = shared.stats();
            let mut pong = JsonValue::object()
                .with("schema", nanomap::SERVICE_SCHEMA)
                .with("event", "pong")
                .with("inflight", stats.inflight)
                .with("queued", stats.queued)
                .with("served", stats.served)
                .with("uptime_ms", shared.uptime_ms())
                .with("version", versions::SERVICE)
                .with("draining", shared.draining.load(Ordering::SeqCst));
            if let Some(age) = shared.snapshot_age_ms() {
                pong.set("snapshot_age_ms", age);
            }
            let _ = send_line(writer.as_mut(), &pong.to_compact_string());
        }
        Request::Stats => {
            let line = JsonValue::object()
                .with("schema", nanomap::SERVICE_SCHEMA)
                .with("event", "stats")
                .with("stats", shared.stats_json())
                .to_compact_string();
            let _ = send_line(writer.as_mut(), &line);
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            let _ = send_line(
                writer.as_mut(),
                &render_lifecycle("draining", "-", None, None),
            );
        }
        Request::Map(map) => admit(map, arrived, writer, shared),
    }
}

/// Sheds a request at admission: counter, latency class, `service`
/// event and the typed wire rejection — all stamped with the trace.
#[allow(clippy::too_many_arguments)] // one call per admission outcome
fn shed_at_admission(
    writer: &mut dyn Write,
    shared: &Shared,
    request_id: &str,
    trace: &str,
    arrived: Instant,
    error_code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    publish_service(
        trace,
        request_id,
        "shed",
        None,
        Some(error_code),
        Some(detail),
        Some(arrived.elapsed().as_micros() as u64),
    );
    let _ = send_line(
        writer,
        &render_error_result(request_id, error_code, detail, retry_after_ms, Some(trace)),
    );
    shared
        .latency
        .class(error_code)
        .record_always(arrived.elapsed().as_micros() as u64);
}

/// Admission control: shed when draining, over capacity, or unbudgeted
/// past the free-admission line; otherwise enqueue with a `queued` echo.
fn admit(
    request: MapRequest,
    arrived: Instant,
    mut writer: Box<dyn Write + Send>,
    shared: &Arc<Shared>,
) {
    let trace = request
        .trace_id
        .clone()
        .unwrap_or_else(|| next_trace_id(shared));
    if shared.draining.load(Ordering::SeqCst) {
        shed_at_admission(
            writer.as_mut(),
            shared,
            &request.id,
            &trace,
            arrived,
            code::SHUTDOWN,
            "daemon is draining for shutdown",
            Some(1_000),
        );
        return;
    }
    let mut queue = shared.queue.lock().unwrap();
    let depth = queue.len();
    if depth >= shared.config.queue_capacity {
        drop(queue);
        shed_at_admission(
            writer.as_mut(),
            shared,
            &request.id,
            &trace,
            arrived,
            code::SHED,
            &format!("queue full (depth {depth})"),
            Some(retry_hint_ms(depth)),
        );
        return;
    }
    if depth >= shared.config.free_admission_depth && request.time_budget_ms.is_none() {
        drop(queue);
        shed_at_admission(
            writer.as_mut(),
            shared,
            &request.id,
            &trace,
            arrived,
            code::SHED,
            &format!("queue depth {depth} requires time_budget_ms"),
            Some(retry_hint_ms(depth)),
        );
        return;
    }
    // The queued echo goes out before the writer is handed to the job,
    // while this thread still owns it; best-effort (a vanished client
    // costs nothing but the eventual failed result write).
    let _ = send_line(
        writer.as_mut(),
        &render_lifecycle("queued", &request.id, Some(depth as u64), Some(&trace)),
    );
    publish_service(&trace, &request.id, "queued", None, None, None, None);
    let budget = request.time_budget_ms;
    queue.push_back(Job {
        request,
        conn: writer,
        attempts: 0,
        budget_left_ms: budget,
        trace,
        arrived,
        enqueued_at: Instant::now(),
        queue_us: 0,
        compute_us: 0,
        cache_us: 0,
    });
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Retry hint that grows with the depth that caused the shed.
fn retry_hint_ms(depth: usize) -> u64 {
    100 + 50 * depth as u64
}

// ---------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.stop_now.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    // Inflight goes up while the queue lock is held, so
                    // "queue empty && inflight == 0" can never observe a
                    // job in the gap between pop and serve.
                    shared.inflight.fetch_add(1, Ordering::SeqCst);
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    // Draining and the queue is empty: this worker is done.
                    return;
                }
                let (q, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = q;
            }
        };
        if let Some(mut job) = job {
            // Queue-wait accrues per residence: admission, coalescing
            // backoffs and preemption re-enqueues all count.
            job.queue_us += job.enqueued_at.elapsed().as_micros() as u64;
            serve(job, shared);
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Serves one admitted job: cache lookup, slice-bounded mapping,
/// preemption re-enqueue, typed rejections. Never panics the worker —
/// the flow runs under `catch_unwind`.
fn serve(mut job: Job, shared: &Arc<Shared>) {
    let id = job.request.id.clone();
    let trace = job.trace.clone();
    // Announced only once the job actually progresses (cache hit or
    // compute-slot claim): a coalescing re-enqueue must stay silent or
    // the client would count a resume with no matching preemption.
    let first_line = if job.attempts == 0 {
        "started"
    } else {
        "resumed"
    };

    // Resolve the design and objective; failures are client errors.
    let resolve_start = Instant::now();
    let objective = match job.request.to_objective() {
        Ok(o) => o,
        Err(detail) => {
            return finish_error(job, shared, code::INVALID, &detail, None);
        }
    };
    let net = match resolve_network(&job.request.source, shared.config.lut_inputs) {
        Ok(net) => net,
        Err(detail) => {
            job.compute_us += resolve_start.elapsed().as_micros() as u64;
            return finish_error(job, shared, code::INVALID, &detail, None);
        }
    };
    let base_flow = NanoMap::new(ArchParams::paper_unbounded());
    let run_id = base_flow.run_id(&net, objective);
    job.compute_us += resolve_start.elapsed().as_micros() as u64;

    // Cache: identical request (fingerprint + objective + seeds) →
    // byte-identical replay, no mapping run.
    let cache_start = Instant::now();
    let cached = shared.cache.load(&run_id);
    job.cache_us += cache_start.elapsed().as_micros() as u64;
    if let Some(report_text) = cached {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.served.fetch_add(1, Ordering::Relaxed);
        publish_service(&trace, &id, "cache-hit", Some(&run_id), None, None, None);
        let _ = send_line(
            job.conn.as_mut(),
            &render_lifecycle(first_line, &id, None, Some(&trace)),
        );
        let serialize_start = Instant::now();
        let _ = send_line(
            job.conn.as_mut(),
            &render_ok_result(&id, &run_id, "hit", &trace, &report_text),
        );
        let serialize_us = serialize_start.elapsed().as_micros() as u64;
        shared.record_request("ok", &job, serialize_us);
        publish_service(
            &trace,
            &id,
            "completed",
            Some(&run_id),
            Some("ok"),
            Some("cache hit"),
            Some(job.arrived.elapsed().as_micros() as u64),
        );
        return;
    }

    // Thundering-herd guard: a second identical request arriving while
    // the first is still computing waits its turn in the queue and is
    // then served from the cache, byte-identical, instead of burning a
    // worker on a duplicate mapping.
    let _slot = match ComputeSlot::claim(shared, &run_id) {
        Some(slot) => slot,
        None => {
            publish_service(&trace, &id, "coalesced", Some(&run_id), None, None, None);
            // The coalescing backoff counts as queue-wait: the clock
            // starts before the sleep, so the sleep is attributed.
            job.enqueued_at = Instant::now();
            std::thread::sleep(Duration::from_millis(10));
            let mut queue = shared.queue.lock().unwrap();
            queue.push_back(job);
            drop(queue);
            shared.queue_cv.notify_one();
            return;
        }
    };
    publish_service(&trace, &id, first_line, Some(&run_id), None, None, None);
    let _ = send_line(
        job.conn.as_mut(),
        &render_lifecycle(first_line, &id, None, Some(&trace)),
    );

    // Slice sizing: exponential growth per preemption guarantees
    // forward progress even when early slices expire inside one phase.
    let slice_ms = shared
        .config
        .preempt_slice_ms
        .map(|s| s.saturating_mul(1 << job.attempts.min(10)));
    let effective_ms = match (slice_ms, job.budget_left_ms) {
        (Some(s), Some(b)) => Some(s.min(b)),
        (Some(s), None) => Some(s),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    let ckpt_dir = shared.config.state_dir.join("checkpoints").join(&run_id);
    let mut flow = NanoMap::new(ArchParams::paper_unbounded()).with_checkpoint_dir(&ckpt_dir);
    if let Some(ms) = effective_ms {
        flow = flow.with_budget_ms(ms);
    }
    if let Some(map) = &shared.defects {
        flow = flow.with_defects(map.clone());
    }
    if shared.config.exact_recovery {
        flow = flow.with_exact_recovery();
    }
    let ckpt_path = ckpt_dir.join(checkpoint_file_name(net.name()));
    // Resume from a prior slice's snapshot when one loads cleanly; a
    // torn checkpoint (killed daemon) silently falls back to fresh —
    // the next slice rewrites it atomically.
    let resume_from = (job.attempts > 0)
        .then(|| Checkpoint::load(&ckpt_path).ok())
        .flatten();
    let slice_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if failpoint::should_fail("daemon.worker.panic") {
            panic!("failpoint daemon.worker.panic fired");
        }
        match &resume_from {
            Some(ckpt) => match flow.map_resume(&net, objective, ckpt) {
                // A checkpoint the validator refuses (stale run id
                // collision, architecture drift) is discarded, not fatal.
                Err(FlowError::Checkpoint(_)) => flow.map(&net, objective),
                other => other,
            },
            None => flow.map(&net, objective),
        }
    }));
    let elapsed_ms = slice_start.elapsed().as_millis() as u64;
    job.compute_us += slice_start.elapsed().as_micros() as u64;
    match outcome {
        Err(_) => {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            finish_error(
                job,
                shared,
                code::PANIC,
                "worker panicked mapping this request; daemon unaffected",
                None,
            );
        }
        Ok(Ok(report)) => {
            let degraded = report.degraded;
            let record = shared.config.ledger_path.as_ref().map(|_| {
                let mut record = RunRecord::from_report(&report, run_id.clone(), 0);
                record.trace_id = Some(trace.clone());
                record
            });
            let report_text = report.to_json().to_compact_string();
            if !degraded {
                let cache_start = Instant::now();
                shared
                    .cache
                    .store(&run_id, net.name(), &objective.key(), &report_text);
                job.cache_us += cache_start.elapsed().as_micros() as u64;
            }
            if let (Some(ledger), Some(record)) = (&shared.config.ledger_path, record) {
                if let Err(e) = append_run(ledger, &record) {
                    eprintln!("nanomapd: ledger append for {run_id} failed: {e}");
                }
            }
            shared.served.fetch_add(1, Ordering::Relaxed);
            let serialize_start = Instant::now();
            let _ = send_line(
                job.conn.as_mut(),
                &render_ok_result(&id, &run_id, "miss", &trace, &report_text),
            );
            let serialize_us = serialize_start.elapsed().as_micros() as u64;
            shared.record_request("ok", &job, serialize_us);
            publish_service(
                &trace,
                &id,
                "completed",
                Some(&run_id),
                Some("ok"),
                None,
                Some(job.arrived.elapsed().as_micros() as u64),
            );
        }
        Ok(Err(FlowError::BudgetExhausted { .. })) => {
            // Spend the slice against the request budget; preempt while
            // budget remains, reject with the typed budget code once
            // it is gone.
            let budget_left = job
                .budget_left_ms
                .map(|b| b.saturating_sub(elapsed_ms.max(1)));
            if budget_left == Some(0) {
                finish_error(
                    job,
                    shared,
                    code::BUDGET,
                    "time budget exhausted before a complete mapping",
                    None,
                );
                return;
            }
            job.budget_left_ms = budget_left;
            job.attempts += 1;
            shared.preemptions.fetch_add(1, Ordering::Relaxed);
            publish_service(
                &trace,
                &id,
                "preempted",
                Some(&run_id),
                None,
                None,
                Some(elapsed_ms.saturating_mul(1_000)),
            );
            let _ = send_line(
                job.conn.as_mut(),
                &render_lifecycle("preempted", &id, None, Some(&trace)),
            );
            if shared.draining.load(Ordering::SeqCst) || shared.stop_now.load(Ordering::SeqCst) {
                // Shutting down: the checkpoint persists for the next
                // daemon; the client gets a retryable rejection.
                finish_error(
                    job,
                    shared,
                    code::SHUTDOWN,
                    "preempted by shutdown; resume checkpoint persisted",
                    Some(1_000),
                );
                return;
            }
            job.enqueued_at = Instant::now();
            let mut queue = shared.queue.lock().unwrap();
            queue.push_back(job);
            drop(queue);
            shared.queue_cv.notify_one();
        }
        Ok(Err(err)) => {
            let detail = err.to_string();
            finish_error(job, shared, code::FAILED, &detail, None);
        }
    }
}

/// Ownership of "this worker computes run X": claimed before a mapping
/// run, released on every exit path by `Drop` (including panics caught
/// by the worker's `catch_unwind`).
struct ComputeSlot<'a> {
    shared: &'a Shared,
    run_id: String,
}

impl<'a> ComputeSlot<'a> {
    fn claim(shared: &'a Shared, run_id: &str) -> Option<Self> {
        shared
            .computing
            .lock()
            .unwrap()
            .insert(run_id.to_string())
            .then(|| Self {
                shared,
                run_id: run_id.to_string(),
            })
    }
}

impl Drop for ComputeSlot<'_> {
    fn drop(&mut self) {
        self.shared.computing.lock().unwrap().remove(&self.run_id);
    }
}

/// Terminates a job with a typed rejection: counters (shed for the
/// retryable codes, failures for permanent non-panic ones — panics
/// count at the panic site), segment + per-class latency accounting,
/// a `completed` service event, and the wire line.
fn finish_error(
    mut job: Job,
    shared: &Arc<Shared>,
    error_code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
) {
    match error_code {
        code::SHED | code::SHUTDOWN => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
        }
        code::PANIC => {}
        _ => {
            shared.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
    let line = render_error_result(
        &job.request.id,
        error_code,
        detail,
        retry_after_ms,
        Some(&job.trace),
    );
    let serialize_start = Instant::now();
    let _ = send_line(job.conn.as_mut(), &line);
    let serialize_us = serialize_start.elapsed().as_micros() as u64;
    shared.record_request(error_code, &job, serialize_us);
    publish_service(
        &job.trace,
        &job.request.id,
        "completed",
        None,
        Some(error_code),
        Some(detail),
        Some(job.arrived.elapsed().as_micros() as u64),
    );
}

/// Writes one protocol line. The `socket.write` failpoint simulates a
/// client that vanished mid-response.
fn send_line(conn: &mut dyn Write, line: &str) -> std::io::Result<()> {
    failpoint::inject_io("socket.write")?;
    conn.write_all(line.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()
}

/// Parses a design from its wire source into a LUT network.
fn resolve_network(source: &DesignSource, lut_inputs: Option<u32>) -> Result<LutNetwork, String> {
    let options = ExpandOptions {
        lut_inputs: lut_inputs.unwrap_or(ExpandOptions::default().lut_inputs),
        ..ExpandOptions::default()
    };
    match source {
        DesignSource::Path(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            if path.ends_with(".blif") {
                blif::parse(&text).map_err(|e| format!("{path}: {e}"))
            } else if path.ends_with(".vhd") || path.ends_with(".vhdl") {
                let circuit = vhdl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                expand(&circuit, options).map_err(|e| format!("{path}: {e}"))
            } else {
                Err(format!("{path}: unknown extension (use .vhd/.vhdl/.blif)"))
            }
        }
        DesignSource::Text { format, text } => match format.as_str() {
            "blif" => blif::parse(text).map_err(|e| format!("inline blif: {e}")),
            "vhdl" | "vhd" => {
                let circuit = vhdl::parse(text).map_err(|e| format!("inline vhdl: {e}"))?;
                expand(&circuit, options).map_err(|e| format!("inline vhdl: {e}"))
            }
            other => Err(format!("unknown design format {other:?}")),
        },
    }
}

/// Exit codes the `nanomapd` binary documents and tests rely on.
pub mod exit {
    /// Clean shutdown: every admitted request was answered.
    pub const CLEAN: u8 = 0;
    /// Hard startup/runtime error (bind failure, bad flags).
    pub const ERROR: u8 = 1;
    /// Drained under protest: the deadline shed admitted requests.
    pub const DEGRADED: u8 = 4;
}

/// The wire protocol, re-exported so daemon users need only this crate.
pub use nanomap::service as protocol;
