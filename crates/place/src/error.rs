//! Placement errors.

use std::error::Error;
use std::fmt;

/// Errors produced during placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The grid has fewer slots than SMBs to place.
    GridTooSmall {
        /// SMBs to place.
        smbs: u32,
        /// Slots available.
        slots: u32,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GridTooSmall { smbs, slots } => {
                write!(f, "grid too small: {smbs} SMBs but only {slots} slots")
            }
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = PlaceError::GridTooSmall { smbs: 10, slots: 9 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('9'));
    }
}
