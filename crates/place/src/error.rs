//! Placement errors.

use std::error::Error;
use std::fmt;

/// Errors produced during placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The grid has fewer slots than SMBs to place.
    GridTooSmall {
        /// SMBs to place.
        smbs: u32,
        /// Slots available.
        slots: u32,
    },
    /// Too many grid slots are defective to host the design, even after
    /// every grid enlargement the options allow.
    InsufficientUsableSlots {
        /// SMBs to place.
        smbs: u32,
        /// Usable (non-defective, NRAM-sufficient) slots on the largest
        /// grid attempted.
        usable: u32,
        /// Total slots on that grid.
        slots: u32,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GridTooSmall { smbs, slots } => {
                write!(f, "grid too small: {smbs} SMBs but only {slots} slots")
            }
            Self::InsufficientUsableSlots {
                smbs,
                usable,
                slots,
            } => {
                write!(
                    f,
                    "too many defects: {smbs} SMBs but only {usable} of {slots} \
                     slots are usable"
                )
            }
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = PlaceError::GridTooSmall { smbs: 10, slots: 9 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('9'));
    }
}
