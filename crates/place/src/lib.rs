//! Temporal placement for NATURE (Section 4.4, steps 9–14).
//!
//! A two-step simulated-annealing placement in the style of the modified
//! VPR placer the paper describes: a fast low-precision pass, a RISA
//! routability estimate plus pre-route delay analysis, then a detailed
//! pass. Temporal logic folding introduces inter-folding-stage
//! dependencies (Fig. 6(b)): the cost function jointly sums the bounding
//! boxes of every cycle's nets, so SMBs that communicate heavily in *any*
//! cycle are drawn together.
//!
//! * [`place`] — the two-step driver;
//! * [`anneal`] — the VPR-style adaptive annealer;
//! * [`estimate_routability`] — RISA \[17\];
//! * [`estimate_delay`] — distance-based pre-route timing.

#![warn(missing_docs)]

mod adopt;
mod anneal;
mod cost;
mod delay;
mod error;
mod place;
mod routability;

pub use adopt::{adopt_assignment, AdoptError};
pub use anneal::{anneal, anneal_budgeted, anneal_with_legality, AnnealSchedule};
pub use cost::{flatten_nets, net_hpwl, total_cost, CostWeights, FlatNet};
pub use delay::{estimate_delay, wire_delay_estimate, DelayEstimate};
pub use error::PlaceError;
pub use place::{place, place_with_defects, place_with_defects_budgeted, PlaceOptions, Placement};
pub use routability::{
    estimate_demand_grid, estimate_routability, risa_q, DemandGrid, RoutabilityReport,
    ROUTABLE_THRESHOLD,
};
