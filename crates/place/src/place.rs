//! The two-step temporal placement driver (Section 4.4, steps 9–14).
//!
//! 1. A **fast placement** derives an initial solution with a short
//!    annealing schedule.
//! 2. **Routability analysis** (RISA) and **delay estimation** judge it.
//! 3. If the analysis passes, a **detailed placement** refines the
//!    solution; otherwise the driver retries with a larger grid a few
//!    times and reports failure so the flow can fall back to another
//!    folding level.

use nanomap_arch::{ChannelConfig, DefectMap, Grid, SmbPos, TimingModel};
use nanomap_observe::rng::XorShift64Star;
use nanomap_observe::span;
use nanomap_observe::{Anytime, CancelToken, Degradation};
use nanomap_pack::{Packing, SliceNets, TemporalDesign};

use crate::anneal::{anneal_budgeted, AnnealSchedule};
use crate::cost::{flatten_nets, total_cost, CostWeights};
use crate::delay::{estimate_delay, DelayEstimate};
use crate::error::PlaceError;
use crate::routability::{estimate_routability, RoutabilityReport};

/// Placement options.
#[derive(Debug, Clone, Copy)]
pub struct PlaceOptions {
    /// RNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Cost weights (inter-stage term, criticality bonus).
    pub weights: CostWeights,
    /// Fast-step schedule.
    pub fast: AnnealSchedule,
    /// Detailed-step schedule.
    pub detailed: AnnealSchedule,
    /// How many grid enlargements to attempt when routability fails.
    pub max_retries: u32,
    /// Grid slack factor over the minimum SMB count (1.2 = 20 % spare
    /// slots for the placer to breathe).
    pub grid_slack: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            weights: CostWeights::default(),
            fast: AnnealSchedule::fast(),
            detailed: AnnealSchedule::detailed(),
            max_retries: 2,
            grid_slack: 1.2,
        }
    }
}

/// A finished placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The grid the design was placed on.
    pub grid: Grid,
    /// Position of every SMB.
    pub pos_of: Vec<SmbPos>,
    /// Final weighted wirelength.
    pub cost: f64,
    /// Routability verdict of the final placement.
    pub routability: RoutabilityReport,
    /// Delay estimate of the final placement.
    pub delay: DelayEstimate,
}

impl Placement {
    /// Rebuilds a full [`Placement`] from just the grid and positions —
    /// the parts a checkpoint stores. Cost, routability and delay are
    /// pure recomputations, so reconstructing a placement the annealer
    /// produced yields bit-identical analysis results.
    #[allow(clippy::too_many_arguments)]
    pub fn reconstruct(
        design: &TemporalDesign<'_>,
        packing: &Packing,
        nets: &SliceNets,
        channels: &ChannelConfig,
        timing: &TimingModel,
        weights: CostWeights,
        grid: Grid,
        pos_of: Vec<SmbPos>,
    ) -> Self {
        let flat = flatten_nets(nets, weights);
        let cost = total_cost(&flat, &pos_of);
        let routability = estimate_routability(grid, channels, nets, &pos_of);
        let delay = estimate_delay(design, packing, &pos_of, timing);
        Self {
            grid,
            pos_of,
            cost,
            routability,
            delay,
        }
    }
}

/// Places a packed design.
///
/// # Errors
///
/// Returns an error only for impossible inputs (more SMBs than any
/// reasonable grid); an un-routable outcome is reported in
/// [`Placement::routability`] rather than as an error so the flow can
/// decide to refold.
pub fn place(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    channels: &ChannelConfig,
    timing: &TimingModel,
    options: PlaceOptions,
) -> Result<Placement, PlaceError> {
    place_with_defects(
        design,
        packing,
        nets,
        channels,
        timing,
        options,
        &DefectMap::none(),
    )
}

/// Places a packed design on a defective fabric.
///
/// Slots that are dead — or whose NRAM cannot store the
/// `design.num_slices()` configuration sets temporal folding needs — are
/// illegal: the initial placement skips them and annealing moves reject
/// them. With [`DefectMap::none`] this is byte-for-byte identical to
/// [`place`].
///
/// # Errors
///
/// [`PlaceError::InsufficientUsableSlots`] when, even on the largest grid
/// the retry policy allows, fewer usable slots remain than SMBs to place.
pub fn place_with_defects(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    channels: &ChannelConfig,
    timing: &TimingModel,
    options: PlaceOptions,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    place_with_defects_budgeted(
        design,
        packing,
        nets,
        channels,
        timing,
        options,
        defects,
        &CancelToken::unlimited(),
    )
    .map(Anytime::into_value)
}

/// Budget-aware [`place_with_defects`]: the fast and detailed annealing
/// steps poll `token` at temperature-step boundaries, and grid-enlarging
/// retries stop once the budget is gone. On expiry the current placement
/// — always a valid permutation — is analyzed and returned as
/// [`Anytime::Degraded`]. With an unlimited token this is byte-identical
/// to [`place_with_defects`].
///
/// # Errors
///
/// Same as [`place_with_defects`]: impossible inputs stay hard errors
/// regardless of the budget.
#[allow(clippy::too_many_arguments)]
pub fn place_with_defects_budgeted(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    channels: &ChannelConfig,
    timing: &TimingModel,
    options: PlaceOptions,
    defects: &DefectMap,
    token: &CancelToken,
) -> Result<Anytime<Placement>, PlaceError> {
    let n = packing.num_smbs.max(1);
    let required_sets = design.num_slices();
    let flat = flatten_nets(nets, options.weights);
    let mut attempt = 0;
    let mut slack = options.grid_slack;
    loop {
        let slots = ((f64::from(n) * slack).ceil() as u32).max(n);
        let grid = Grid::with_capacity(slots);
        if grid.num_slots() < n {
            return Err(PlaceError::GridTooSmall {
                smbs: n,
                slots: grid.num_slots(),
            });
        }
        // Slot legality under the defect map. The mask is only consulted
        // when defects exist, keeping the defect-free path identical.
        let legal: Option<Vec<bool>> = if defects.is_empty() {
            None
        } else {
            Some(
                (0..grid.num_slots() as usize)
                    .map(|i| defects.slot_usable(grid.pos(i), required_sets))
                    .collect(),
            )
        };
        if let Some(legal) = &legal {
            let usable = legal.iter().filter(|&&ok| ok).count() as u32;
            if usable < n {
                if attempt >= options.max_retries {
                    return Err(PlaceError::InsufficientUsableSlots {
                        smbs: n,
                        usable,
                        slots: grid.num_slots(),
                    });
                }
                nanomap_observe::incr("place.grid_retries", 1);
                attempt += 1;
                slack *= 1.3;
                continue;
            }
        }
        let seed = options.seed.wrapping_add(u64::from(attempt));
        let mut rng = XorShift64Star::new(seed);
        // Initial placement: row-major over usable slots.
        let mut pos_of: Vec<SmbPos> = match &legal {
            None => (0..n as usize).map(|i| grid.pos(i)).collect(),
            Some(legal) => legal
                .iter()
                .enumerate()
                .filter(|&(_, &ok)| ok)
                .map(|(i, _)| grid.pos(i))
                .take(n as usize)
                .collect(),
        };

        // Step 1: fast placement.
        let fast_degradation = {
            let mut fast_span = span!("anneal", step = "fast", seed = seed, attempt = attempt);
            let (_, degradation) = anneal_budgeted(
                grid,
                &flat,
                &mut pos_of,
                options.fast,
                &mut rng,
                legal.as_deref(),
                token,
            );
            if degradation.is_some() {
                fast_span.attr("degraded", 1u64);
            }
            degradation
        };
        // Step 2: low-precision analysis.
        let report = estimate_routability(grid, channels, nets, &pos_of);
        if !report.routable && attempt < options.max_retries && !token.expired() {
            nanomap_observe::incr("place.grid_retries", 1);
        }
        // An expired token also stops grid-enlarging retries: the current
        // placement is the best-so-far we can afford.
        if report.routable || attempt >= options.max_retries || token.expired() {
            // Step 3: detailed placement.
            let mut detailed_span =
                span!("anneal", step = "detailed", seed = seed, attempt = attempt);
            let (cost, detailed_degradation) = anneal_budgeted(
                grid,
                &flat,
                &mut pos_of,
                options.detailed,
                &mut rng,
                legal.as_deref(),
                token,
            );
            if detailed_degradation.is_some() {
                detailed_span.attr("degraded", 1u64);
            }
            drop(detailed_span);
            let routability = estimate_routability(grid, channels, nets, &pos_of);
            let delay = estimate_delay(design, packing, &pos_of, timing);
            let _ = total_cost(&flat, &pos_of);
            let placement = Placement {
                grid,
                pos_of,
                cost,
                routability,
                delay,
            };
            // The earliest interruption names the step; the final cost is
            // always the detailed-step resync value.
            let degradation = match (fast_degradation, detailed_degradation) {
                (Some(d), _) => Some(Degradation {
                    reason: format!("fast annealing: {}", d.reason),
                    qor_estimate: cost,
                    ..d
                }),
                (None, Some(d)) => Some(Degradation {
                    reason: format!("detailed annealing: {}", d.reason),
                    ..d
                }),
                (None, None) => None,
            };
            return Ok(match degradation {
                Some(d) => Anytime::Degraded(placement, d),
                None => Anytime::Complete(placement),
            });
        }
        // Retry with a roomier grid.
        attempt += 1;
        slack *= 1.3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::ArchParams;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_pack::{extract_nets, pack, PackOptions, TemporalDesign};
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    fn placed_multiplier() -> (u32, Placement) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 6);
        let c = b.input("b", 6);
        let mul = b.comb("mul", CombOp::Mul { width: 6 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let r = b.register("r", 12);
        b.connect(mul, 0, r, 0).unwrap();
        let y = b.output("y", 12);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let p = 4;
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, &plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let placement = place(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            PlaceOptions::default(),
        )
        .unwrap();
        (packing.num_smbs, placement)
    }

    #[test]
    fn placement_covers_all_smbs_uniquely() {
        let (num_smbs, placement) = placed_multiplier();
        assert_eq!(placement.pos_of.len(), num_smbs as usize);
        let mut slots: Vec<usize> = placement
            .pos_of
            .iter()
            .map(|&p| placement.grid.index(p))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), num_smbs as usize);
    }

    #[test]
    fn small_design_is_routable() {
        let (_, placement) = placed_multiplier();
        assert!(
            placement.routability.routable,
            "utilization {}",
            placement.routability.peak_utilization
        );
    }

    #[test]
    fn delay_estimate_is_positive_and_bounded() {
        let (_, placement) = placed_multiplier();
        assert!(placement.delay.cycle_period > 0.0);
        assert!(placement.delay.circuit_delay >= placement.delay.cycle_period);
        // The combinational path of a level-4 slice must exceed 4 LUT
        // delays but stay well under a microsecond.
        assert!(placement.delay.max_slice_path < 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = placed_multiplier();
        let (_, b) = placed_multiplier();
        assert_eq!(a.pos_of, b.pos_of);
        assert_eq!(a.cost, b.cost);
    }

    /// Everything `placed_multiplier` builds, for the defect-aware tests.
    fn multiplier_inputs() -> (
        nanomap_netlist::LutNetwork,
        nanomap_netlist::PlaneSet,
        Vec<nanomap_sched::ItemGraph>,
        Vec<nanomap_sched::Schedule>,
    ) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 6);
        let c = b.input("b", 6);
        let mul = b.comb("mul", CombOp::Mul { width: 6 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let r = b.register("r", 12);
        b.connect(mul, 0, r, 0).unwrap();
        let y = b.output("y", 12);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let p = 4;
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, &plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        (net, planes, vec![graph], vec![schedule])
    }

    fn place_with(defects: &nanomap_arch::DefectMap) -> Result<Placement, PlaceError> {
        let (net, planes, graphs, schedules) = multiplier_inputs();
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        place_with_defects(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            PlaceOptions::default(),
            defects,
        )
    }

    #[test]
    fn empty_defect_map_matches_defect_free_placement() {
        let (_, baseline) = placed_multiplier();
        let defective = place_with(&nanomap_arch::DefectMap::none()).unwrap();
        assert_eq!(baseline.pos_of, defective.pos_of);
        assert_eq!(baseline.cost, defective.cost);
    }

    #[test]
    fn placement_avoids_defective_slots() {
        let mut defects = nanomap_arch::DefectMap::none();
        // Kill the first two row-major slots of any plausible grid.
        defects.kill_slot(SmbPos::new(0, 0));
        defects.kill_slot(SmbPos::new(1, 0));
        let placement = place_with(&defects).unwrap();
        for &pos in &placement.pos_of {
            assert!(
                !defects.slot_defective(pos),
                "SMB placed on defective slot {pos:?}"
            );
        }
    }

    #[test]
    fn placement_respects_nram_degradation() {
        let mut defects = nanomap_arch::DefectMap::none();
        // Kill NRAM set 0 of slot (0,0): unusable for any folded design.
        defects.kill_nram_set(SmbPos::new(0, 0), 0);
        let placement = place_with(&defects).unwrap();
        for &pos in &placement.pos_of {
            assert_ne!(pos, SmbPos::new(0, 0), "SMB placed on degraded slot");
        }
    }

    #[test]
    fn zero_budget_placement_is_valid_and_degraded() {
        let (net, planes, graphs, schedules) = multiplier_inputs();
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let token = CancelToken::with_budget_ms(Some(0));
        let result = place_with_defects_budgeted(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            PlaceOptions::default(),
            &nanomap_arch::DefectMap::none(),
            &token,
        )
        .unwrap();
        let Anytime::Degraded(placement, degradation) = result else {
            panic!("zero budget must degrade");
        };
        assert_eq!(degradation.phase, "place");
        // Still a valid permutation with all SMBs placed.
        assert_eq!(placement.pos_of.len(), packing.num_smbs as usize);
        let mut slots: Vec<usize> = placement
            .pos_of
            .iter()
            .map(|&p| placement.grid.index(p))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), packing.num_smbs as usize);
        assert!(placement.delay.cycle_period > 0.0);
    }

    #[test]
    fn reconstruct_matches_fresh_placement() {
        let (net, planes, graphs, schedules) = multiplier_inputs();
        let design = TemporalDesign::new(&net, &planes, graphs, schedules).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let options = PlaceOptions::default();
        let placement = place(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            options,
        )
        .unwrap();
        let rebuilt = Placement::reconstruct(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            options.weights,
            placement.grid,
            placement.pos_of.clone(),
        );
        assert_eq!(rebuilt.pos_of, placement.pos_of);
        assert_eq!(rebuilt.cost, placement.cost);
        assert_eq!(
            rebuilt.routability.peak_utilization,
            placement.routability.peak_utilization
        );
        assert_eq!(rebuilt.delay.circuit_delay, placement.delay.circuit_delay);
    }

    #[test]
    fn hopeless_defect_density_reports_insufficient_slots() {
        // Everything is dead.
        let defects = nanomap_arch::DefectMap::uniform(1.0, 3);
        let err = place_with(&defects).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::InsufficientUsableSlots { usable: 0, .. }
        ));
        assert!(err.to_string().contains("defect"));
    }
}
