//! The two-step temporal placement driver (Section 4.4, steps 9–14).
//!
//! 1. A **fast placement** derives an initial solution with a short
//!    annealing schedule.
//! 2. **Routability analysis** (RISA) and **delay estimation** judge it.
//! 3. If the analysis passes, a **detailed placement** refines the
//!    solution; otherwise the driver retries with a larger grid a few
//!    times and reports failure so the flow can fall back to another
//!    folding level.

use nanomap_arch::{ChannelConfig, Grid, SmbPos, TimingModel};
use nanomap_observe::rng::XorShift64Star;
use nanomap_observe::span;
use nanomap_pack::{Packing, SliceNets, TemporalDesign};

use crate::anneal::{anneal, AnnealSchedule};
use crate::cost::{flatten_nets, total_cost, CostWeights};
use crate::delay::{estimate_delay, DelayEstimate};
use crate::error::PlaceError;
use crate::routability::{estimate_routability, RoutabilityReport};

/// Placement options.
#[derive(Debug, Clone, Copy)]
pub struct PlaceOptions {
    /// RNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Cost weights (inter-stage term, criticality bonus).
    pub weights: CostWeights,
    /// Fast-step schedule.
    pub fast: AnnealSchedule,
    /// Detailed-step schedule.
    pub detailed: AnnealSchedule,
    /// How many grid enlargements to attempt when routability fails.
    pub max_retries: u32,
    /// Grid slack factor over the minimum SMB count (1.2 = 20 % spare
    /// slots for the placer to breathe).
    pub grid_slack: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            weights: CostWeights::default(),
            fast: AnnealSchedule::fast(),
            detailed: AnnealSchedule::detailed(),
            max_retries: 2,
            grid_slack: 1.2,
        }
    }
}

/// A finished placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The grid the design was placed on.
    pub grid: Grid,
    /// Position of every SMB.
    pub pos_of: Vec<SmbPos>,
    /// Final weighted wirelength.
    pub cost: f64,
    /// Routability verdict of the final placement.
    pub routability: RoutabilityReport,
    /// Delay estimate of the final placement.
    pub delay: DelayEstimate,
}

/// Places a packed design.
///
/// # Errors
///
/// Returns an error only for impossible inputs (more SMBs than any
/// reasonable grid); an un-routable outcome is reported in
/// [`Placement::routability`] rather than as an error so the flow can
/// decide to refold.
pub fn place(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    channels: &ChannelConfig,
    timing: &TimingModel,
    options: PlaceOptions,
) -> Result<Placement, PlaceError> {
    let n = packing.num_smbs.max(1);
    let flat = flatten_nets(nets, options.weights);
    let mut attempt = 0;
    let mut slack = options.grid_slack;
    loop {
        let slots = ((f64::from(n) * slack).ceil() as u32).max(n);
        let grid = Grid::with_capacity(slots);
        if grid.num_slots() < n {
            return Err(PlaceError::GridTooSmall {
                smbs: n,
                slots: grid.num_slots(),
            });
        }
        let seed = options.seed.wrapping_add(u64::from(attempt));
        let mut rng = XorShift64Star::new(seed);
        // Initial placement: row-major.
        let mut pos_of: Vec<SmbPos> = (0..n as usize).map(|i| grid.pos(i)).collect();

        // Step 1: fast placement.
        {
            let _span = span!("anneal", step = "fast", seed = seed, attempt = attempt);
            anneal(grid, &flat, &mut pos_of, options.fast, &mut rng);
        }
        // Step 2: low-precision analysis.
        let report = estimate_routability(grid, channels, nets, &pos_of);
        if !report.routable && attempt < options.max_retries {
            nanomap_observe::incr("place.grid_retries", 1);
        }
        if report.routable || attempt >= options.max_retries {
            // Step 3: detailed placement.
            let _span = span!("anneal", step = "detailed", seed = seed, attempt = attempt);
            let cost = anneal(grid, &flat, &mut pos_of, options.detailed, &mut rng);
            let routability = estimate_routability(grid, channels, nets, &pos_of);
            let delay = estimate_delay(design, packing, &pos_of, timing);
            let _ = total_cost(&flat, &pos_of);
            return Ok(Placement {
                grid,
                pos_of,
                cost,
                routability,
                delay,
            });
        }
        // Retry with a roomier grid.
        attempt += 1;
        slack *= 1.3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_arch::ArchParams;
    use nanomap_netlist::rtl::{CombOp, RtlBuilder};
    use nanomap_netlist::PlaneSet;
    use nanomap_pack::{extract_nets, pack, PackOptions, TemporalDesign};
    use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};
    use nanomap_techmap::{expand, ExpandOptions};

    fn placed_multiplier() -> (u32, Placement) {
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 6);
        let c = b.input("b", 6);
        let mul = b.comb("mul", CombOp::Mul { width: 6 });
        b.connect(a, 0, mul, 0).unwrap();
        b.connect(c, 0, mul, 1).unwrap();
        let r = b.register("r", 12);
        b.connect(mul, 0, r, 0).unwrap();
        let y = b.output("y", 12);
        b.connect(r, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = PlaneSet::extract(&net).unwrap();
        let plane0 = planes.planes()[0].clone();
        let p = 4;
        let stages = plane0.depth.div_ceil(p);
        let graph = ItemGraph::build(&net, &plane0, p).unwrap();
        let schedule = schedule_fds(&net, &graph, stages, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let placement = place(
            &design,
            &packing,
            &nets,
            &ChannelConfig::nature(),
            &TimingModel::nature_100nm(),
            PlaceOptions::default(),
        )
        .unwrap();
        (packing.num_smbs, placement)
    }

    #[test]
    fn placement_covers_all_smbs_uniquely() {
        let (num_smbs, placement) = placed_multiplier();
        assert_eq!(placement.pos_of.len(), num_smbs as usize);
        let mut slots: Vec<usize> = placement
            .pos_of
            .iter()
            .map(|&p| placement.grid.index(p))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), num_smbs as usize);
    }

    #[test]
    fn small_design_is_routable() {
        let (_, placement) = placed_multiplier();
        assert!(
            placement.routability.routable,
            "utilization {}",
            placement.routability.peak_utilization
        );
    }

    #[test]
    fn delay_estimate_is_positive_and_bounded() {
        let (_, placement) = placed_multiplier();
        assert!(placement.delay.cycle_period > 0.0);
        assert!(placement.delay.circuit_delay >= placement.delay.cycle_period);
        // The combinational path of a level-4 slice must exceed 4 LUT
        // delays but stay well under a microsecond.
        assert!(placement.delay.max_slice_path < 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = placed_multiplier();
        let (_, b) = placed_multiplier();
        assert_eq!(a.pos_of, b.pos_of);
        assert_eq!(a.cost, b.cost);
    }
}
