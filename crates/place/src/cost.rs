//! Placement cost model.
//!
//! The base cost is the half-perimeter wirelength (HPWL) of every
//! inter-SMB net, summed over **all** folding cycles — this is the joint
//! form of the paper's inter-folding-stage term: the Manhattan distance
//! between SMBs communicating in other cycles is added to the cost of the
//! current cycle (Section 4.4, Fig. 6(b)). Critical nets get a weight
//! bonus (timing-driven placement).

use nanomap_arch::SmbPos;
use nanomap_pack::{Slice, SliceNets};

/// Weights of the placement cost terms.
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Multiplier on nets outside the first folding cycle (1.0 = the
    /// paper's joint optimization; 0.0 = place for cycle 0 only, the
    /// ablation baseline).
    pub inter_stage: f64,
    /// Extra weight on timing-critical nets.
    pub critical_bonus: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            inter_stage: 1.0,
            critical_bonus: 0.5,
        }
    }
}

/// A flattened net for fast cost evaluation.
#[derive(Debug, Clone)]
pub struct FlatNet {
    /// Driver + sink SMB indices.
    pub pins: Vec<u32>,
    /// Effective weight (slice weighting × criticality bonus).
    pub weight: f64,
}

/// Flattens per-slice nets into weighted nets.
pub fn flatten_nets(nets: &SliceNets, weights: CostWeights) -> Vec<FlatNet> {
    let mut out = Vec::new();
    for (&slice, slice_nets) in &nets.nets {
        let slice_w = if is_first_slice(slice) {
            1.0
        } else {
            weights.inter_stage
        };
        if slice_w == 0.0 {
            continue;
        }
        for n in slice_nets {
            let mut pins = Vec::with_capacity(1 + n.sinks.len());
            pins.push(n.driver);
            pins.extend(n.sinks.iter().copied());
            let w = slice_w
                * if n.critical {
                    1.0 + weights.critical_bonus
                } else {
                    1.0
                };
            out.push(FlatNet { pins, weight: w });
        }
    }
    out
}

fn is_first_slice(slice: Slice) -> bool {
    slice.plane == 0 && slice.stage == 0
}

/// Half-perimeter wirelength of one net under a placement.
pub fn net_hpwl(net: &FlatNet, pos_of: &[SmbPos]) -> f64 {
    let mut min_x = u16::MAX;
    let mut max_x = 0;
    let mut min_y = u16::MAX;
    let mut max_y = 0;
    for &p in &net.pins {
        let pos = pos_of[p as usize];
        min_x = min_x.min(pos.x);
        max_x = max_x.max(pos.x);
        min_y = min_y.min(pos.y);
        max_y = max_y.max(pos.y);
    }
    f64::from(max_x - min_x) + f64::from(max_y - min_y)
}

/// Total weighted wirelength of all nets.
pub fn total_cost(nets: &[FlatNet], pos_of: &[SmbPos]) -> f64 {
    nets.iter().map(|n| n.weight * net_hpwl(n, pos_of)).sum()
}

/// Index from SMB to the nets touching it (for incremental updates).
pub fn nets_of_smb(nets: &[FlatNet], num_smbs: u32) -> Vec<Vec<usize>> {
    let mut idx = vec![Vec::new(); num_smbs as usize];
    for (i, n) in nets.iter().enumerate() {
        for &p in &n.pins {
            if !idx[p as usize].contains(&i) {
                idx[p as usize].push(i);
            }
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_is_bounding_box() {
        let net = FlatNet {
            pins: vec![0, 1, 2],
            weight: 1.0,
        };
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(3, 1), SmbPos::new(1, 4)];
        assert_eq!(net_hpwl(&net, &pos), 3.0 + 4.0);
    }

    #[test]
    fn weights_scale_cost() {
        let a = FlatNet {
            pins: vec![0, 1],
            weight: 1.0,
        };
        let b = FlatNet {
            pins: vec![0, 1],
            weight: 2.0,
        };
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(2, 0)];
        assert_eq!(total_cost(&[a], &pos), 2.0);
        assert_eq!(total_cost(&[b], &pos), 4.0);
    }

    #[test]
    fn smb_net_index_covers_all_pins() {
        let nets = vec![
            FlatNet {
                pins: vec![0, 1],
                weight: 1.0,
            },
            FlatNet {
                pins: vec![1, 2],
                weight: 1.0,
            },
        ];
        let idx = nets_of_smb(&nets, 3);
        assert_eq!(idx[0], vec![0]);
        assert_eq!(idx[1], vec![0, 1]);
        assert_eq!(idx[2], vec![1]);
    }
}
