//! Simulated-annealing engine (VPR-style adaptive schedule).

use nanomap_arch::{Grid, SmbPos};
use nanomap_observe::rng::XorShift64Star;
use nanomap_observe::{CancelToken, Degradation};

use crate::cost::{net_hpwl, nets_of_smb, total_cost, FlatNet};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealSchedule {
    /// Moves per temperature = `inner_num * n^(4/3)`.
    pub inner_num: f64,
    /// Stop when the temperature drops below `t_min_factor * cost / nets`.
    pub t_min_factor: f64,
}

impl AnnealSchedule {
    /// The fast low-precision schedule of the two-step placement.
    pub fn fast() -> Self {
        Self {
            inner_num: 0.5,
            t_min_factor: 0.01,
        }
    }

    /// The detailed high-precision schedule.
    pub fn detailed() -> Self {
        Self {
            inner_num: 5.0,
            t_min_factor: 0.001,
        }
    }
}

/// Runs simulated annealing over SMB positions on a perfect fabric.
///
/// `pos_of` holds one grid position per SMB; unoccupied grid slots are
/// free move targets. Returns the final cost.
pub fn anneal(
    grid: Grid,
    nets: &[FlatNet],
    pos_of: &mut [SmbPos],
    schedule: AnnealSchedule,
    rng: &mut XorShift64Star,
) -> f64 {
    anneal_with_legality(grid, nets, pos_of, schedule, rng, None)
}

/// Runs simulated annealing with an optional slot legality mask.
///
/// `legal`, when present, marks which grid slots (row-major index) may
/// host an SMB: moves targeting an illegal slot are rejected outright.
/// Passing `None` is byte-for-byte identical to [`anneal`] — no extra RNG
/// draws, same trajectory.
///
/// # Panics
///
/// Panics if a `legal` mask is shorter than the grid's slot count.
pub fn anneal_with_legality(
    grid: Grid,
    nets: &[FlatNet],
    pos_of: &mut [SmbPos],
    schedule: AnnealSchedule,
    rng: &mut XorShift64Star,
    legal: Option<&[bool]>,
) -> f64 {
    anneal_budgeted(
        grid,
        nets,
        pos_of,
        schedule,
        rng,
        legal,
        &CancelToken::unlimited(),
    )
    .0
}

/// Budget-aware [`anneal_with_legality`]: polls `token` at the top of
/// every temperature step. On expiry the current placement (a valid
/// permutation — moves are atomic swaps) is kept and a [`Degradation`]
/// records the interruption, with the current cost as the QoR estimate.
/// With an unlimited token this is byte-identical to
/// [`anneal_with_legality`] — no extra RNG draws, same trajectory.
///
/// # Panics
///
/// Panics if a `legal` mask is shorter than the grid's slot count.
#[allow(clippy::too_many_arguments)]
pub fn anneal_budgeted(
    grid: Grid,
    nets: &[FlatNet],
    pos_of: &mut [SmbPos],
    schedule: AnnealSchedule,
    rng: &mut XorShift64Star,
    legal: Option<&[bool]>,
    token: &CancelToken,
) -> (f64, Option<Degradation>) {
    let n = pos_of.len();
    let cost_series = nanomap_observe::series("place.cost");
    if n <= 1 || nets.is_empty() {
        // Nothing to move: the cost trajectory is a single point.
        let cost = total_cost(nets, pos_of);
        cost_series.record(0, cost);
        return (cost, None);
    }
    let net_index = nets_of_smb(nets, n as u32);
    // Occupancy map: grid slot -> SMB.
    let mut occupant: Vec<Option<usize>> = vec![None; grid.num_slots() as usize];
    for (smb, &pos) in pos_of.iter().enumerate() {
        occupant[grid.index(pos)] = Some(smb);
    }
    let mut cost = total_cost(nets, pos_of);

    // Initial temperature: 20 × stddev of random-move deltas (VPR).
    let mut deltas = Vec::new();
    for _ in 0..(n * 4).max(32) {
        let (a, slot_b) = random_move(n, grid, rng);
        let delta = move_delta(a, slot_b, grid, nets, &net_index, pos_of, &occupant);
        deltas.push(delta);
        // Trial moves are always applied then reverted implicitly by
        // recomputation — here we just sample without applying.
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
    let mut temperature = 20.0 * var.sqrt().max(1e-6);
    let t_initial = temperature;

    let moves_per_t = (schedule.inner_num * (n as f64).powf(4.0 / 3.0)).ceil() as usize;
    let moves_per_t = moves_per_t.max(8);
    let t_min = schedule.t_min_factor * (cost / nets.len() as f64).max(1e-9);

    // Range limiting (VPR): start with whole-chip moves, shrink with
    // acceptance rate.
    let mut range = u32::from(grid.width.max(grid.height));

    let proposed_ctr = nanomap_observe::counter("place.moves_proposed");
    let accepted_ctr = nanomap_observe::counter("place.moves_accepted");
    let steps_ctr = nanomap_observe::counter("place.temp_steps");
    let delta_hist = nanomap_observe::histogram("place.cost_delta_milli");
    let temp_series = nanomap_observe::series("place.temperature");
    let rate_series = nanomap_observe::series("place.accept_rate");

    let mut step = 0u64;
    let mut degradation = None;
    while temperature > t_min {
        // Poll at the temperature-step boundary only: the placement is a
        // valid permutation here (moves are atomic swaps), and an
        // unlimited token reads no clock.
        if token.expired() {
            degradation = Some(Degradation {
                phase: "place".into(),
                reason: format!(
                    "time budget expired at temperature {temperature:.4} (t_min {t_min:.4})"
                ),
                completed_iterations: step,
                qor_estimate: cost,
            });
            break;
        }
        let mut accepted = 0usize;
        for _ in 0..moves_per_t {
            let (a, slot_b) = random_move_ranged(n, grid, pos_of, range, rng);
            if let Some(legal) = legal {
                if !legal[slot_b] {
                    continue;
                }
            }
            let delta = move_delta(a, slot_b, grid, nets, &net_index, pos_of, &occupant);
            let accept = delta <= 0.0 || rng.next_f64() < (-delta / temperature).exp();
            if accept {
                apply_move(a, slot_b, grid, pos_of, &mut occupant);
                accepted += 1;
                cost += delta;
                delta_hist.record_scaled(delta, 1000.0);
            }
        }
        proposed_ctr.add(moves_per_t as u64);
        accepted_ctr.add(accepted as u64);
        steps_ctr.incr();
        let rate = accepted as f64 / moves_per_t as f64;
        // Convergence trajectory: one sample per temperature step.
        cost_series.record(step, cost);
        temp_series.record(step, temperature);
        rate_series.record(step, rate);
        if nanomap_observe::events_enabled() {
            // The cooling schedule is geometric, so log-temperature is
            // the natural progress axis: 1 at t_min, 0 at the start.
            let fraction = if t_initial > t_min && temperature > t_min {
                1.0 - (temperature / t_min).ln() / (t_initial / t_min).ln()
            } else {
                1.0
            };
            nanomap_observe::events::progress("place", step + 1, None, Some(fraction), cost);
        }
        step += 1;
        // VPR temperature update.
        temperature *= if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        // Shrink the move range toward local refinement.
        if rate < 0.44 && range > 1 {
            range -= 1;
        } else if rate > 0.44 {
            range = (range + 1).min(u32::from(grid.width.max(grid.height)));
        }
    }
    // Re-synchronize the cost (guards against fp drift).
    let final_cost = total_cost(nets, pos_of);
    if let Some(d) = &mut degradation {
        d.qor_estimate = final_cost;
    }
    (final_cost, degradation)
}

fn random_move(n: usize, grid: Grid, rng: &mut XorShift64Star) -> (usize, usize) {
    let a = rng.index(n);
    let slot_b = rng.index(grid.num_slots() as usize);
    (a, slot_b)
}

fn random_move_ranged(
    n: usize,
    grid: Grid,
    pos_of: &[SmbPos],
    range: u32,
    rng: &mut XorShift64Star,
) -> (usize, usize) {
    let a = rng.index(n);
    let pos = pos_of[a];
    let r = i64::from(range);
    let dx = rng.range_i64(-r, r) as i32;
    let dy = rng.range_i64(-r, r) as i32;
    let x = (i32::from(pos.x) + dx).clamp(0, i32::from(grid.width) - 1) as u16;
    let y = (i32::from(pos.y) + dy).clamp(0, i32::from(grid.height) - 1) as u16;
    (a, grid.index(SmbPos::new(x, y)))
}

/// Cost change of moving SMB `a` to grid slot `slot_b` (swapping with any
/// occupant).
fn move_delta(
    a: usize,
    slot_b: usize,
    grid: Grid,
    nets: &[FlatNet],
    net_index: &[Vec<usize>],
    pos_of: &mut [SmbPos],
    occupant: &[Option<usize>],
) -> f64 {
    let pos_a = pos_of[a];
    let pos_b = grid.pos(slot_b);
    if pos_a == pos_b {
        return 0.0;
    }
    let b = occupant[slot_b];
    // Affected nets: those touching a (and b if swap). Nets touching both
    // must be counted once, so skip b's nets that also touch a.
    let before_after = |pos_of: &[SmbPos]| -> f64 {
        let mut total = 0.0;
        for &i in &net_index[a] {
            total += nets[i].weight * net_hpwl(&nets[i], pos_of);
        }
        if let Some(b) = b {
            for &i in &net_index[b] {
                if !net_index[a].contains(&i) {
                    total += nets[i].weight * net_hpwl(&nets[i], pos_of);
                }
            }
        }
        total
    };
    let before = before_after(pos_of);
    // Tentatively apply in place, evaluate, then revert — the annealer's
    // hot loop must not allocate.
    pos_of[a] = pos_b;
    if let Some(b) = b {
        pos_of[b] = pos_a;
    }
    let after = before_after(pos_of);
    pos_of[a] = pos_a;
    if let Some(b) = b {
        pos_of[b] = pos_b;
    }
    after - before
}

fn apply_move(
    a: usize,
    slot_b: usize,
    grid: Grid,
    pos_of: &mut [SmbPos],
    occupant: &mut [Option<usize>],
) {
    let pos_a = pos_of[a];
    let slot_a = grid.index(pos_a);
    let pos_b = grid.pos(slot_b);
    let b = occupant[slot_b];
    pos_of[a] = pos_b;
    occupant[slot_b] = Some(a);
    occupant[slot_a] = b;
    if let Some(b) = b {
        pos_of[b] = pos_a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain of SMBs placed adversarially must improve markedly.
    #[test]
    fn annealing_improves_chain_placement() {
        let grid = Grid::new(4, 4);
        // Chain nets 0-1, 1-2, ..., 14-15.
        let nets: Vec<FlatNet> = (0..15)
            .map(|i| FlatNet {
                pins: vec![i, i + 1],
                weight: 1.0,
            })
            .collect();
        // Adversarial initial placement: reversed interleave.
        let mut pos: Vec<SmbPos> = (0..16)
            .map(|i| {
                let j = (i * 7) % 16; // scramble
                grid.pos(j)
            })
            .collect();
        // Ensure it is a permutation.
        let mut slots: Vec<usize> = pos.iter().map(|&p| grid.index(p)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 16);

        let initial = total_cost(&nets, &pos);
        let mut rng = XorShift64Star::new(1);
        let final_cost = anneal(grid, &nets, &mut pos, AnnealSchedule::detailed(), &mut rng);
        assert!(final_cost < initial, "{final_cost} !< {initial}");
        // Optimal chain cost is 15; accept anything close.
        assert!(final_cost <= initial * 0.8);
    }

    #[test]
    fn placement_remains_a_permutation() {
        let grid = Grid::new(3, 3);
        let nets = vec![FlatNet {
            pins: vec![0, 4],
            weight: 1.0,
        }];
        let mut pos: Vec<SmbPos> = (0..5).map(|i| grid.pos(i)).collect();
        let mut rng = XorShift64Star::new(7);
        anneal(grid, &nets, &mut pos, AnnealSchedule::fast(), &mut rng);
        let mut slots: Vec<usize> = pos.iter().map(|&p| grid.index(p)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 5, "two SMBs share a slot");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let grid = Grid::new(3, 3);
        let nets: Vec<FlatNet> = (0..5)
            .map(|i| FlatNet {
                pins: vec![i, (i + 1) % 6],
                weight: 1.0,
            })
            .collect();
        let run = || {
            let mut pos: Vec<SmbPos> = (0..6).map(|i| grid.pos(i)).collect();
            let mut rng = XorShift64Star::new(99);
            anneal(grid, &nets, &mut pos, AnnealSchedule::fast(), &mut rng);
            pos
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn legality_mask_confines_moves() {
        let grid = Grid::new(4, 4);
        // Only the left two columns are legal.
        let legal: Vec<bool> = (0..16).map(|i| i % 4 < 2).collect();
        let nets: Vec<FlatNet> = (0..7)
            .map(|i| FlatNet {
                pins: vec![i, i + 1],
                weight: 1.0,
            })
            .collect();
        let mut pos: Vec<SmbPos> = (0..16)
            .enumerate()
            .filter(|&(i, _)| legal[i])
            .map(|(i, _)| grid.pos(i))
            .collect();
        let mut rng = XorShift64Star::new(5);
        anneal_with_legality(
            grid,
            &nets,
            &mut pos,
            AnnealSchedule::detailed(),
            &mut rng,
            Some(&legal),
        );
        for &p in &pos {
            assert!(legal[grid.index(p)], "SMB escaped to illegal slot {p:?}");
        }
    }

    #[test]
    fn no_mask_is_identical_to_plain_anneal() {
        let grid = Grid::new(3, 3);
        let nets: Vec<FlatNet> = (0..5)
            .map(|i| FlatNet {
                pins: vec![i, (i + 1) % 6],
                weight: 1.0,
            })
            .collect();
        let run = |masked: bool| {
            let mut pos: Vec<SmbPos> = (0..6).map(|i| grid.pos(i)).collect();
            let mut rng = XorShift64Star::new(42);
            let cost = if masked {
                anneal_with_legality(
                    grid,
                    &nets,
                    &mut pos,
                    AnnealSchedule::fast(),
                    &mut rng,
                    None,
                )
            } else {
                anneal(grid, &nets, &mut pos, AnnealSchedule::fast(), &mut rng)
            };
            (pos, cost)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn zero_budget_keeps_initial_placement() {
        let grid = Grid::new(4, 4);
        let nets: Vec<FlatNet> = (0..15)
            .map(|i| FlatNet {
                pins: vec![i, i + 1],
                weight: 1.0,
            })
            .collect();
        let mut pos: Vec<SmbPos> = (0..16).map(|i| grid.pos((i * 7) % 16)).collect();
        let before = pos.clone();
        let initial = total_cost(&nets, &pos);
        let mut rng = XorShift64Star::new(1);
        let token = CancelToken::with_budget_ms(Some(0));
        let (cost, degradation) = anneal_budgeted(
            grid,
            &nets,
            &mut pos,
            AnnealSchedule::detailed(),
            &mut rng,
            None,
            &token,
        );
        // The poll fires before the first temperature step, so the
        // placement is untouched and still a permutation.
        assert_eq!(pos, before);
        assert_eq!(cost, initial);
        let d = degradation.expect("zero budget must degrade");
        assert_eq!(d.phase, "place");
        assert_eq!(d.completed_iterations, 0);
        assert_eq!(d.qor_estimate, initial);
    }

    #[test]
    fn unlimited_token_identical_to_plain_anneal() {
        let grid = Grid::new(3, 3);
        let nets: Vec<FlatNet> = (0..5)
            .map(|i| FlatNet {
                pins: vec![i, (i + 1) % 6],
                weight: 1.0,
            })
            .collect();
        let run = |budgeted: bool| {
            let mut pos: Vec<SmbPos> = (0..6).map(|i| grid.pos(i)).collect();
            let mut rng = XorShift64Star::new(42);
            let cost = if budgeted {
                let (cost, degradation) = anneal_budgeted(
                    grid,
                    &nets,
                    &mut pos,
                    AnnealSchedule::fast(),
                    &mut rng,
                    None,
                    &CancelToken::unlimited(),
                );
                assert!(degradation.is_none());
                cost
            } else {
                anneal(grid, &nets, &mut pos, AnnealSchedule::fast(), &mut rng)
            };
            (pos, cost)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn empty_nets_are_noop() {
        let grid = Grid::new(2, 2);
        let mut pos = vec![SmbPos::new(0, 0), SmbPos::new(1, 0)];
        let before = pos.clone();
        let mut rng = XorShift64Star::new(0);
        let cost = anneal(grid, &[], &mut pos, AnnealSchedule::fast(), &mut rng);
        assert_eq!(cost, 0.0);
        assert_eq!(pos, before);
    }
}
