//! RISA-style routability estimation (Cheng, ICCAD'94 — reference \[17\]).
//!
//! For every net, the expected wiring demand is `q(pins) × HPWL`, where
//! `q` grows with pin count (RISA's empirically fitted multipliers). The
//! demand is smeared uniformly over the net's bounding box and compared
//! against the per-cell channel supply. Each folding cycle routes
//! independently, so the estimate is per-slice and the report keeps the
//! worst slice.

use std::collections::BTreeMap;

use nanomap_arch::{ChannelConfig, Grid, SmbPos};
use nanomap_pack::{Slice, SliceNet, SliceNets};

/// RISA pin-count multipliers (interpolated beyond the published table).
pub fn risa_q(pins: usize) -> f64 {
    const TABLE: [f64; 10] = [
        1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
    ];
    if pins < TABLE.len() {
        TABLE[pins.max(1) - 1]
    } else {
        // RISA's large-net extrapolation.
        1.3991 + 0.02616 * (pins as f64 - 10.0)
    }
}

/// Routability verdict for a placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutabilityReport {
    /// Peak per-cell channel utilization over all slices (1.0 = at
    /// capacity).
    pub peak_utilization: f64,
    /// Average utilization over occupied cells.
    pub avg_utilization: f64,
    /// `true` when the peak stays under the safety threshold.
    pub routable: bool,
}

/// The utilization threshold above which detailed routing is predicted to
/// fail (kept conservative; negotiated congestion can often still close).
pub const ROUTABLE_THRESHOLD: f64 = 1.0;

/// Per-cell estimated wiring demand, keyed by folding cycle — the data
/// behind [`estimate_routability`]'s scalar verdict, exposed so the
/// explain layer can render it as a heatmap.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandGrid {
    /// Grid width in SMBs.
    pub width: u16,
    /// Grid height in SMBs.
    pub height: u16,
    /// Per-cell track supply the demand is measured against.
    pub supply: f64,
    /// Row-major per-cell demand (tracks) for each slice.
    pub per_slice: BTreeMap<Slice, Vec<f64>>,
}

impl DemandGrid {
    /// Per-cell worst-slice utilization (demand / supply), row-major —
    /// the "estimated congestion" heatmap.
    pub fn worst_cells(&self) -> Vec<f64> {
        let cells = usize::from(self.width) * usize::from(self.height);
        let mut out = vec![0.0f64; cells];
        for demand in self.per_slice.values() {
            for (slot, &d) in out.iter_mut().zip(demand) {
                *slot = slot.max(d / self.supply);
            }
        }
        out
    }
}

/// Computes the per-cell, per-slice wiring-demand grid of a placement.
pub fn estimate_demand_grid(
    grid: Grid,
    channels: &ChannelConfig,
    nets: &SliceNets,
    pos_of: &[SmbPos],
) -> DemandGrid {
    // Per-cell track supply: both orientations of segment wiring pass a
    // cell. Direct links add dedicated neighbour capacity.
    let supply =
        f64::from(2 * (channels.length1 + channels.length4 + channels.global) + channels.direct);
    let cells = grid.num_slots() as usize;
    let mut per_slice = BTreeMap::new();
    for (&slice, slice_nets) in &nets.nets {
        let mut demand = vec![0.0f64; cells];
        for net in slice_nets {
            spread_demand(grid, net, pos_of, &mut demand);
        }
        per_slice.insert(slice, demand);
    }
    DemandGrid {
        width: grid.width,
        height: grid.height,
        supply,
        per_slice,
    }
}

/// Estimates routability of a placement.
pub fn estimate_routability(
    grid: Grid,
    channels: &ChannelConfig,
    nets: &SliceNets,
    pos_of: &[SmbPos],
) -> RoutabilityReport {
    let demand = estimate_demand_grid(grid, channels, nets, pos_of);
    let mut peak = 0.0f64;
    let mut avg_acc = 0.0;
    let mut avg_cnt = 0usize;
    for cells in demand.per_slice.values() {
        for &d in cells {
            let util = d / demand.supply;
            peak = peak.max(util);
            if d > 0.0 {
                avg_acc += util;
                avg_cnt += 1;
            }
        }
    }
    RoutabilityReport {
        peak_utilization: peak,
        avg_utilization: if avg_cnt == 0 {
            0.0
        } else {
            avg_acc / avg_cnt as f64
        },
        routable: peak <= ROUTABLE_THRESHOLD,
    }
}

fn spread_demand(grid: Grid, net: &SliceNet, pos_of: &[SmbPos], demand: &mut [f64]) {
    let mut min_x = u16::MAX;
    let mut max_x = 0;
    let mut min_y = u16::MAX;
    let mut max_y = 0;
    let pins = 1 + net.sinks.len();
    for &p in std::iter::once(&net.driver).chain(&net.sinks) {
        let pos = pos_of[p as usize];
        min_x = min_x.min(pos.x);
        max_x = max_x.max(pos.x);
        min_y = min_y.min(pos.y);
        max_y = max_y.max(pos.y);
    }
    let hpwl = f64::from(max_x - min_x) + f64::from(max_y - min_y);
    if hpwl == 0.0 {
        return; // intra-SMB
    }
    let wiring = risa_q(pins) * hpwl;
    let area = f64::from(max_x - min_x + 1) * f64::from(max_y - min_y + 1);
    let per_cell = wiring / area;
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            demand[grid.index(SmbPos::new(x, y))] += per_cell;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanomap_pack::Slice;
    use std::collections::BTreeMap;

    fn one_slice(nets: Vec<SliceNet>) -> SliceNets {
        let mut map = BTreeMap::new();
        map.insert(Slice { plane: 0, stage: 0 }, nets);
        SliceNets { nets: map }
    }

    #[test]
    fn q_grows_with_pins() {
        assert_eq!(risa_q(2), 1.0);
        assert!(risa_q(5) > 1.0);
        assert!(risa_q(20) > risa_q(10));
    }

    #[test]
    fn empty_design_is_routable() {
        let grid = Grid::new(2, 2);
        let report = estimate_routability(grid, &ChannelConfig::nature(), &one_slice(vec![]), &[]);
        assert!(report.routable);
        assert_eq!(report.peak_utilization, 0.0);
    }

    #[test]
    fn demand_scales_with_congestion() {
        let grid = Grid::new(2, 1);
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(1, 0)];
        let few = one_slice(vec![SliceNet {
            driver: 0,
            sinks: vec![1],
            critical: false,
        }]);
        let many = one_slice(
            (0..200)
                .map(|_| SliceNet {
                    driver: 0,
                    sinks: vec![1],
                    critical: false,
                })
                .collect(),
        );
        let channels = ChannelConfig::nature();
        let light = estimate_routability(grid, &channels, &few, &pos);
        let heavy = estimate_routability(grid, &channels, &many, &pos);
        assert!(light.routable);
        assert!(!heavy.routable);
        assert!(heavy.peak_utilization > light.peak_utilization);
    }

    #[test]
    fn slices_are_independent() {
        // The same nets split across two slices halve the per-slice demand.
        let grid = Grid::new(2, 1);
        let pos = vec![SmbPos::new(0, 0), SmbPos::new(1, 0)];
        let channels = ChannelConfig::nature();
        let net = SliceNet {
            driver: 0,
            sinks: vec![1],
            critical: false,
        };
        let combined = one_slice(vec![net.clone(), net.clone()]);
        let mut split_map = BTreeMap::new();
        split_map.insert(Slice { plane: 0, stage: 0 }, vec![net.clone()]);
        split_map.insert(Slice { plane: 0, stage: 1 }, vec![net]);
        let split = SliceNets { nets: split_map };
        let c = estimate_routability(grid, &channels, &combined, &pos);
        let s = estimate_routability(grid, &channels, &split, &pos);
        assert!(s.peak_utilization < c.peak_utilization);
    }
}
