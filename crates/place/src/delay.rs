//! Pre-route delay estimation.
//!
//! Estimates each folding cycle's critical path from the placement: LUT
//! delays plus distance-based interconnect estimates, where a hop of
//! Manhattan distance `d` picks the cheapest feasible mix of direct,
//! length-1, length-4 and global wiring.

use std::collections::HashMap;

use nanomap_arch::{SmbPos, TimingModel};
use nanomap_netlist::{LutId, SignalRef};
use nanomap_pack::{Packing, Slice, TemporalDesign};

/// Estimated interconnect delay for a hop of Manhattan distance `d`.
pub fn wire_delay_estimate(timing: &TimingModel, d: u32) -> f64 {
    match d {
        0 => timing.local_interconnect,
        1 => timing.wire_direct,
        _ => {
            // Cover the distance with length-4 segments plus length-1
            // remainder, or a single global line — whichever is faster.
            let segments =
                f64::from(d / 4) * timing.wire_length4 + f64::from(d % 4) * timing.wire_length1;
            segments.min(timing.wire_global)
        }
    }
}

/// Per-slice and overall delay estimate of a placed design.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayEstimate {
    /// Critical-path estimate of each slice (combinational portion).
    pub slice_paths: HashMap<Slice, f64>,
    /// The longest slice path.
    pub max_slice_path: f64,
    /// Estimated folding-cycle period (worst slice + reconfiguration +
    /// clocking).
    pub cycle_period: f64,
    /// Estimated circuit delay (`num_slices × cycle_period`).
    pub circuit_delay: f64,
}

/// Estimates the post-placement delay of a packed design.
pub fn estimate_delay(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    pos_of: &[SmbPos],
    timing: &TimingModel,
) -> DelayEstimate {
    let net = design.net;
    let pos_of_smb = |smb: u32| pos_of[smb as usize];
    let mut slice_paths: HashMap<Slice, f64> = HashMap::new();
    // Longest arrival per LUT within its slice.
    let order = net.topo_order().expect("validated network");
    let mut arrival: HashMap<LutId, f64> = HashMap::new();
    for id in order {
        let lut = net.lut(id);
        let slice = design.slice_of(id);
        let my_pos = pos_of_smb(packing.lut_smb[&id]);
        let mut input_arrival = 0.0f64;
        for input in &lut.inputs {
            let (src_pos, upstream) = match *input {
                SignalRef::Lut(u) => {
                    if design.slice_of(u) == slice {
                        // Same-cycle combinational input.
                        (pos_of_smb(packing.lut_smb[&u]), arrival[&u])
                    } else {
                        // Read from the storage location; arrival restarts.
                        let store = packing
                            .stored_smb
                            .get(&u)
                            .or_else(|| packing.lut_smb.get(&u))
                            .copied()
                            .expect("packed");
                        (pos_of_smb(store), 0.0)
                    }
                }
                SignalRef::Ff(f) => (pos_of_smb(packing.ff_smb[&f]), 0.0),
                SignalRef::Input(_) | SignalRef::Const(_) => {
                    arrival.insert(id, timing.lut_delay);
                    continue;
                }
            };
            let d = my_pos.manhattan(src_pos);
            input_arrival = input_arrival.max(upstream + wire_delay_estimate(timing, d));
        }
        let t = input_arrival + timing.lut_delay;
        arrival.insert(id, t);
        let slot = slice_paths.entry(slice).or_insert(0.0);
        *slot = slot.max(t);
    }
    let max_slice_path = slice_paths.values().copied().fold(0.0, f64::max);
    let cycle_period = max_slice_path + timing.reconfiguration + timing.clocking;
    let circuit_delay = cycle_period * f64::from(design.num_slices());
    DelayEstimate {
        slice_paths,
        max_slice_path,
        cycle_period,
        circuit_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_estimate_monotone_and_capped_by_global() {
        let t = TimingModel::nature_100nm();
        let mut last = 0.0;
        for d in 0..12 {
            let w = wire_delay_estimate(&t, d);
            assert!(w >= 0.0);
            if d > 1 {
                assert!(w <= t.wire_global + 1e-9, "d={d}");
            }
            if d >= 2 {
                assert!(w >= last - t.wire_global, "loose monotonicity");
            }
            last = w;
        }
        assert_eq!(wire_delay_estimate(&t, 1), t.wire_direct);
        assert_eq!(wire_delay_estimate(&t, 0), t.local_interconnect);
    }

    #[test]
    fn long_hops_use_global() {
        let t = TimingModel::nature_100nm();
        // 12 hops of length-4 would cost 3 * 0.55 = 1.65 > global 1.1.
        assert_eq!(wire_delay_estimate(&t, 12), t.wire_global);
    }
}
