//! Adoption of an externally computed slot assignment.
//!
//! The exact recovery rung solves slot assignment as a SAT instance and
//! hands back one slot index per SMB. This module is the trust
//! boundary between the solver and the flow: the assignment is
//! re-validated from scratch (shape, injectivity, per-cluster defect
//! legality against the *precise* active-set view) before it is turned
//! into a [`Placement`] via [`Placement::reconstruct`] — so a bug in
//! the encoder or decoder surfaces as a typed error here rather than
//! as a corrupt placement deep inside routing.

use nanomap_arch::{ChannelConfig, DefectMap, Grid, SlotClass, SmbPos, TimingModel};
use nanomap_pack::{Packing, SliceNets, TemporalDesign};

use crate::cost::CostWeights;
use crate::place::Placement;

/// Why an external slot assignment was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdoptError {
    /// The assignment does not give every SMB exactly one slot.
    WrongLength {
        /// SMBs in the packing.
        smbs: u32,
        /// Entries in the assignment.
        assigned: usize,
    },
    /// An assigned slot index is outside the grid.
    SlotOutOfRange {
        /// The SMB with the bad slot.
        smb: u32,
        /// The offending slot index.
        slot: u32,
        /// Slots on the grid.
        slots: u32,
    },
    /// Two SMBs were assigned the same slot.
    DuplicateSlot {
        /// First SMB.
        a: u32,
        /// Second SMB.
        b: u32,
        /// The shared slot index.
        slot: u32,
    },
    /// An SMB was assigned a slot its defects make illegal.
    IllegalSlot {
        /// The SMB.
        smb: u32,
        /// The slot's position.
        pos: SmbPos,
        /// What is wrong with the slot for this SMB.
        class: SlotClass,
    },
}

impl std::fmt::Display for AdoptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongLength { smbs, assigned } => {
                write!(f, "assignment covers {assigned} SMBs, packing has {smbs}")
            }
            Self::SlotOutOfRange { smb, slot, slots } => {
                write!(f, "SMB {smb} assigned slot {slot} of a {slots}-slot grid")
            }
            Self::DuplicateSlot { a, b, slot } => {
                write!(f, "SMBs {a} and {b} both assigned slot {slot}")
            }
            Self::IllegalSlot { smb, pos, class } => {
                write!(
                    f,
                    "SMB {smb} assigned defective slot ({}, {}): {class}",
                    pos.x, pos.y
                )
            }
        }
    }
}

impl std::error::Error for AdoptError {}

/// Validates and adopts a per-SMB slot assignment, producing a
/// [`Placement`] whose cost, routability and delay are recomputed by
/// the exact same code paths the annealer's placements go through — so
/// downstream routing and timing cannot tell an adopted placement from
/// an annealed one, and same-seed runs stay byte-identical.
///
/// `required_sets[smb]` is the precise active-set list from
/// [`Packing::required_sets`]; legality is checked per SMB against it,
/// not against the conservative `num_slices` prefix.
///
/// # Errors
///
/// Returns the first shape, injectivity or legality violation as a
/// typed [`AdoptError`].
#[allow(clippy::too_many_arguments)]
pub fn adopt_assignment(
    design: &TemporalDesign<'_>,
    packing: &Packing,
    nets: &SliceNets,
    channels: &ChannelConfig,
    timing: &TimingModel,
    weights: CostWeights,
    defects: &DefectMap,
    required_sets: &[Vec<u32>],
    grid: Grid,
    slot_of_smb: &[u32],
) -> Result<Placement, AdoptError> {
    if slot_of_smb.len() != packing.num_smbs as usize || required_sets.len() != slot_of_smb.len() {
        return Err(AdoptError::WrongLength {
            smbs: packing.num_smbs,
            assigned: slot_of_smb.len().min(required_sets.len()),
        });
    }
    let slots = grid.num_slots();
    let mut owner: Vec<Option<u32>> = vec![None; slots as usize];
    let mut pos_of = Vec::with_capacity(slot_of_smb.len());
    for (smb, &slot) in slot_of_smb.iter().enumerate() {
        let smb = smb as u32;
        if slot >= slots {
            return Err(AdoptError::SlotOutOfRange { smb, slot, slots });
        }
        if let Some(a) = owner[slot as usize] {
            return Err(AdoptError::DuplicateSlot { a, b: smb, slot });
        }
        owner[slot as usize] = Some(smb);
        let pos = grid.pos(slot as usize);
        match defects.classify_slot(pos, &required_sets[smb as usize]) {
            SlotClass::Usable => pos_of.push(pos),
            class => return Err(AdoptError::IllegalSlot { smb, pos, class }),
        }
    }
    Ok(Placement::reconstruct(
        design, packing, nets, channels, timing, weights, grid, pos_of,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> (nanomap_netlist::LutNetwork, nanomap_netlist::PlaneSet) {
        use nanomap_netlist::rtl::{CombOp, RtlBuilder};
        use nanomap_techmap::{expand, ExpandOptions};
        let mut b = RtlBuilder::new("t");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let x = b.comb("x", CombOp::Xor { width: 4 });
        b.connect(a, 0, x, 0).unwrap();
        b.connect(c, 0, x, 1).unwrap();
        let y = b.output("y", 4);
        b.connect(x, 0, y, 0).unwrap();
        let net = expand(&b.finish().unwrap(), ExpandOptions::default()).unwrap();
        let planes = nanomap_netlist::PlaneSet::extract(&net).unwrap();
        (net, planes)
    }

    #[test]
    fn adoption_validates_and_reconstructs() {
        use nanomap_arch::{ArchParams, TimingModel};
        use nanomap_pack::{extract_nets, pack, PackOptions, TemporalDesign};
        use nanomap_sched::{schedule_fds, FdsOptions, ItemGraph};

        let (net, planes) = tiny_setup();
        let plane0 = &planes.planes()[0];
        let graph = ItemGraph::build(&net, plane0, plane0.depth).unwrap();
        let schedule = schedule_fds(&net, &graph, 1, FdsOptions::default()).unwrap();
        let design = TemporalDesign::new(&net, &planes, vec![graph], vec![schedule]).unwrap();
        let arch = ArchParams::paper();
        let packing = pack(&design, &arch, PackOptions::default()).unwrap();
        let nets = extract_nets(&design, &packing);
        let required = packing.required_sets(&design);
        let grid = Grid::new(2, 2);
        let channels = ChannelConfig::nature();
        let timing = TimingModel::nature_100nm();
        let n = packing.num_smbs as usize;
        assert!(n <= 4, "test design outgrew the 2x2 grid");

        let mut defects = DefectMap::none();
        defects.kill_slot(SmbPos::new(0, 0));

        // A legal assignment avoiding the dead slot 0 adopts cleanly.
        let good: Vec<u32> = (1..=n as u32).collect();
        let placed = adopt_assignment(
            &design,
            &packing,
            &nets,
            &channels,
            &timing,
            CostWeights::default(),
            &defects,
            &required,
            grid,
            &good,
        )
        .expect("legal assignment adopts");
        assert_eq!(placed.pos_of.len(), n);
        assert!(placed.pos_of.iter().all(|&p| p != SmbPos::new(0, 0)));

        // The dead slot is rejected with its classification.
        let bad: Vec<u32> = (0..n as u32).collect();
        let err = adopt_assignment(
            &design,
            &packing,
            &nets,
            &channels,
            &timing,
            CostWeights::default(),
            &defects,
            &required,
            grid,
            &bad,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AdoptError::IllegalSlot {
                smb: 0,
                class: SlotClass::DeadSlot,
                ..
            }
        ));

        // Duplicates and out-of-range slots are typed errors too.
        if n >= 2 {
            let dup = vec![1u32; n];
            assert!(matches!(
                adopt_assignment(
                    &design,
                    &packing,
                    &nets,
                    &channels,
                    &timing,
                    CostWeights::default(),
                    &defects,
                    &required,
                    grid,
                    &dup,
                ),
                Err(AdoptError::DuplicateSlot { slot: 1, .. })
            ));
        }
        let oob = vec![99u32; n];
        assert!(matches!(
            adopt_assignment(
                &design,
                &packing,
                &nets,
                &channels,
                &timing,
                CostWeights::default(),
                &defects,
                &required,
                grid,
                &oob,
            ),
            Err(AdoptError::SlotOutOfRange { slot: 99, .. })
        ));
        assert!(matches!(
            adopt_assignment(
                &design,
                &packing,
                &nets,
                &channels,
                &timing,
                CostWeights::default(),
                &defects,
                &required,
                grid,
                &good[..n - 1],
            ),
            Err(AdoptError::WrongLength { .. })
        ));
    }
}
