//! Tokenizer for the structural VHDL subset.

use crate::error::ParseNetlistError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (lower-cased; VHDL is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Bit literal `'0'` / `'1'`.
    BitLit(bool),
    /// Bit-vector literal `"0101"` (most-significant bit first).
    VecLit(Vec<bool>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `<=`
    Assign,
    /// `=>`
    Arrow,
    /// `&`
    Ampersand,
}

/// A token plus the 1-based line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenizes VHDL-subset source text.
///
/// `--` comments run to end of line. Identifiers are lower-cased.
///
/// # Errors
///
/// Returns an error on unterminated literals or unexpected characters.
pub fn lex(text: &str) -> Result<Vec<Spanned>, ParseNetlistError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    // comment to end of line
                    for k in chars.by_ref() {
                        if k == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(ParseNetlistError::new(line, "unexpected `-`"));
                }
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                chars.next();
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                chars.next();
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semicolon,
                    line,
                });
                chars.next();
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                chars.next();
            }
            '&' => {
                tokens.push(Spanned {
                    token: Token::Ampersand,
                    line,
                });
                chars.next();
            }
            ':' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Colon,
                    line,
                });
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Spanned {
                        token: Token::Assign,
                        line,
                    });
                } else {
                    return Err(ParseNetlistError::new(line, "expected `<=`"));
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Spanned {
                        token: Token::Arrow,
                        line,
                    });
                } else {
                    return Err(ParseNetlistError::new(line, "expected `=>`"));
                }
            }
            '\'' => {
                chars.next();
                let bit = match chars.next() {
                    Some('0') => false,
                    Some('1') => true,
                    other => {
                        return Err(ParseNetlistError::new(
                            line,
                            format!("bad bit literal {other:?}"),
                        ))
                    }
                };
                if chars.next() != Some('\'') {
                    return Err(ParseNetlistError::new(line, "unterminated bit literal"));
                }
                tokens.push(Spanned {
                    token: Token::BitLit(bit),
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut bits = Vec::new();
                loop {
                    match chars.next() {
                        Some('0') => bits.push(false),
                        Some('1') => bits.push(true),
                        Some('"') => break,
                        other => {
                            return Err(ParseNetlistError::new(
                                line,
                                format!("bad vector literal char {other:?}"),
                            ))
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::VecLit(bits),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut value = 0u64;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        value = value * 10 + u64::from(v);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(ident),
                    line,
                });
            }
            other => {
                return Err(ParseNetlistError::new(
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_tokens() {
        let toks = lex("entity Foo is -- comment\n port ( a : in );").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|s| s.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("entity".into()),
                Token::Ident("foo".into()),
                Token::Ident("is".into()),
                Token::Ident("port".into()),
                Token::LParen,
                Token::Ident("a".into()),
                Token::Colon,
                Token::Ident("in".into()),
                Token::RParen,
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_literals_and_operators() {
        let toks = lex("y <= a & \"01\" ; m => '1' (7)").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|s| s.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("y".into()),
                Token::Assign,
                Token::Ident("a".into()),
                Token::Ampersand,
                Token::VecLit(vec![false, true]),
                Token::Semicolon,
                Token::Ident("m".into()),
                Token::Arrow,
                Token::BitLit(true),
                Token::LParen,
                Token::Int(7),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(lex("a @ b").is_err());
        assert!(lex("'2'").is_err());
        assert!(lex("\"01x\"").is_err());
        assert!(lex("a < b").is_err());
    }
}
