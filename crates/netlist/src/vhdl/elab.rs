//! Elaboration of the VHDL AST into an [`RtlCircuit`].

use std::collections::HashMap;

use super::ast::*;
use crate::error::ParseNetlistError;
use crate::ids::NodeId;
use crate::rtl::{CombOp, Driver, NodeKind, RtlCircuit};

/// The built-in structural component library.
///
/// | component | generics | inputs | outputs |
/// |-----------|----------|--------|---------|
/// | `add` | `width` | `a`, `b`, `cin` | `sum`, `cout` |
/// | `sub` | `width` | `a`, `b` | `diff`, `bout` |
/// | `mul` | `width` | `a`, `b` | `prod` |
/// | `mux2` | `width` | `a`, `b`, `sel` | `y` |
/// | `muxn` | `width`, `n` | `d0`..`d{n-1}`, `sel` | `y` |
/// | `eq`, `lt` | `width` | `a`, `b` | `y` |
/// | `and2`, `or2`, `xor2` | `width` | `a`, `b` | `y` |
/// | `inv` | `width` | `a` | `y` |
/// | `reduce_and`, `reduce_or`, `reduce_xor` | `width` | `a` | `y` |
/// | `shl`, `shr` | `width`, `amount` | `a` | `y` |
/// | `reg` | `width` | `d` | `q` |
/// | `lut` | `n`, `truth` | `i0`..`i{n-1}` | `y` |
fn component_kind(
    component: &str,
    generics: &HashMap<String, u64>,
    line: usize,
) -> Result<NodeKind, ParseNetlistError> {
    let width = || -> Result<u32, ParseNetlistError> {
        generics
            .get("width")
            .map(|&w| w as u32)
            .ok_or_else(|| ParseNetlistError::new(line, "missing generic `width`"))
    };
    let kind = match component {
        "add" => NodeKind::Comb(CombOp::Add { width: width()? }),
        "sub" => NodeKind::Comb(CombOp::Sub { width: width()? }),
        "mul" => NodeKind::Comb(CombOp::Mul { width: width()? }),
        "mux2" => NodeKind::Comb(CombOp::Mux2 { width: width()? }),
        "muxn" => {
            let n = generics
                .get("n")
                .map(|&n| n as u32)
                .ok_or_else(|| ParseNetlistError::new(line, "missing generic `n`"))?;
            NodeKind::Comb(CombOp::MuxN { width: width()?, n })
        }
        "eq" => NodeKind::Comb(CombOp::Eq { width: width()? }),
        "lt" => NodeKind::Comb(CombOp::Lt { width: width()? }),
        "and2" => NodeKind::Comb(CombOp::And { width: width()? }),
        "or2" => NodeKind::Comb(CombOp::Or { width: width()? }),
        "xor2" => NodeKind::Comb(CombOp::Xor { width: width()? }),
        "inv" => NodeKind::Comb(CombOp::Not { width: width()? }),
        "reduce_and" => NodeKind::Comb(CombOp::ReduceAnd { width: width()? }),
        "reduce_or" => NodeKind::Comb(CombOp::ReduceOr { width: width()? }),
        "reduce_xor" => NodeKind::Comb(CombOp::ReduceXor { width: width()? }),
        "shl" | "shr" => {
            let amount = generics
                .get("amount")
                .map(|&a| a as u32)
                .ok_or_else(|| ParseNetlistError::new(line, "missing generic `amount`"))?;
            if component == "shl" {
                NodeKind::Comb(CombOp::Shl {
                    width: width()?,
                    amount,
                })
            } else {
                NodeKind::Comb(CombOp::Shr {
                    width: width()?,
                    amount,
                })
            }
        }
        "reg" => NodeKind::Register { width: width()? },
        "lut" => {
            let n = generics
                .get("n")
                .map(|&n| n as u32)
                .ok_or_else(|| ParseNetlistError::new(line, "missing generic `n`"))?;
            let truth = generics
                .get("truth")
                .copied()
                .ok_or_else(|| ParseNetlistError::new(line, "missing generic `truth`"))?;
            if n > crate::truth::MAX_LUT_INPUTS {
                return Err(ParseNetlistError::new(
                    line,
                    format!(
                        "lut generic n = {n} exceeds {}",
                        crate::truth::MAX_LUT_INPUTS
                    ),
                ));
            }
            NodeKind::Comb(CombOp::Lut {
                truth: crate::truth::TruthTable::new(n, truth),
            })
        }
        other => {
            return Err(ParseNetlistError::new(
                line,
                format!("unknown component `{other}`"),
            ))
        }
    };
    Ok(kind)
}

fn port_index(ports: &[crate::rtl::PortSpec], name: &str) -> Option<usize> {
    // Exact formal name first.
    if let Some(i) = ports.iter().position(|p| p.name == name) {
        return Some(i);
    }
    // Repeated ports (MuxN's `d`, Lut's `i`) are addressed positionally as
    // `d0`, `d1`, ... / `i0`, `i1`, ...
    let split = name.find(|c: char| c.is_ascii_digit())?;
    let (prefix, digits) = name.split_at(split);
    let index: usize = digits.parse().ok()?;
    // The positional index counts among ports sharing the prefix name.
    let mut seen = 0;
    for (i, port) in ports.iter().enumerate() {
        if port.name == prefix {
            if seen == index {
                return Some(i);
            }
            seen += 1;
        }
    }
    None
}

struct Elaborator {
    circuit: RtlCircuit,
    /// Known drivers of signals / entity input ports.
    drivers: HashMap<String, Driver>,
    /// Declared width of every signal and port.
    widths: HashMap<String, u32>,
    /// Entity output ports: name -> output node.
    out_ports: HashMap<String, NodeId>,
    /// Assignment expressions not yet elaborated.
    assigns: HashMap<String, (AstExpr, usize)>,
    /// In-progress markers for cycle detection.
    visiting: Vec<String>,
    unique: u64,
}

impl Elaborator {
    fn fresh_name(&mut self, prefix: &str) -> String {
        self.unique += 1;
        format!("${prefix}{}", self.unique)
    }

    fn expr_width(&self, expr: &AstExpr, line: usize) -> Result<u32, ParseNetlistError> {
        match expr {
            AstExpr::Name(name) => self
                .widths
                .get(name)
                .copied()
                .ok_or_else(|| ParseNetlistError::new(line, format!("unknown signal `{name}`"))),
            AstExpr::Slice { hi, lo, .. } => Ok(hi - lo + 1),
            AstExpr::Literal(bits) => Ok(bits.len() as u32),
            AstExpr::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.expr_width(p, line)?;
                }
                Ok(total)
            }
        }
    }

    fn resolve_driver(&mut self, name: &str, line: usize) -> Result<Driver, ParseNetlistError> {
        if let Some(&d) = self.drivers.get(name) {
            return Ok(d);
        }
        if self.visiting.iter().any(|v| v == name) {
            return Err(ParseNetlistError::new(
                line,
                format!("combinational assignment cycle through `{name}`"),
            ));
        }
        if let Some((expr, assign_line)) = self.assigns.remove(name) {
            self.visiting.push(name.to_string());
            let d = self.elaborate_expr(&expr, assign_line)?;
            self.visiting.pop();
            self.drivers.insert(name.to_string(), d);
            return Ok(d);
        }
        Err(ParseNetlistError::new(
            line,
            format!("signal `{name}` has no driver"),
        ))
    }

    fn elaborate_expr(&mut self, expr: &AstExpr, line: usize) -> Result<Driver, ParseNetlistError> {
        match expr {
            AstExpr::Name(name) => self.resolve_driver(name, line),
            AstExpr::Slice { name, hi, lo } => {
                let width = *self.widths.get(name).ok_or_else(|| {
                    ParseNetlistError::new(line, format!("unknown signal `{name}`"))
                })?;
                if *hi >= width {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("slice {hi} out of range for `{name}` ({width} bits)"),
                    ));
                }
                let src = self.resolve_driver(name, line)?;
                let node_name = self.fresh_name("slice");
                let node = self
                    .circuit
                    .add_node(
                        node_name,
                        NodeKind::Comb(CombOp::Slice {
                            width,
                            lo: *lo,
                            out_width: hi - lo + 1,
                        }),
                    )
                    .map_err(|e| ParseNetlistError::new(line, format!("elaboration error: {e}")))?;
                self.connect(src, node, 0, line)?;
                Ok(Driver { node, port: 0 })
            }
            AstExpr::Literal(bits) => {
                let mut value = 0u64;
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        value |= 1 << i;
                    }
                }
                let node_name = self.fresh_name("const");
                let node = self
                    .circuit
                    .add_node(
                        node_name,
                        NodeKind::Comb(CombOp::Const {
                            width: bits.len() as u32,
                            value,
                        }),
                    )
                    .map_err(|e| ParseNetlistError::new(line, format!("elaboration error: {e}")))?;
                Ok(Driver { node, port: 0 })
            }
            AstExpr::Concat(parts) => {
                let mut widths = Vec::with_capacity(parts.len());
                for p in parts {
                    widths.push(self.expr_width(p, line)?);
                }
                let node_name = self.fresh_name("concat");
                let node = self
                    .circuit
                    .add_node(node_name, NodeKind::Comb(CombOp::Concat { widths }))
                    .map_err(|e| ParseNetlistError::new(line, format!("elaboration error: {e}")))?;
                for (i, p) in parts.iter().enumerate() {
                    let d = self.elaborate_expr(p, line)?;
                    self.connect(d, node, i as u32, line)?;
                }
                Ok(Driver { node, port: 0 })
            }
        }
    }

    fn connect(
        &mut self,
        from: Driver,
        to: NodeId,
        to_port: u32,
        line: usize,
    ) -> Result<(), ParseNetlistError> {
        self.circuit
            .connect(from.node, from.port, to, to_port)
            .map_err(|e| ParseNetlistError::new(line, e.to_string()))
    }
}

/// Elaborates a parsed design into an RTL circuit.
pub(super) fn elaborate(design: &AstDesign) -> Result<RtlCircuit, ParseNetlistError> {
    let mut elab = Elaborator {
        circuit: RtlCircuit::new(design.name.clone()),
        drivers: HashMap::new(),
        widths: HashMap::new(),
        out_ports: HashMap::new(),
        assigns: HashMap::new(),
        visiting: Vec::new(),
        unique: 0,
    };

    // Entity ports.
    for port in &design.ports {
        elab.widths.insert(port.name.clone(), port.ty.width);
        match port.dir {
            AstDir::In => {
                let node = elab
                    .circuit
                    .add_node(
                        port.name.clone(),
                        NodeKind::Input {
                            width: port.ty.width,
                        },
                    )
                    .map_err(|e| ParseNetlistError::new(port.line, e.to_string()))?;
                elab.drivers
                    .insert(port.name.clone(), Driver { node, port: 0 });
            }
            AstDir::Out => {
                let node = elab
                    .circuit
                    .add_node(
                        port.name.clone(),
                        NodeKind::Output {
                            width: port.ty.width,
                        },
                    )
                    .map_err(|e| ParseNetlistError::new(port.line, e.to_string()))?;
                elab.out_ports.insert(port.name.clone(), node);
            }
        }
    }
    // Architecture signals.
    for signal in &design.signals {
        if elab
            .widths
            .insert(signal.name.clone(), signal.ty.width)
            .is_some()
        {
            return Err(ParseNetlistError::new(
                signal.line,
                format!("`{}` declared twice", signal.name),
            ));
        }
    }

    // Instances: create nodes, record output drivers, defer input wiring.
    struct PendingInput {
        node: NodeId,
        port: u32,
        expr: AstExpr,
        line: usize,
    }
    struct PendingOutput {
        driver: Driver,
        target: String,
        line: usize,
    }
    let mut pending_inputs: Vec<PendingInput> = Vec::new();
    let mut pending_outputs: Vec<PendingOutput> = Vec::new();

    for statement in &design.statements {
        match statement {
            AstStatement::Instance(inst) => {
                let generics: HashMap<String, u64> = inst.generics.iter().cloned().collect();
                let kind = component_kind(&inst.component, &generics, inst.line)?;
                let in_ports = kind.input_ports();
                let out_ports = kind.output_ports();
                let node = elab
                    .circuit
                    .add_node(inst.label.clone(), kind.clone())
                    .map_err(|e| ParseNetlistError::new(inst.line, e.to_string()))?;
                for (formal, actual) in &inst.ports {
                    if let Some(idx) = port_index(&in_ports, formal) {
                        pending_inputs.push(PendingInput {
                            node,
                            port: idx as u32,
                            expr: actual.clone(),
                            line: inst.line,
                        });
                    } else if let Some(idx) = out_ports.iter().position(|p| p.name == formal) {
                        let target = match actual {
                            AstExpr::Name(n) => n.clone(),
                            other => {
                                return Err(ParseNetlistError::new(
                                    inst.line,
                                    format!(
                                        "output formal `{formal}` must map to a plain signal, got {other:?}"
                                    ),
                                ))
                            }
                        };
                        pending_outputs.push(PendingOutput {
                            driver: Driver {
                                node,
                                port: idx as u32,
                            },
                            target,
                            line: inst.line,
                        });
                    } else {
                        return Err(ParseNetlistError::new(
                            inst.line,
                            format!("component `{}` has no port `{formal}`", inst.component),
                        ));
                    }
                }
            }
            AstStatement::Assign(assign) => {
                if elab.assigns.contains_key(&assign.target) {
                    return Err(ParseNetlistError::new(
                        assign.line,
                        format!("`{}` assigned twice", assign.target),
                    ));
                }
                elab.assigns
                    .insert(assign.target.clone(), (assign.expr.clone(), assign.line));
            }
        }
    }

    // Record instance-driven signal drivers (or wire directly to out ports).
    let mut out_port_feeds: Vec<(Driver, NodeId, usize)> = Vec::new();
    for pending in pending_outputs {
        if let Some(&out_node) = elab.out_ports.get(&pending.target) {
            out_port_feeds.push((pending.driver, out_node, pending.line));
        } else {
            if !elab.widths.contains_key(&pending.target) {
                return Err(ParseNetlistError::new(
                    pending.line,
                    format!("unknown signal `{}`", pending.target),
                ));
            }
            if elab
                .drivers
                .insert(pending.target.clone(), pending.driver)
                .is_some()
            {
                return Err(ParseNetlistError::new(
                    pending.line,
                    format!("signal `{}` driven twice", pending.target),
                ));
            }
        }
    }

    // Wire instance inputs.
    for pending in pending_inputs {
        let d = elab.elaborate_expr(&pending.expr, pending.line)?;
        elab.connect(d, pending.node, pending.port, pending.line)?;
    }
    // Wire entity outputs: direct instance feeds, then assignment-driven.
    for (driver, out_node, line) in out_port_feeds {
        elab.connect(driver, out_node, 0, line)?;
    }
    let out_names: Vec<(String, NodeId)> = elab
        .out_ports
        .iter()
        .map(|(n, &id)| (n.clone(), id))
        .collect();
    for (name, out_node) in out_names {
        // Skip outputs already wired by an instance.
        if elab.circuit.node(out_node).inputs[0].is_some() {
            continue;
        }
        if let Some((expr, line)) = elab.assigns.remove(&name) {
            let d = elab.elaborate_expr(&expr, line)?;
            elab.connect(d, out_node, 0, line)?;
        } else {
            return Err(ParseNetlistError::new(
                0,
                format!("output port `{name}` is never driven"),
            ));
        }
    }
    // Flush remaining assignments (signals that only feed other assignments
    // were already pulled in transitively; leftovers are dead but must still
    // elaborate so width errors surface).
    let leftovers: Vec<String> = elab.assigns.keys().cloned().collect();
    for name in leftovers {
        if let Some((expr, line)) = elab.assigns.remove(&name) {
            let d = elab.elaborate_expr(&expr, line)?;
            elab.drivers.insert(name, d);
        }
    }

    elab.circuit
        .validate()
        .map_err(|e| ParseNetlistError::new(0, e.to_string()))?;
    Ok(elab.circuit)
}
