//! Abstract syntax tree for the structural VHDL subset.

/// Direction of an entity port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstDir {
    /// `in` port.
    In,
    /// `out` port.
    Out,
}

/// `std_logic` or `std_logic_vector(hi downto lo)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstType {
    /// Width in bits (`std_logic` is width 1).
    pub width: u32,
}

/// One declared entity port (after comma-list expansion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstPort {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: AstDir,
    /// Type.
    pub ty: AstType,
    /// Declaration line.
    pub line: usize,
}

/// One declared architecture signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstSignal {
    /// Signal name.
    pub name: String,
    /// Type.
    pub ty: AstType,
    /// Declaration line.
    pub line: usize,
}

/// A dataflow expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstExpr {
    /// Reference to a signal or entity input port.
    Name(String),
    /// Bit slice `name(hi downto lo)` or single bit `name(i)`.
    Slice {
        /// Sliced signal name.
        name: String,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Literal `'0'`, `'1'`, or `"0101"` (stored low bit first).
    Literal(Vec<bool>),
    /// Concatenation `a & b & ...`; VHDL `&` puts the left operand in the
    /// high bits, parts here are ordered low-to-high.
    Concat(Vec<AstExpr>),
}

/// A component instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstInstance {
    /// Instance label.
    pub label: String,
    /// Component name (resolved against the built-in library).
    pub component: String,
    /// Generic associations (`name => integer`).
    pub generics: Vec<(String, u64)>,
    /// Port associations (`formal => actual expression`).
    pub ports: Vec<(String, AstExpr)>,
    /// Source line.
    pub line: usize,
}

/// A concurrent signal assignment `target <= expr;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstAssign {
    /// Target signal or entity output name.
    pub target: String,
    /// Driving expression.
    pub expr: AstExpr,
    /// Source line.
    pub line: usize,
}

/// A concurrent statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstStatement {
    /// Component instantiation.
    Instance(AstInstance),
    /// Signal assignment.
    Assign(AstAssign),
}

/// A parsed design: one entity plus one architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstDesign {
    /// Entity name.
    pub name: String,
    /// Entity ports.
    pub ports: Vec<AstPort>,
    /// Architecture signals.
    pub signals: Vec<AstSignal>,
    /// Architecture body.
    pub statements: Vec<AstStatement>,
}
