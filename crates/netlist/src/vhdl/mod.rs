//! Structural VHDL-subset front-end.
//!
//! NanoMap accepts designs "specified in RTL and/or gate-level VHDL". This
//! module parses a pragmatic structural subset — one entity, one
//! architecture, component instantiations from a built-in RTL library, and
//! concurrent signal assignments with slices, concatenation and literals —
//! and elaborates it into an [`crate::rtl::RtlCircuit`].
//!
//! # Supported grammar
//!
//! ```text
//! entity NAME is port ( name {, name} : in|out TYPE {; ...} ); end [NAME];
//! architecture NAME of NAME is {signal name {, name} : TYPE;} begin
//!     label: component [generic map (g => INT {, ...})] port map (p => EXPR {, ...});
//!     target <= EXPR;
//! end [NAME];
//! TYPE := std_logic | std_logic_vector(HI downto 0)
//! EXPR := primary {& primary}
//! primary := name | name(I) | name(HI downto LO) | '0' | '1' | "0101"
//! ```
//!
//! The component library is documented on [`parse`]. Comments use `--`;
//! identifiers are case-insensitive.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//! entity acc is
//!   port ( x : in std_logic_vector(7 downto 0);
//!          y : out std_logic_vector(7 downto 0) );
//! end acc;
//! architecture rtl of acc is
//!   signal state, next_state : std_logic_vector(7 downto 0);
//!   signal ovf : std_logic;
//! begin
//!   u_add: add generic map (width => 8)
//!          port map (a => x, b => state, cin => '0', sum => next_state, cout => ovf);
//!   u_reg: reg generic map (width => 8) port map (d => next_state, q => state);
//!   y <= state;
//! end rtl;
//! "#;
//! let circuit = nanomap_netlist::vhdl::parse(source)?;
//! assert_eq!(circuit.num_registers(), 1);
//! # Ok::<(), nanomap_netlist::ParseNetlistError>(())
//! ```

// This front-end faces untrusted input: every malformed file must
// surface as a `ParseNetlistError`, never a panic. (Applies to the
// whole module tree — lexer, parser, elaborator.)
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod ast;
mod elab;
mod lexer;
mod parser;

pub use ast::{
    AstAssign, AstDesign, AstDir, AstExpr, AstInstance, AstPort, AstSignal, AstStatement, AstType,
};

use crate::error::ParseNetlistError;
use crate::rtl::RtlCircuit;

/// Parses and elaborates VHDL-subset source into an [`RtlCircuit`].
///
/// Built-in component library (all ports little-endian buses):
///
/// | component | generics | inputs | outputs |
/// |-----------|----------|--------|---------|
/// | `add` | `width` | `a`, `b`, `cin` | `sum`, `cout` |
/// | `sub` | `width` | `a`, `b` | `diff`, `bout` |
/// | `mul` | `width` | `a`, `b` | `prod` (2×width) |
/// | `mux2` | `width` | `a`, `b`, `sel` | `y` |
/// | `muxn` | `width`, `n` | `d0`..`d{n-1}`, `sel` | `y` |
/// | `eq`, `lt` | `width` | `a`, `b` | `y` (1 bit) |
/// | `and2`, `or2`, `xor2` | `width` | `a`, `b` | `y` |
/// | `inv` | `width` | `a` | `y` |
/// | `reduce_and`, `reduce_or`, `reduce_xor` | `width` | `a` | `y` (1 bit) |
/// | `shl`, `shr` | `width`, `amount` | `a` | `y` |
/// | `reg` | `width` | `d` | `q` |
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] carrying the offending line for lexical,
/// syntactic and elaboration problems (unknown components, width
/// mismatches, undriven signals, assignment cycles).
pub fn parse(source: &str) -> Result<RtlCircuit, ParseNetlistError> {
    let tokens = lexer::lex(source)?;
    let design = parser::Parser::new(tokens).design()?;
    elab::elaborate(&design)
}

/// Parses VHDL-subset source into its AST without elaborating.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for lexical or syntactic problems.
pub fn parse_ast(source: &str) -> Result<AstDesign, ParseNetlistError> {
    let tokens = lexer::lex(source)?;
    parser::Parser::new(tokens).design()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::RtlSimulator;

    const ACCUMULATOR: &str = r#"
-- 8-bit accumulator with clear-on-overflow semantics omitted
entity acc is
  port ( x : in std_logic_vector(7 downto 0);
         y : out std_logic_vector(7 downto 0) );
end acc;
architecture rtl of acc is
  signal state : std_logic_vector(7 downto 0);
  signal next_state : std_logic_vector(7 downto 0);
  signal ovf : std_logic;
begin
  u_add: add generic map (width => 8)
         port map (a => x, b => state, cin => '0', sum => next_state, cout => ovf);
  u_reg: reg generic map (width => 8) port map (d => next_state, q => state);
  y <= state;
end rtl;
"#;

    #[test]
    fn accumulator_elaborates_and_runs() {
        let circuit = parse(ACCUMULATOR).unwrap();
        assert_eq!(circuit.num_registers(), 1);
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.set_input("x", 10);
        sim.step();
        sim.step();
        sim.step();
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(30));
    }

    #[test]
    fn slices_and_concat_work() {
        let source = r#"
entity swizzle is
  port ( a : in std_logic_vector(7 downto 0);
         y : out std_logic_vector(7 downto 0) );
end swizzle;
architecture rtl of swizzle is
begin
  y <= a(3 downto 0) & a(7 downto 4);
end rtl;
"#;
        let circuit = parse(source).unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.set_input("a", 0xA5);
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(0x5A));
    }

    #[test]
    fn muxn_positional_data_ports() {
        let source = r#"
entity pick is
  port ( a, b, c : in std_logic_vector(3 downto 0);
         s : in std_logic_vector(1 downto 0);
         y : out std_logic_vector(3 downto 0) );
end pick;
architecture rtl of pick is
begin
  u0: muxn generic map (width => 4, n => 3)
      port map (d0 => a, d1 => b, d2 => c, sel => s, y => y);
end rtl;
"#;
        let circuit = parse(source).unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.set_input("a", 1);
        sim.set_input("b", 2);
        sim.set_input("c", 3);
        sim.set_input("s", 2);
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(3));
    }

    #[test]
    fn chained_assignments_resolve() {
        let source = r#"
entity chain is
  port ( a : in std_logic; y : out std_logic );
end chain;
architecture rtl of chain is
  signal s1 : std_logic;
  signal s2 : std_logic;
begin
  y <= s2;
  s2 <= s1;
  s1 <= a;
end rtl;
"#;
        let circuit = parse(source).unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.set_input("a", 1);
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(1));
    }

    #[test]
    fn assignment_cycle_rejected() {
        let source = r#"
entity cyc is
  port ( a : in std_logic; y : out std_logic );
end cyc;
architecture rtl of cyc is
  signal s1 : std_logic;
  signal s2 : std_logic;
begin
  s1 <= s2;
  s2 <= s1;
  y <= s1;
end rtl;
"#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn unknown_component_rejected() {
        let source = r#"
entity u is
  port ( a : in std_logic; y : out std_logic );
end u;
architecture rtl of u is
begin
  u0: warp_core generic map (width => 1) port map (a => a, y => y);
end rtl;
"#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let source = r#"
entity w is
  port ( a : in std_logic_vector(3 downto 0); y : out std_logic_vector(7 downto 0) );
end w;
architecture rtl of w is
begin
  y <= a;
end rtl;
"#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn undriven_output_rejected() {
        let source = r#"
entity o is
  port ( a : in std_logic; y : out std_logic );
end o;
architecture rtl of o is
begin
end rtl;
"#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn vector_literal_msb_first() {
        let source = r#"
entity lit is
  port ( a : in std_logic; y : out std_logic_vector(3 downto 0) );
end lit;
architecture rtl of lit is
begin
  y <= "1010";
end rtl;
"#;
        let circuit = parse(source).unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        sim.eval_comb();
        assert_eq!(sim.output("y"), Some(0b1010));
    }
}

#[cfg(test)]
mod lut_component_tests {
    use crate::rtl::RtlSimulator;

    #[test]
    fn generic_lut_component() {
        // truth 0b0110 = XOR of two inputs.
        let source = r#"
entity g is
  port ( a : in std_logic; b : in std_logic; y : out std_logic );
end g;
architecture rtl of g is
begin
  u0: lut generic map (n => 2, truth => 6) port map (i0 => a, i1 => b, y => y);
end rtl;
"#;
        let circuit = super::parse(source).unwrap();
        let mut sim = RtlSimulator::new(&circuit).unwrap();
        for (a, b, expected) in [(0u64, 0u64, 0u64), (1, 0, 1), (0, 1, 1), (1, 1, 0)] {
            sim.set_input("a", a);
            sim.set_input("b", b);
            sim.eval_comb();
            assert_eq!(sim.output("y"), Some(expected));
        }
    }

    #[test]
    fn lut_component_requires_generics() {
        let source = r#"
entity g is
  port ( a : in std_logic; y : out std_logic );
end g;
architecture rtl of g is
begin
  u0: lut generic map (n => 1) port map (i0 => a, y => y);
end rtl;
"#;
        assert!(super::parse(source).is_err());
    }
}
