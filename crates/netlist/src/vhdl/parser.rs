//! Recursive-descent parser for the structural VHDL subset.

use super::ast::*;
use super::lexer::{Spanned, Token};
use crate::error::ParseNetlistError;

/// Largest accepted `std_logic_vector` width. Generous for real designs,
/// small enough that width arithmetic can never overflow `u32`.
const MAX_VECTOR_WIDTH: u64 = 1 << 20;

pub(super) struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    pub(super) fn new(tokens: Vec<Spanned>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseNetlistError {
        ParseNetlistError::new(self.line(), msg)
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseNetlistError> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(ParseNetlistError::new(
                self.tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                format!("expected {expected:?}, found {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseNetlistError> {
        match self.next() {
            Some(Token::Ident(ref s)) if s == kw => Ok(()),
            other => Err(ParseNetlistError::new(
                self.tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                format!("expected keyword `{kw}`, found {other:?}"),
            )),
        }
    }

    fn ident(&mut self) -> Result<String, ParseNetlistError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseNetlistError::new(
                self.tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn int(&mut self) -> Result<u64, ParseNetlistError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(ParseNetlistError::new(
                self.tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                format!("expected integer, found {other:?}"),
            )),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    pub(super) fn design(&mut self) -> Result<AstDesign, ParseNetlistError> {
        // entity NAME is port ( ... ); end [entity] [NAME];
        self.expect_keyword("entity")?;
        let name = self.ident()?;
        self.expect_keyword("is")?;
        self.expect_keyword("port")?;
        self.expect(&Token::LParen)?;
        let mut ports = Vec::new();
        loop {
            ports.extend(self.port_decl()?);
            match self.peek() {
                Some(Token::Semicolon) => {
                    self.next();
                    if matches!(self.peek(), Some(Token::RParen)) {
                        self.next();
                        break;
                    }
                }
                Some(Token::RParen) => {
                    self.next();
                    break;
                }
                other => return Err(self.err(format!("expected `;` or `)`, found {other:?}"))),
            }
        }
        self.expect(&Token::Semicolon)?;
        self.expect_keyword("end")?;
        self.optional_trailer(&name);
        self.expect(&Token::Semicolon)?;

        // architecture NAME of ENTITY is {signal} begin {stmt} end [NAME];
        self.expect_keyword("architecture")?;
        let _arch_name = self.ident()?;
        self.expect_keyword("of")?;
        let of_name = self.ident()?;
        if of_name != name {
            return Err(self.err(format!(
                "architecture of `{of_name}` does not match entity `{name}`"
            )));
        }
        self.expect_keyword("is")?;
        let mut signals = Vec::new();
        while self.peek_keyword("signal") {
            signals.extend(self.signal_decl()?);
        }
        self.expect_keyword("begin")?;
        let mut statements = Vec::new();
        while !self.peek_keyword("end") {
            statements.push(self.statement()?);
        }
        self.expect_keyword("end")?;
        self.optional_trailer(&_arch_name);
        self.expect(&Token::Semicolon)?;
        Ok(AstDesign {
            name,
            ports,
            signals,
            statements,
        })
    }

    /// Consumes an optional `entity`/`architecture` keyword and/or name after `end`.
    fn optional_trailer(&mut self, _name: &str) {
        while matches!(self.peek(), Some(Token::Ident(_))) {
            self.next();
        }
    }

    fn ty(&mut self) -> Result<AstType, ParseNetlistError> {
        let kind = self.ident()?;
        match kind.as_str() {
            "std_logic" => Ok(AstType { width: 1 }),
            "std_logic_vector" => {
                self.expect(&Token::LParen)?;
                let hi = self.int()?;
                self.expect_keyword("downto")?;
                let lo = self.int()?;
                self.expect(&Token::RParen)?;
                if lo != 0 {
                    return Err(self.err("only (N downto 0) ranges are supported"));
                }
                // Bound widths before they overflow u32 arithmetic or ask
                // for absurd allocations downstream.
                if hi >= MAX_VECTOR_WIDTH {
                    return Err(self.err(format!(
                        "vector width {} exceeds the {MAX_VECTOR_WIDTH}-bit limit",
                        hi.saturating_add(1)
                    )));
                }
                Ok(AstType {
                    width: hi as u32 + 1,
                })
            }
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    fn port_decl(&mut self) -> Result<Vec<AstPort>, ParseNetlistError> {
        let line = self.line();
        let mut names = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.next();
            names.push(self.ident()?);
        }
        self.expect(&Token::Colon)?;
        let dir = match self.ident()?.as_str() {
            "in" => AstDir::In,
            "out" => AstDir::Out,
            other => return Err(self.err(format!("expected `in` or `out`, found `{other}`"))),
        };
        let ty = self.ty()?;
        Ok(names
            .into_iter()
            .map(|name| AstPort {
                name,
                dir,
                ty,
                line,
            })
            .collect())
    }

    fn signal_decl(&mut self) -> Result<Vec<AstSignal>, ParseNetlistError> {
        let line = self.line();
        self.expect_keyword("signal")?;
        let mut names = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.next();
            names.push(self.ident()?);
        }
        self.expect(&Token::Colon)?;
        let ty = self.ty()?;
        self.expect(&Token::Semicolon)?;
        Ok(names
            .into_iter()
            .map(|name| AstSignal { name, ty, line })
            .collect())
    }

    fn statement(&mut self) -> Result<AstStatement, ParseNetlistError> {
        let line = self.line();
        let first = self.ident()?;
        match self.peek() {
            Some(Token::Colon) => {
                self.next();
                let component = self.ident()?;
                let mut generics = Vec::new();
                if self.peek_keyword("generic") {
                    self.next();
                    self.expect_keyword("map")?;
                    self.expect(&Token::LParen)?;
                    loop {
                        let name = self.ident()?;
                        self.expect(&Token::Arrow)?;
                        let value = self.int()?;
                        generics.push((name, value));
                        match self.next() {
                            Some(Token::Comma) => continue,
                            Some(Token::RParen) => break,
                            other => {
                                return Err(self.err(format!(
                                    "expected `,` or `)` in generic map, found {other:?}"
                                )))
                            }
                        }
                    }
                }
                self.expect_keyword("port")?;
                self.expect_keyword("map")?;
                self.expect(&Token::LParen)?;
                let mut ports = Vec::new();
                loop {
                    let formal = self.ident()?;
                    self.expect(&Token::Arrow)?;
                    let actual = self.expr()?;
                    ports.push((formal, actual));
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        other => {
                            return Err(self
                                .err(format!("expected `,` or `)` in port map, found {other:?}")))
                        }
                    }
                }
                self.expect(&Token::Semicolon)?;
                Ok(AstStatement::Instance(AstInstance {
                    label: first,
                    component,
                    generics,
                    ports,
                    line,
                }))
            }
            Some(Token::Assign) => {
                self.next();
                let expr = self.expr()?;
                self.expect(&Token::Semicolon)?;
                Ok(AstStatement::Assign(AstAssign {
                    target: first,
                    expr,
                    line,
                }))
            }
            other => Err(self.err(format!("expected `:` or `<=`, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<AstExpr, ParseNetlistError> {
        let first = self.primary()?;
        if !matches!(self.peek(), Some(Token::Ampersand)) {
            return Ok(first);
        }
        // VHDL `a & b` places `a` in the high bits; collect then reverse so
        // the AST stores parts low-to-high.
        let mut high_to_low = vec![first];
        while matches!(self.peek(), Some(Token::Ampersand)) {
            self.next();
            high_to_low.push(self.primary()?);
        }
        high_to_low.reverse();
        Ok(AstExpr::Concat(high_to_low))
    }

    fn primary(&mut self) -> Result<AstExpr, ParseNetlistError> {
        match self.next() {
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let hi = self.int()? as u32;
                    let lo = if self.peek_keyword("downto") {
                        self.next();
                        self.int()? as u32
                    } else {
                        hi
                    };
                    self.expect(&Token::RParen)?;
                    if lo > hi {
                        return Err(self.err("slice low bound exceeds high bound"));
                    }
                    Ok(AstExpr::Slice { name, hi, lo })
                } else {
                    Ok(AstExpr::Name(name))
                }
            }
            Some(Token::BitLit(b)) => Ok(AstExpr::Literal(vec![b])),
            Some(Token::VecLit(msb_first)) => {
                let mut bits = msb_first;
                bits.reverse(); // store low bit first
                Ok(AstExpr::Literal(bits))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse(text: &str) -> Result<AstDesign, ParseNetlistError> {
        Parser::new(lex(text)?).design()
    }

    const SMALL: &str = r#"
entity top is
  port ( a, b : in std_logic_vector(3 downto 0);
         y : out std_logic_vector(3 downto 0) );
end top;
architecture rtl of top is
  signal s : std_logic_vector(3 downto 0);
begin
  u0: add generic map (width => 4) port map (a => a, b => b, cin => '0', sum => s, cout => c);
  y <= s;
end rtl;
"#;

    #[test]
    fn parses_small_design() {
        let d = parse(SMALL).unwrap();
        assert_eq!(d.name, "top");
        assert_eq!(d.ports.len(), 3);
        assert_eq!(d.signals.len(), 1);
        assert_eq!(d.statements.len(), 2);
        match &d.statements[0] {
            AstStatement::Instance(inst) => {
                assert_eq!(inst.component, "add");
                assert_eq!(inst.generics, vec![("width".to_string(), 4)]);
                assert_eq!(inst.ports.len(), 5);
            }
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn comma_port_lists_expand() {
        let d = parse(SMALL).unwrap();
        assert_eq!(d.ports[0].name, "a");
        assert_eq!(d.ports[1].name, "b");
        assert_eq!(d.ports[0].ty.width, 4);
    }

    #[test]
    fn concat_orders_low_to_high() {
        let text = r#"
entity t is
  port ( a : in std_logic; y : out std_logic_vector(1 downto 0) );
end t;
architecture rtl of t is
begin
  y <= a & '1';
end rtl;
"#;
        let d = parse(text).unwrap();
        match &d.statements[0] {
            AstStatement::Assign(assign) => match &assign.expr {
                AstExpr::Concat(parts) => {
                    // '1' is the right operand, so it is the LOW part.
                    assert_eq!(parts[0], AstExpr::Literal(vec![true]));
                    assert_eq!(parts[1], AstExpr::Name("a".into()));
                }
                other => panic!("expected concat, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn slice_forms() {
        let text = r#"
entity t is
  port ( a : in std_logic_vector(7 downto 0); y : out std_logic );
end t;
architecture rtl of t is
begin
  y <= a(3);
end rtl;
"#;
        let d = parse(text).unwrap();
        match &d.statements[0] {
            AstStatement::Assign(assign) => {
                assert_eq!(
                    assign.expr,
                    AstExpr::Slice {
                        name: "a".into(),
                        hi: 3,
                        lo: 3
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_entity_name_rejected() {
        let text = r#"
entity t is
  port ( a : in std_logic; y : out std_logic );
end t;
architecture rtl of other is
begin
  y <= a;
end rtl;
"#;
        assert!(parse(text).is_err());
    }

    #[test]
    fn nonzero_low_range_rejected() {
        let text = r#"
entity t is
  port ( a : in std_logic_vector(7 downto 4); y : out std_logic );
end t;
architecture rtl of t is
begin
  y <= a(4);
end rtl;
"#;
        assert!(parse(text).is_err());
    }
}
