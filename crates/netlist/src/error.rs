//! Error types for netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A connection referenced a node that does not exist.
    UnknownNode(String),
    /// A connection referenced a port index outside the node's port list.
    PortOutOfRange {
        /// Offending node name.
        node: String,
        /// Requested port index.
        port: usize,
        /// Number of ports the node actually has.
        available: usize,
    },
    /// Two connected ports have different bit widths.
    WidthMismatch {
        /// Description of the driving endpoint.
        from: String,
        /// Description of the receiving endpoint.
        to: String,
        /// Driver width in bits.
        from_width: u32,
        /// Sink width in bits.
        to_width: u32,
    },
    /// An input port is driven by more than one source.
    MultipleDrivers {
        /// Node whose input is over-driven.
        node: String,
        /// Input port index.
        port: usize,
    },
    /// An input port has no driver.
    UndrivenInput {
        /// Node with the floating input.
        node: String,
        /// Input port index.
        port: usize,
    },
    /// The combinational portion of the circuit contains a cycle.
    CombinationalCycle {
        /// Name of a node on the cycle, for diagnostics.
        node: String,
    },
    /// A node name was declared twice.
    DuplicateName(String),
    /// The circuit has no primary outputs (nothing would survive sweeping).
    NoOutputs,
    /// A generic structural invariant was violated.
    Invalid(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            Self::PortOutOfRange {
                node,
                port,
                available,
            } => write!(
                f,
                "port {port} out of range on node `{node}` ({available} ports)"
            ),
            Self::WidthMismatch {
                from,
                to,
                from_width,
                to_width,
            } => write!(
                f,
                "width mismatch connecting {from} ({from_width} bits) to {to} ({to_width} bits)"
            ),
            Self::MultipleDrivers { node, port } => {
                write!(f, "input port {port} of node `{node}` has multiple drivers")
            }
            Self::UndrivenInput { node, port } => {
                write!(f, "input port {port} of node `{node}` is undriven")
            }
            Self::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node `{node}`")
            }
            Self::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
            Self::NoOutputs => write!(f, "circuit has no primary outputs"),
            Self::Invalid(msg) => write!(f, "invalid netlist: {msg}"),
        }
    }
}

impl Error for NetlistError {}

/// Errors produced while parsing textual netlist formats (BLIF, VHDL subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseNetlistError {
    /// Creates a parse error at the given 1-based `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let err = NetlistError::UnknownNode("adder0".into());
        let text = err.to_string();
        assert!(text.starts_with(char::is_lowercase));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn parse_error_reports_line() {
        let err = ParseNetlistError::new(12, "unexpected token");
        assert_eq!(err.to_string(), "parse error at line 12: unexpected token");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
        assert_send_sync::<ParseNetlistError>();
    }
}
